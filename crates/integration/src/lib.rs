pub fn placeholder() {}
