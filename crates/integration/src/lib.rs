//! # dses-integration — cross-crate integration test host
//!
//! This crate exists to give the workspace-level integration tests under
//! `/tests` (and the `/examples` walkthroughs) a Cargo home with every
//! `dses-*` crate in scope; see the `[[test]]` entries in its
//! `Cargo.toml`. It exports no library API of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
