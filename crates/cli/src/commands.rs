//! The `dses` subcommands.

use crate::args::{ArgError, Args};
use crate::names;
use dses_core::fairness::FairnessReport;
use dses_core::report::{fmt_num, Table};
use dses_core::rule_of_thumb::rule_of_thumb_fraction;
use dses_core::{Experiment, MetricsMode, PolicySpec};
use dses_dist::{Distribution, Mixture};
use dses_sim::SimResult;
use dses_workload::{swf, Trace};

/// Run one subcommand, returning the text to print.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match args.command.as_str() {
        "help" | "-h" | "--help" => Ok(help()),
        "workloads" => workloads(),
        "policies" => Ok(policies()),
        "simulate" => simulate(args),
        "analyze" | "analyse" => analyze(args),
        "sweep" => sweep(args),
        "replicate" => replicate(args),
        "cutoff" => cutoff(args),
        "swf" => swf_cmd(args),
        "burstiness" => burstiness_cmd(args),
        other => Err(ArgError(format!(
            "unknown command {other:?}; try `dses help`"
        ))),
    }
}

/// Top-level usage text.
pub fn help() -> String {
    "\
dses — distributed-server task-assignment simulator & analyzer
(reproduction of Schroeder & Harchol-Balter, HPDC 2000)

USAGE: dses <command> [--flag value]...

COMMANDS
  workloads                         list the calibrated workload presets
  policies                          list the task-assignment policies
  simulate   run one simulation
      --workload c90|j90|ctc        (default c90)
      --policy <name>               (default sita-u-fair)
      --load <rho>                  system load in (0,1) (default 0.7)
      --hosts <h>                   (default 2)
      --jobs <n>                    (default 100000)
      --seed <s>                    (default 0)
      --warmup <n>                  jobs trimmed from stats (default 1000)
      --fairness                    print the slowdown-vs-size profile
      --percentiles                 print slowdown percentiles
      --slo <s>                     report the fraction of jobs with slowdown > s
      --metrics full|auto|means     collector demand tier (default auto);
                                    auto collects what each command reads,
                                    means is the slim throughput tier
  analyze    closed-form prediction (no simulation)
      --workload, --policy, --load, --hosts as above
  sweep      figure-style table over loads
      --policies a,b,c              (default random,lwl,sita-e,sita-u-fair)
      --loads lo:hi:step or a,b,c   (default 0.1:0.9:0.2)
      --threads <n>                 worker threads; 0 = all cores (default 0)
                                    results are identical for every n
      --workload, --hosts, --jobs, --seed as above
  replicate  multi-seed runs with ~95% confidence intervals
      --policies a,b,c              (default lwl,sita-e,sita-u-fair)
      --reps <n>                    (default 5)
      --threads <n>                 worker threads; 0 = all cores (default 0)
      --workload, --load, --hosts, --jobs, --seed as above
  cutoff     solve SITA cutoffs
      --method equal-load|opt|fair|rot
      --workload, --load, --hosts as above
  swf        simulate a real Standard Workload Format trace
      --file <path>                 SWF log to load
      --policy <name>, --hosts <h>
      --procs <p>                   keep only p-processor jobs
      --load <rho>                  rescale interarrivals to this load
  burstiness measure a trace's arrival burstiness
      --file <path>                 SWF log (or omit for a synthetic demo)
      --procs <p>                   keep only p-processor jobs

EXAMPLES
  dses simulate --workload c90 --policy sita-u-fair --load 0.7
  dses sweep --policies lwl,sita-e,fair --loads 0.3:0.9:0.2
  dses cutoff --method fair --load 0.7
  dses swf --file ctc.swf --procs 8 --policy lwl --load 0.6
"
    .to_string()
}

fn workloads() -> Result<String, ArgError> {
    let mut out = String::from("calibrated workload presets (see DESIGN.md for the substitution):\n\n");
    for p in dses_workload::presets::all_presets() {
        out.push_str(&format!("  {}\n    {}\n", p.table1_row(), p.description));
    }
    Ok(out)
}

fn policies() -> String {
    let mut out = String::from("task-assignment policies:\n\n");
    for (name, desc) in names::all_policy_names() {
        out.push_str(&format!("  {name:<40} {desc}\n"));
    }
    out
}

fn experiment_from(args: &Args) -> Result<(Experiment<Mixture>, f64), ArgError> {
    let preset = names::workload(args.get_or("workload", "c90"))?;
    let load = args.get_f64("load", 0.7)?;
    if !(load > 0.0 && load < 1.0) {
        return Err(ArgError(format!("--load must be in (0,1), got {load}")));
    }
    let experiment = Experiment::new(preset.size_dist.clone())
        .hosts(args.get_usize("hosts", 2)?)
        .jobs(args.get_usize("jobs", 100_000)?)
        .warmup_jobs(args.get_usize("warmup", 1_000)?)
        .seed(args.get_u64("seed", 0)?)
        .threads(args.get_usize("threads", 0)?)
        .fairness_bins(if args.has("fairness") { 12 } else { 0 })
        .percentiles(args.has("percentiles"));
    let experiment = match args.get("slo") {
        Some(_) => experiment.slo(args.get_f64("slo", 10.0)?),
        None => experiment,
    };
    let experiment = match args.get_or("metrics", "auto") {
        "full" => experiment.metrics_mode(MetricsMode::Full),
        "auto" => experiment.metrics_mode(MetricsMode::Auto),
        "means" => experiment.metrics_mode(MetricsMode::Means),
        other => {
            return Err(ArgError(format!(
                "--metrics expects full, auto, or means, got {other:?}"
            )))
        }
    };
    Ok((experiment, load))
}

/// Render the standard result block.
fn render_result(title: &str, r: &SimResult) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "  jobs measured        {}\n  mean slowdown        {}\n  var slowdown         {}\n  mean queueing S      {}\n  mean response (s)    {}\n  mean waiting (s)     {}\n",
        r.measured,
        fmt_num(r.slowdown.mean),
        fmt_num(r.slowdown.variance),
        fmt_num(r.queueing_slowdown.mean),
        fmt_num(r.response.mean),
        fmt_num(r.waiting.mean),
    ));
    for (i, _) in r.per_host.iter().enumerate() {
        out.push_str(&format!(
            "  host {i}: jobs {:.1}%  load {:.1}%\n",
            100.0 * r.job_fraction(i),
            100.0 * r.load_fraction(i)
        ));
    }
    if let Some(p) = &r.slowdown_percentiles {
        out.push_str("  slowdown percentiles: ");
        for (q, est) in p {
            out.push_str(&format!("p{:.0}={} ", q * 100.0, fmt_num(*est)));
        }
        out.push('\n');
    }
    if let Some(frac) = r.slo_violation_fraction() {
        if let Some((_, threshold)) = r.slo_violations {
            out.push_str(&format!(
                "  SLO violations: {:.2}% of jobs exceeded slowdown {threshold}\n",
                100.0 * frac
            ));
        }
    }
    if let (Some(s), Some(l)) = (r.short_slowdown, r.long_slowdown) {
        out.push_str(&format!(
            "  class slowdowns: short {}  long {}\n",
            fmt_num(s.mean),
            fmt_num(l.mean)
        ));
    }
    if r.fairness.is_some() {
        out.push_str("\nfairness profile (slowdown by size band):\n");
        out.push_str(&FairnessReport::from_result(r).render());
    }
    out
}

fn simulate(args: &Args) -> Result<String, ArgError> {
    let (experiment, load) = experiment_from(args)?;
    let spec = names::policy(args.get_or("policy", "sita-u-fair"))?;
    let result = experiment
        .try_run(&spec, load)
        .map_err(|e| ArgError(format!("{}: {e}", spec.name())))?;
    Ok(render_result(
        &format!(
            "{} on {} hosts at load {load} ({} workload)",
            spec.name(),
            experiment.num_hosts(),
            args.get_or("workload", "c90")
        ),
        &result,
    ))
}

fn analyze(args: &Args) -> Result<String, ArgError> {
    let (experiment, load) = experiment_from(args)?;
    let policy = names::analytic_policy(args.get_or("policy", "sita-u-fair"))?;
    let m = experiment
        .analytic(policy, load)
        .map_err(|e| ArgError(format!("{}: {e}", policy.name())))?;
    let mut out = format!(
        "analytic {} at load {load} on {} hosts:\n  mean slowdown      {}\n  mean queueing S    {}\n  mean waiting (s)   {}\n  mean response (s)  {}\n",
        policy.name(),
        experiment.num_hosts(),
        fmt_num(m.mean_slowdown),
        fmt_num(m.mean_queueing_slowdown),
        fmt_num(m.mean_waiting),
        fmt_num(m.mean_response),
    );
    if let Some(v) = m.slowdown_variance {
        out.push_str(&format!("  var slowdown       {}\n", fmt_num(v)));
    }
    if let Some(c) = &m.cutoffs {
        out.push_str(&format!("  cutoffs (s)        {c:?}\n"));
    }
    if let Some(f) = m.load_fraction_host0 {
        out.push_str(&format!(
            "  load on host 0     {f:.3} (rule of thumb: {:.3})\n",
            rule_of_thumb_fraction(load)
        ));
    }
    Ok(out)
}

fn sweep(args: &Args) -> Result<String, ArgError> {
    let (experiment, _) = experiment_from(args)?;
    let specs = names::policy_list(args.get_or("policies", "random,lwl,sita-e,sita-u-fair"))?;
    let loads = args.get_loads("loads", &[0.1, 0.3, 0.5, 0.7, 0.9])?;
    // The whole policy × load grid fans out over --threads workers with
    // one shared trace per load; failed points carry NaN, which fmt_num
    // renders as "-" exactly like the old per-run loop did.
    let sweeps = experiment.sweep_grid(&specs, &loads);
    let mut headers = vec!["rho".to_string()];
    headers.extend(specs.iter().map(PolicySpec::name));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut mean_t = Table::new("mean slowdown", &headers_ref);
    let mut var_t = Table::new("variance of slowdown", &headers_ref);
    for (i, &rho) in loads.iter().enumerate() {
        let mut mrow = vec![format!("{rho:.2}")];
        let mut vrow = vec![format!("{rho:.2}")];
        for s in &sweeps {
            mrow.push(fmt_num(s.points[i].mean_slowdown));
            vrow.push(fmt_num(s.points[i].var_slowdown));
        }
        mean_t.push_row(mrow);
        var_t.push_row(vrow);
    }
    Ok(format!("{}\n{}", mean_t.render(), var_t.render()))
}

fn replicate(args: &Args) -> Result<String, ArgError> {
    let (experiment, load) = experiment_from(args)?;
    let specs = names::policy_list(args.get_or("policies", "lwl,sita-e,sita-u-fair"))?;
    let reps = args.get_usize("reps", 5)?;
    if reps == 0 {
        return Err(ArgError("--reps must be at least 1".to_string()));
    }
    let mut table = Table::new(
        format!("mean slowdown over {reps} replications at load {load}"),
        &["policy", "mean", "±95%"],
    );
    for spec in &specs {
        match experiment.replicate(spec, load, reps) {
            Ok(r) => table.push_row(vec![
                spec.name(),
                fmt_num(r.mean),
                fmt_num(r.half_width),
            ]),
            Err(e) => table.push_row(vec![spec.name(), format!("{e}"), "-".into()]),
        }
    }
    Ok(table.render())
}

fn cutoff(args: &Args) -> Result<String, ArgError> {
    let preset = names::workload(args.get_or("workload", "c90"))?;
    let method = names::cutoff_method(args.get_or("method", "fair"))?;
    let load = args.get_f64("load", 0.7)?;
    let hosts = args.get_usize("hosts", 2)?;
    let d = &preset.size_dist;
    let lambda = load * hosts as f64 / d.mean();
    let cutoffs = dses_core::cutoffs::resolve_cutoff(d, lambda, hosts, method)
        .map_err(|e| ArgError(e.to_string()))?;
    let analysis = dses_queueing::sita::SitaAnalysis::analyze(d, lambda, &cutoffs);
    let mut out = format!(
        "{} cutoffs for {} at load {load} on {hosts} hosts:\n",
        method.label(),
        preset.name
    );
    for (i, c) in cutoffs.iter().enumerate() {
        out.push_str(&format!("  cutoff {i}: {c:.1} s\n"));
    }
    out.push_str(&format!(
        "predicted mean slowdown {}\nper-host (load fraction, rho, E[S]):\n",
        fmt_num(analysis.mean_slowdown)
    ));
    for (i, h) in analysis.hosts.iter().enumerate() {
        out.push_str(&format!(
            "  host {i}: load {:.3}  rho {:.3}  E[S] {}\n",
            h.load_fraction,
            h.rho,
            fmt_num(1.0 + h.mean_queueing_slowdown)
        ));
    }
    Ok(out)
}

fn burstiness_cmd(args: &Args) -> Result<String, ArgError> {
    let trace = match args.get("file") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            let filter = swf::SwfFilter {
                exact_processors: args
                    .get("procs")
                    .map(|p| {
                        p.parse().map_err(|_| {
                            ArgError(format!("--procs expects an integer, got {p:?}"))
                        })
                    })
                    .transpose()?,
                ..swf::SwfFilter::default()
            };
            swf::parse_trace(&text, filter).map_err(|e| ArgError(e.to_string()))?
        }
        None => {
            // synthetic demo: bursty MMPP arrivals on the C90 preset
            let preset = names::workload(args.get_or("workload", "c90"))?;
            use dses_dist::Distribution as _;
            let rate = 2.0 * 0.7 / preset.size_dist.mean();
            dses_workload::WorkloadBuilder::new(preset.size_dist.clone())
                .jobs(args.get_usize("jobs", 50_000)?)
                .arrivals(dses_workload::Mmpp2::bursty(rate, 20.0, 50.0))
                .seed(args.get_u64("seed", 0)?)
                .build()
        }
    };
    if trace.len() < 100 {
        return Err(ArgError("trace too short for burstiness statistics".into()));
    }
    let report = dses_workload::burstiness_report(&trace, 5, 6);
    let mut out = format!(
        "arrival burstiness ({} jobs):\n  interarrival C^2     {:.3}   (Poisson: 1)\n",
        trace.len(),
        report.interarrival_scv
    );
    out.push_str("  gap autocorrelation  ");
    for (k, rho) in report.gap_autocorrelation.iter().enumerate() {
        out.push_str(&format!("lag{}={rho:+.3} ", k + 1));
    }
    out.push_str("  (Poisson: 0)\n  index of dispersion  ");
    for (w, idc) in &report.idc {
        out.push_str(&format!("IDC({w:.0}s)={idc:.2} "));
    }
    out.push_str("  (Poisson: 1)\n");
    Ok(out)
}

fn swf_cmd(args: &Args) -> Result<String, ArgError> {
    let path = args
        .get("file")
        .ok_or_else(|| ArgError("swf needs --file <path>".to_string()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let filter = swf::SwfFilter {
        exact_processors: args.get("procs").map(|p| {
            p.parse()
                .map_err(|_| ArgError(format!("--procs expects an integer, got {p:?}")))
        }).transpose()?,
        ..swf::SwfFilter::default()
    };
    let trace = swf::parse_trace(&text, filter).map_err(|e| ArgError(e.to_string()))?;
    if trace.is_empty() {
        return Err(ArgError("trace is empty after filtering".to_string()));
    }
    let hosts = args.get_usize("hosts", 2)?;
    let trace: Trace = match args.get("load") {
        Some(_) => {
            let rho = args.get_f64("load", 0.7)?;
            trace.scale_to_load(hosts, rho)
        }
        None => trace,
    };
    let spec = names::policy(args.get_or("policy", "least-work-left"))?;
    // build the policy against the trace's own empirical distribution
    let sizes = trace.sizes();
    let emp = dses_dist::Empirical::from_values(sizes)
        .map_err(|e| ArgError(e.to_string()))?;
    let experiment = Experiment::new(EmpiricalArc(std::sync::Arc::new(emp)))
        .hosts(hosts)
        .warmup_jobs(args.get_usize("warmup", 0)?)
        .seed(args.get_u64("seed", 0)?);
    let result = experiment
        .try_run_on_trace(&spec, &trace)
        .map_err(|e| ArgError(format!("{}: {e}", spec.name())))?;
    let s = trace.size_summary();
    let mut out = format!(
        "SWF trace {path}: {} jobs, mean size {:.1}s, C^2 {:.2}, system load {:.3}\n\n",
        trace.len(),
        s.mean(),
        s.scv(),
        trace.system_load(hosts)
    );
    out.push_str(&render_result(&format!("{} on {hosts} hosts", spec.name()), &result));
    Ok(out)
}

/// Cheap-clone wrapper so the empirical distribution can drive an
/// [`Experiment`] (which requires `Clone`).
#[derive(Debug, Clone)]
struct EmpiricalArc(std::sync::Arc<dses_dist::Empirical>);

impl Distribution for EmpiricalArc {
    fn sample(&self, rng: &mut dses_dist::Rng64) -> f64 {
        self.0.sample(rng)
    }
    fn support(&self) -> (f64, f64) {
        self.0.support()
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.0.quantile(p)
    }
    fn raw_moment(&self, k: i32) -> f64 {
        self.0.raw_moment(k)
    }
    fn partial_moment(&self, k: i32, a: f64, b: f64) -> f64 {
        self.0.partial_moment(k, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<String, ArgError> {
        let args = Args::parse(tokens.iter().map(|s| (*s).to_string()))?;
        run(&args)
    }

    #[test]
    fn help_lists_commands() {
        let h = help();
        for cmd in ["simulate", "analyze", "sweep", "cutoff", "swf", "workloads"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn workloads_and_policies_render() {
        let w = run_tokens(&["workloads"]).unwrap();
        assert!(w.contains("PSC-C90"));
        let p = run_tokens(&["policies"]).unwrap();
        assert!(p.contains("sita-u-fair"));
    }

    #[test]
    fn simulate_small_run() {
        let out = run_tokens(&[
            "simulate", "--policy", "lwl", "--jobs", "3000", "--warmup", "100", "--load", "0.5",
        ])
        .unwrap();
        assert!(out.contains("mean slowdown"));
        assert!(out.contains("host 0"));
    }

    #[test]
    fn simulate_with_percentiles_and_fairness() {
        let out = run_tokens(&[
            "simulate", "--policy", "fair", "--jobs", "4000", "--load", "0.6", "--fairness",
            "--percentiles",
        ])
        .unwrap();
        assert!(out.contains("percentiles"));
        assert!(out.contains("size-band"));
        assert!(out.contains("class slowdowns"));
    }

    #[test]
    fn analyze_prints_cutoffs() {
        let out = run_tokens(&["analyze", "--policy", "fair", "--load", "0.7"]).unwrap();
        assert!(out.contains("cutoffs"));
        assert!(out.contains("load on host 0"));
    }

    #[test]
    fn sweep_renders_tables() {
        let out = run_tokens(&[
            "sweep", "--policies", "lwl,sita-e", "--loads", "0.4,0.6", "--jobs", "2000",
        ])
        .unwrap();
        assert!(out.contains("mean slowdown"));
        assert!(out.contains("Least-Work-Left"));
        assert!(out.contains("0.60"));
    }

    #[test]
    fn cutoff_solves() {
        let out = run_tokens(&["cutoff", "--method", "fair", "--load", "0.6"]).unwrap();
        assert!(out.contains("cutoff 0"));
        assert!(out.contains("per-host"));
    }

    #[test]
    fn swf_round_trip_via_tempfile() {
        let preset = dses_workload::psc_c90();
        let trace = preset.trace(500, 0.5, 2, 1);
        let text = swf::write_swf(&trace, 8);
        let path = std::env::temp_dir().join("dses_cli_test.swf");
        std::fs::write(&path, text).unwrap();
        let out = run_tokens(&[
            "swf",
            "--file",
            path.to_str().unwrap(),
            "--policy",
            "lwl",
            "--load",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("SWF trace"));
        assert!(out.contains("mean slowdown"));
    }

    #[test]
    fn metrics_mode_flag_parses_and_rejects() {
        let out = run_tokens(&[
            "simulate", "--policy", "lwl", "--jobs", "2000", "--load", "0.5", "--metrics",
            "means",
        ])
        .unwrap();
        assert!(out.contains("mean slowdown"));
        let err = run_tokens(&["simulate", "--metrics", "bogus"]);
        assert!(err.is_err());
    }

    #[test]
    fn bad_inputs_are_reported_not_panicked() {
        assert!(run_tokens(&["simulate", "--load", "1.5"]).is_err());
        assert!(run_tokens(&["simulate", "--policy", "nope"]).is_err());
        assert!(run_tokens(&["frobnicate"]).is_err());
        assert!(run_tokens(&["swf"]).is_err());
    }
}

#[cfg(test)]
mod burstiness_and_slo_tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<String, ArgError> {
        let args = Args::parse(tokens.iter().map(|s| (*s).to_string()))?;
        run(&args)
    }

    #[test]
    fn burstiness_synthetic_demo_reports_all_axes() {
        let out = run_tokens(&["burstiness", "--jobs", "20000"]).unwrap();
        assert!(out.contains("interarrival C^2"));
        assert!(out.contains("lag1="));
        assert!(out.contains("IDC("));
    }

    #[test]
    fn burstiness_reads_swf_files() {
        let preset = dses_workload::psc_c90();
        let trace = preset.trace(2_000, 0.5, 2, 4);
        let text = swf::write_swf(&trace, 8);
        let path = std::env::temp_dir().join("dses_cli_burst.swf");
        std::fs::write(&path, text).unwrap();
        let out = run_tokens(&["burstiness", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("2000 jobs"));
    }

    #[test]
    fn simulate_reports_slo_when_asked() {
        let out = run_tokens(&[
            "simulate", "--policy", "lwl", "--jobs", "3000", "--load", "0.7", "--slo", "10",
        ])
        .unwrap();
        assert!(out.contains("SLO violations"), "{out}");
    }
}

#[cfg(test)]
mod replicate_tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<String, ArgError> {
        let args = Args::parse(tokens.iter().map(|s| (*s).to_string()))?;
        run(&args)
    }

    #[test]
    fn replicate_renders_intervals() {
        let out = run_tokens(&[
            "replicate", "--policies", "lwl", "--reps", "3", "--jobs", "2000", "--load", "0.5",
        ])
        .unwrap();
        assert!(out.contains("3 replications"));
        assert!(out.contains("Least-Work-Left"));
    }

    #[test]
    fn replicate_rejects_zero_reps() {
        assert!(run_tokens(&["replicate", "--reps", "0"]).is_err());
    }
}
