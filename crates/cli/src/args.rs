//! A small, dependency-free flag parser.
//!
//! The workspace's sanctioned dependency list doesn't include an argument
//! parser, and the `dses` CLI needs only `--flag value` pairs and
//! booleans, so we parse by hand. Grammar:
//!
//! ```text
//! dses <command> [--key value]... [--switch]...
//! ```

use std::collections::BTreeMap;

/// Parsed command line: one subcommand plus `--key value` / `--switch`
/// flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// the subcommand (first positional argument)
    pub command: String,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw argument list (excluding the program name).
    ///
    /// `--key value` stores a value; a `--switch` followed by another
    /// flag (or nothing) is a boolean switch. Positional arguments other
    /// than the leading command are rejected.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command; try `dses help`".to_string()))?;
        if command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a command before flags, found {command}"
            )));
        }
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {token:?}")));
            };
            if key.is_empty() {
                return Err(ArgError("empty flag `--`".to_string()));
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    if args.values.insert(key.to_string(), value).is_some() {
                        return Err(ArgError(format!("duplicate flag --{key}")));
                    }
                }
                _ => args.switches.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// A string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A string value with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric value with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got {v:?}"))),
        }
    }

    /// A parsed integer value with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got {v:?}"))),
        }
    }

    /// A parsed u64 with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got {v:?}"))),
        }
    }

    /// Whether a boolean switch is present.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Parse a load list: `0.5` or `0.5,0.7,0.9` or a range `0.1:0.9:0.2`.
    pub fn get_loads(&self, key: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
        let Some(spec) = self.get(key) else {
            return Ok(default.to_vec());
        };
        if let Some((rest, step)) = spec.rsplit_once(':') {
            if let Some((lo, hi)) = rest.split_once(':') {
                let lo: f64 = lo
                    .parse()
                    .map_err(|_| ArgError(format!("bad range start in --{key}: {lo:?}")))?;
                let hi: f64 = hi
                    .parse()
                    .map_err(|_| ArgError(format!("bad range end in --{key}: {hi:?}")))?;
                let step: f64 = step
                    .parse()
                    .map_err(|_| ArgError(format!("bad range step in --{key}: {step:?}")))?;
                if !(step > 0.0 && hi >= lo) {
                    return Err(ArgError(format!("empty range in --{key}: {spec:?}")));
                }
                let mut out = Vec::new();
                let mut x = lo;
                while x <= hi + 1e-12 {
                    out.push((x * 1e9).round() / 1e9);
                    x += step;
                }
                return Ok(out);
            }
        }
        spec.split(',')
            .map(|tok| {
                tok.parse()
                    .map_err(|_| ArgError(format!("bad load {tok:?} in --{key}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_command_values_and_switches() {
        let a = parse(&["simulate", "--load", "0.7", "--fairness", "--hosts", "4"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.get("load"), Some("0.7"));
        assert_eq!(a.get_usize("hosts", 2).unwrap(), 4);
        assert!(a.has("fairness"));
        assert!(!a.has("percentiles"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["analyze"]).unwrap();
        assert_eq!(a.get_f64("load", 0.5).unwrap(), 0.5);
        assert_eq!(a.get_or("workload", "c90"), "c90");
    }

    #[test]
    fn rejects_missing_command_and_positional_junk() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--load", "0.7"]).is_err());
        assert!(parse(&["simulate", "oops"]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_bad_numbers() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
        let a = parse(&["x", "--load", "abc"]).unwrap();
        assert!(a.get_f64("load", 0.5).is_err());
    }

    #[test]
    fn load_list_and_range_parsing() {
        let a = parse(&["x", "--loads", "0.3,0.5,0.9"]).unwrap();
        assert_eq!(a.get_loads("loads", &[]).unwrap(), vec![0.3, 0.5, 0.9]);
        let a = parse(&["x", "--loads", "0.1:0.5:0.2"]).unwrap();
        assert_eq!(a.get_loads("loads", &[]).unwrap(), vec![0.1, 0.3, 0.5]);
        let a = parse(&["x"]).unwrap();
        assert_eq!(a.get_loads("loads", &[0.7]).unwrap(), vec![0.7]);
        let a = parse(&["x", "--loads", "0.9:0.1:0.2"]).unwrap();
        assert!(a.get_loads("loads", &[]).is_err());
    }

    #[test]
    fn trailing_switch_is_a_switch() {
        let a = parse(&["x", "--verbose"]).unwrap();
        assert!(a.has("verbose"));
    }
}
