//! `dses` — the command-line interface to the distributed-server
//! task-assignment simulator and analyzer.
//!
//! ```text
//! dses simulate --workload c90 --policy sita-u-fair --load 0.7
//! dses sweep --policies lwl,sita-e,fair --loads 0.3:0.9:0.2
//! dses cutoff --method fair --load 0.7
//! dses swf --file trace.swf --procs 8 --policy lwl --load 0.6
//! ```
//!
//! See `dses help` for the full command reference.

#![forbid(unsafe_code)]

mod args;
mod commands;
mod names;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", commands::help());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
