//! Name → object resolution for workloads and policies.

use dses_core::cutoffs::CutoffMethod;
use dses_core::PolicySpec;
use dses_queueing::policies::AnalyticPolicy;
use dses_workload::WorkloadPreset;

use crate::args::ArgError;

/// Resolve a workload preset by name (`c90`, `j90`, `ctc`).
pub fn workload(name: &str) -> Result<WorkloadPreset, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "c90" | "psc-c90" => Ok(dses_workload::psc_c90()),
        "j90" | "psc-j90" => Ok(dses_workload::psc_j90()),
        "ctc" | "ctc-sp2" | "sp2" => Ok(dses_workload::ctc_sp2()),
        other => Err(ArgError(format!(
            "unknown workload {other:?}; expected c90, j90 or ctc"
        ))),
    }
}

/// Resolve a simulation policy by name.
pub fn policy(name: &str) -> Result<PolicySpec, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "random" => Ok(PolicySpec::Random),
        "round-robin" | "rr" => Ok(PolicySpec::RoundRobin),
        "shortest-queue" | "sq" => Ok(PolicySpec::ShortestQueue),
        "least-work-left" | "lwl" => Ok(PolicySpec::LeastWorkLeft),
        "central-queue" | "cq" => Ok(PolicySpec::CentralQueue),
        "central-sjf" | "sjf" => Ok(PolicySpec::CentralSjf),
        "sita-e" => Ok(PolicySpec::SitaE),
        "sita-u-opt" | "opt" => Ok(PolicySpec::SitaUOpt),
        "sita-u-fair" | "fair" => Ok(PolicySpec::SitaUFair),
        "sita-u-rot" | "rot" | "rule-of-thumb" => Ok(PolicySpec::SitaRuleOfThumb),
        "grouped-e" => Ok(PolicySpec::Grouped {
            method: CutoffMethod::EqualLoad,
        }),
        "grouped-opt" => Ok(PolicySpec::Grouped {
            method: CutoffMethod::OptSlowdown,
        }),
        "grouped-fair" => Ok(PolicySpec::Grouped {
            method: CutoffMethod::Fair,
        }),
        other => Err(ArgError(format!(
            "unknown policy {other:?}; try `dses policies`"
        ))),
    }
}

/// Resolve a comma-separated policy list.
pub fn policy_list(spec: &str) -> Result<Vec<PolicySpec>, ArgError> {
    spec.split(',').map(|tok| policy(tok.trim())).collect()
}

/// Resolve an analytic policy by name.
pub fn analytic_policy(name: &str) -> Result<AnalyticPolicy, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "random" => Ok(AnalyticPolicy::Random),
        "round-robin" | "rr" => Ok(AnalyticPolicy::RoundRobin),
        "least-work-left" | "lwl" | "central-queue" | "cq" => Ok(AnalyticPolicy::LeastWorkLeft),
        "sita-e" => Ok(AnalyticPolicy::SitaE),
        "sita-u-opt" | "opt" => Ok(AnalyticPolicy::SitaUOpt),
        "sita-u-fair" | "fair" => Ok(AnalyticPolicy::SitaUFair),
        other => Err(ArgError(format!(
            "no analytic model for policy {other:?}"
        ))),
    }
}

/// Resolve a cutoff method by name.
pub fn cutoff_method(name: &str) -> Result<CutoffMethod, ArgError> {
    match name.to_ascii_lowercase().as_str() {
        "equal-load" | "e" | "sita-e" => Ok(CutoffMethod::EqualLoad),
        "opt" | "sita-u-opt" => Ok(CutoffMethod::OptSlowdown),
        "fair" | "sita-u-fair" => Ok(CutoffMethod::Fair),
        "rot" | "rule-of-thumb" => Ok(CutoffMethod::RuleOfThumb),
        other => Err(ArgError(format!("unknown cutoff method {other:?}"))),
    }
}

/// The policy roster for `dses policies`.
pub fn all_policy_names() -> Vec<(&'static str, &'static str)> {
    vec![
        ("random", "uniformly random host"),
        ("round-robin", "job i -> host i mod h"),
        ("shortest-queue", "fewest jobs in system"),
        ("least-work-left", "least unfinished work (= central-queue)"),
        ("central-queue", "FCFS queue at the dispatcher"),
        ("central-sjf", "shortest-job-first at the dispatcher (unfair)"),
        ("sita-e", "size bands, equal load per host"),
        ("sita-u-opt", "size bands, cutoff minimising mean slowdown"),
        ("sita-u-fair", "size bands, equal short/long slowdown (the paper's policy)"),
        ("sita-u-rot", "size bands, the rho/2 rule of thumb (2 hosts)"),
        ("grouped-e | grouped-opt | grouped-fair", "host groups + LWL (paper section 5)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_aliases() {
        assert_eq!(workload("c90").unwrap().name, "PSC-C90");
        assert_eq!(workload("CTC").unwrap().name, "CTC-SP2");
        assert!(workload("mars").is_err());
    }

    #[test]
    fn policy_aliases() {
        assert_eq!(policy("lwl").unwrap(), PolicySpec::LeastWorkLeft);
        assert_eq!(policy("fair").unwrap(), PolicySpec::SitaUFair);
        assert!(matches!(
            policy("grouped-fair").unwrap(),
            PolicySpec::Grouped { .. }
        ));
        assert!(policy("magic").is_err());
    }

    #[test]
    fn policy_lists() {
        let list = policy_list("random, lwl ,sita-e").unwrap();
        assert_eq!(list.len(), 3);
        assert!(policy_list("random,nope").is_err());
    }

    #[test]
    fn analytic_names() {
        assert_eq!(
            analytic_policy("cq").unwrap(),
            AnalyticPolicy::LeastWorkLeft
        );
        assert!(analytic_policy("shortest-queue").is_err());
    }

    #[test]
    fn cutoff_methods() {
        assert_eq!(cutoff_method("fair").unwrap(), CutoffMethod::Fair);
        assert_eq!(cutoff_method("rot").unwrap(), CutoffMethod::RuleOfThumb);
        assert!(cutoff_method("x").is_err());
    }

    #[test]
    fn roster_is_nonempty() {
        assert!(all_policy_names().len() >= 10);
    }
}
