//! The policy-facing view of the system and the dispatcher interface.

use dses_dist::Rng64;
use dses_workload::Job;

/// What a dispatch-on-arrival policy may observe about one host at the
/// instant a job arrives.
///
/// The paper's policies use exactly these observables: Shortest-Queue
/// reads [`HostView::queue_len`], Least-Work-Left reads
/// [`HostView::work_left`], and the static policies (Random, Round-Robin,
/// SITA) read neither.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostView {
    /// Number of jobs at the host (queued + in service).
    pub queue_len: usize,
    /// Total unfinished work at the host, in seconds: remaining service
    /// of the job in service plus full sizes of queued jobs.
    pub work_left: f64,
}

/// A snapshot of the whole system at a dispatch instant.
#[derive(Debug)]
pub struct SystemState<'a> {
    /// Current simulation time.
    pub now: f64,
    /// Per-host observables, indexed by host id `0..h`.
    pub hosts: &'a [HostView],
}

impl SystemState<'_> {
    /// Number of hosts.
    #[must_use]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Index of a host with the fewest jobs (ties broken by lowest id,
    /// making runs deterministic).
    #[must_use]
    pub fn shortest_queue(&self) -> usize {
        self.hosts
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.queue_len.cmp(&b.queue_len))
            .map(|(i, _)| i)
            // dses-lint: allow(panic-hygiene) -- engines assert hosts >= 1 before any dispatch
            .expect("at least one host")
    }

    /// Index of a host with the least unfinished work (ties broken by
    /// lowest id).
    #[must_use]
    pub fn least_work(&self) -> usize {
        self.hosts
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.work_left.total_cmp(&b.work_left))
            .map(|(i, _)| i)
            // dses-lint: allow(panic-hygiene) -- engines assert hosts >= 1 before any dispatch
            .expect("at least one host")
    }

    /// Like [`SystemState::least_work`] but restricted to a subset of
    /// host indices — used by the paper's §5 grouped SITA+LWL hybrid.
    ///
    /// # Panics
    /// Panics if `subset` is empty or contains an out-of-range index.
    #[must_use]
    pub fn least_work_among(&self, subset: &[usize]) -> usize {
        subset
            .iter()
            .copied()
            .min_by(|&a, &b| self.hosts[a].work_left.total_cmp(&self.hosts[b].work_left))
            // dses-lint: allow(panic-hygiene) -- documented: panics on empty subset
            .expect("subset must be non-empty")
    }
}

/// Which [`HostView`] fields a dispatcher actually reads — the engine's
/// licence to skip maintaining the rest.
///
/// The paper's static policies (Random, Round-Robin, SITA) read neither
/// field, Least-Work-Left reads only [`HostView::work_left`] (which the
/// Lindley `free_at` scalar provides for free), and only Shortest-Queue
/// pays for per-host job counting. [`crate::fast::simulate_dispatch`]
/// selects one of three specialized hot loops from this declaration; all
/// three produce bit-identical schedules, because a dispatcher that does
/// not read a field cannot observe whether it was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateNeeds(u8);

impl StateNeeds {
    /// Reads neither field (static policies): O(1) per job, no host
    /// bookkeeping at all.
    pub const NOTHING: StateNeeds = StateNeeds(0);
    /// Reads [`HostView::work_left`] only (LWL family): heap-free loop.
    pub const WORK_LEFT: StateNeeds = StateNeeds(1);
    /// Reads [`HostView::queue_len`] only (Shortest-Queue): the engine
    /// must track in-system job counts (a per-host completion heap).
    pub const QUEUE_LEN: StateNeeds = StateNeeds(2);
    /// Reads both fields — the safe default for unknown dispatchers.
    pub const ALL: StateNeeds = StateNeeds(3);

    /// Whether [`HostView::work_left`] must be populated.
    #[must_use]
    pub fn needs_work_left(self) -> bool {
        self.0 & Self::WORK_LEFT.0 != 0
    }

    /// Whether [`HostView::queue_len`] must be populated.
    #[must_use]
    pub fn needs_queue_len(self) -> bool {
        self.0 & Self::QUEUE_LEN.0 != 0
    }
}

impl std::ops::BitOr for StateNeeds {
    type Output = StateNeeds;
    fn bitor(self, rhs: StateNeeds) -> StateNeeds {
        StateNeeds(self.0 | rhs.0)
    }
}

/// An engine-recognised closed form of a dispatcher's decision rule.
///
/// [`Dispatcher::dispatch_kernel`] lets a policy *declare* that its
/// `dispatch` is one of a few fixed formulas the fast engine knows how to
/// inline — replacing the per-job virtual call with branchless
/// straight-line code and enabling replication fusion. The contract: the
/// declared kernel must be **observationally identical** to `dispatch` —
/// the same host for every job *and* the same RNG consumption — starting
/// from the freshly [`Dispatcher::reset`] policy. The engine maintains
/// the kernel's running state (e.g. the round-robin cursor) itself and
/// may leave the policy's own fields untouched, so policies must
/// re-initialise fully in `reset` rather than rely on post-run state.
///
/// Declaring a kernel that disagrees with `dispatch` desynchronises the
/// specialized engine from the reference engines; the cross-engine
/// identity gates (`tests/kernels.rs`, `perf_report`) catch it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchKernel<'a> {
    /// No closed form — the engine calls [`Dispatcher::dispatch`].
    Opaque,
    /// `rng.below(hosts)`: uniformly random host, one draw per job.
    UniformRandom,
    /// Cyclic `0, 1, …, hosts−1, 0, …` starting at host 0; no RNG.
    RoundRobin,
    /// Size-interval split: the target is
    /// `cutoffs.partition_point(|c| size > c)` over strictly increasing
    /// cutoffs (host `i` serves sizes in `(cutoffs[i−1], cutoffs[i]]`);
    /// no RNG. `cutoffs.len()` must be `< hosts` for every size to map
    /// to a valid host.
    SizeInterval(&'a [f64]),
    /// [`SystemState::least_work`]: least unfinished work, ties to the
    /// lowest host index; no RNG.
    LeastWorkLeft,
}

/// A task-assignment policy that picks a host the moment a job arrives.
///
/// Implementations live in `dses-core`; the engine hands them the job,
/// the system snapshot, and a random stream, and they return a host index
/// in `0..state.num_hosts()`.
pub trait Dispatcher {
    /// Choose the host for `job`.
    fn dispatch(&mut self, job: &Job, state: &SystemState<'_>, rng: &mut Rng64) -> usize;

    /// Human-readable policy name for reports.
    fn name(&self) -> String {
        "unnamed".to_string()
    }

    /// Reset any internal state (e.g. Round-Robin's counter) before a run.
    fn reset(&mut self) {}

    /// Which [`HostView`] fields [`Dispatcher::dispatch`] reads.
    ///
    /// The default claims everything, which is always correct; policies
    /// that read less should narrow it so the fast engine can drop the
    /// corresponding bookkeeping. Declaring less than `dispatch` actually
    /// reads yields views with stale zeros in the undeclared fields.
    fn state_needs(&self) -> StateNeeds {
        StateNeeds::ALL
    }

    /// The closed-form [`DispatchKernel`] this policy's `dispatch`
    /// implements, if any.
    ///
    /// The default (`Opaque`) is always correct; declaring a kernel lets
    /// the fast engine inline the decision rule and fuse replications.
    /// See [`DispatchKernel`] for the exact contract.
    fn dispatch_kernel(&self) -> DispatchKernel<'_> {
        DispatchKernel::Opaque
    }
}

/// Boxed dispatchers forward every method to the inner policy, so
/// `Box<dyn Dispatcher>` (and slices of boxes, as replication fusion
/// runs) expose the inner policy's declarations instead of the trait
/// defaults.
impl<P: Dispatcher + ?Sized> Dispatcher for Box<P> {
    fn dispatch(&mut self, job: &Job, state: &SystemState<'_>, rng: &mut Rng64) -> usize {
        (**self).dispatch(job, state, rng)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn state_needs(&self) -> StateNeeds {
        (**self).state_needs()
    }
    fn dispatch_kernel(&self) -> DispatchKernel<'_> {
        (**self).dispatch_kernel()
    }
}

/// Order in which a central queue hands jobs to idle hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// First-come-first-served — the paper's **Central-Queue** policy,
    /// provably equivalent to Least-Work-Left (\[11\], §3.1).
    Fcfs,
    /// Shortest-Job-First — the size-favouring discipline the paper's §8
    /// discussion points to (requires size knowledge; unfair without
    /// SITA-U's compensation).
    Sjf,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(data: &[(usize, f64)]) -> Vec<HostView> {
        data.iter()
            .map(|&(q, w)| HostView {
                queue_len: q,
                work_left: w,
            })
            .collect()
    }

    #[test]
    fn shortest_queue_picks_minimum() {
        let hosts = views(&[(3, 10.0), (1, 50.0), (2, 5.0)]);
        let s = SystemState { now: 0.0, hosts: &hosts };
        assert_eq!(s.shortest_queue(), 1);
    }

    #[test]
    fn shortest_queue_breaks_ties_by_lowest_index() {
        let hosts = views(&[(2, 10.0), (2, 1.0), (3, 0.0)]);
        let s = SystemState { now: 0.0, hosts: &hosts };
        assert_eq!(s.shortest_queue(), 0);
    }

    #[test]
    fn least_work_picks_minimum() {
        let hosts = views(&[(0, 10.0), (5, 2.0), (1, 7.0)]);
        let s = SystemState { now: 0.0, hosts: &hosts };
        assert_eq!(s.least_work(), 1);
    }

    #[test]
    fn least_work_tie_goes_to_lowest_index() {
        let hosts = views(&[(0, 4.0), (0, 4.0)]);
        let s = SystemState { now: 0.0, hosts: &hosts };
        assert_eq!(s.least_work(), 0);
    }

    #[test]
    fn least_work_among_subset() {
        let hosts = views(&[(0, 1.0), (0, 5.0), (0, 3.0), (0, 2.0)]);
        let s = SystemState { now: 0.0, hosts: &hosts };
        assert_eq!(s.least_work_among(&[1, 2, 3]), 3);
        assert_eq!(s.least_work_among(&[1]), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn least_work_among_empty_panics() {
        let hosts = views(&[(0, 1.0)]);
        let s = SystemState { now: 0.0, hosts: &hosts };
        let _ = s.least_work_among(&[]);
    }

    #[test]
    fn state_needs_flags() {
        assert!(!StateNeeds::NOTHING.needs_work_left());
        assert!(!StateNeeds::NOTHING.needs_queue_len());
        assert!(StateNeeds::WORK_LEFT.needs_work_left());
        assert!(!StateNeeds::WORK_LEFT.needs_queue_len());
        assert!(!StateNeeds::QUEUE_LEN.needs_work_left());
        assert!(StateNeeds::QUEUE_LEN.needs_queue_len());
        assert!(StateNeeds::ALL.needs_work_left());
        assert!(StateNeeds::ALL.needs_queue_len());
        assert_eq!(StateNeeds::WORK_LEFT | StateNeeds::QUEUE_LEN, StateNeeds::ALL);
        assert_eq!(StateNeeds::NOTHING | StateNeeds::WORK_LEFT, StateNeeds::WORK_LEFT);
    }

    #[test]
    fn dispatcher_default_needs_everything() {
        struct Blind;
        impl Dispatcher for Blind {
            fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
                0
            }
        }
        assert_eq!(Blind.state_needs(), StateNeeds::ALL);
    }
}
