//! # dses-sim — the distributed-server simulation engine
//!
//! A discrete-event simulator of the architectural model in Schroeder &
//! Harchol-Balter (HPDC 2000): `h` identical hosts, each running its own
//! FCFS queue, jobs run-to-completion with exclusive use of a host, fed by
//! a single arrival stream (paper §1.1/§2.2).
//!
//! Two execution engines, cross-validated against each other:
//!
//! * [`fast::simulate_dispatch`] — for **dispatch-on-arrival** policies
//!   (every policy in the paper except Central-Queue). Each host's FCFS
//!   queue satisfies the Lindley recursion; the engine specializes its
//!   hot loop to what the policy declares it reads ([`StateNeeds`]):
//!   O(1) per job for static and work-left-only policies, with a
//!   completion heap maintained only for queue-length-aware policies.
//!   Tens of millions of jobs simulate in seconds.
//! * [`event::EventEngine`] — a general event-driven engine with an
//!   explicit event queue and host state machines. It additionally
//!   supports **queueing policies** (Central-Queue variants) where jobs
//!   wait at the dispatcher and hosts pull work when they go idle.
//!
//! Policies plug in through the [`Dispatcher`] trait (immediate dispatch)
//! or the [`QueueDiscipline`] enum (central queue). The policy
//! implementations themselves live in `dses-core`.
//!
//! Metrics ([`metrics`]) follow the paper: per-job **slowdown**
//! (response time / service requirement), response time, waiting time —
//! means *and* variances — plus per-host load shares and the
//! slowdown-vs-size fairness profile of §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)`-style validation is intentional: it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod event;
pub mod fast;
pub mod metrics;
pub mod par;
pub mod state;
pub mod validate;
pub mod workspace;

pub use event::EventEngine;
pub use fast::{
    simulate_dispatch, simulate_dispatch_fused, simulate_dispatch_fused_into,
    simulate_dispatch_fused_mode_into, simulate_dispatch_into, simulate_dispatch_segmented,
    simulate_dispatch_segmented_into, simulate_dispatch_speeds, simulate_dispatch_speeds_into,
    simulate_dispatch_unsegmented_into, SegmentedMode,
};
pub use par::{
    available_workers, effective_workers, par_map, par_map_grouped, par_map_indexed,
    par_map_indexed_scoped, WorkerPool,
};
pub use metrics::{Demand, HostStats, JobRecord, MetricsConfig, SimResult};
pub use state::{
    DispatchKernel, Dispatcher, HostView, QueueDiscipline, StateNeeds, SystemState,
};
pub use workspace::SimWorkspace;
