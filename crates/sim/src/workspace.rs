//! Reusable per-worker simulation state.
//!
//! Every run of the fast engine used to allocate its full working set —
//! host scalars, view buffers, completion heaps, the metrics collector
//! with its histogram/percentile/record storage — and drop it on return.
//! A sweep is thousands of runs, so the allocator sat on the hot path.
//!
//! [`SimWorkspace`] owns all of those buffers once. Engines borrow it
//! through the `*_into` entry points ([`crate::fast::simulate_dispatch_into`],
//! [`crate::event::EventEngine::run_dispatch_into`], …), each of which
//! begins by *resetting* — clearing lengths and accumulators without
//! freeing — so after a warm-up run of the largest shape, the steady
//! state of a sweep performs **zero heap allocation per grid point**
//! (`perf_report` gates on the measured count).
//!
//! Reset is also what makes reuse safe: every kernel starts from
//! `reset`-initialized state, so a workspace that last ran a different
//! host count, job count, or policy produces bit-for-bit the same result
//! as a freshly allocated one (`tests/workspace.rs` poisons a workspace
//! deliberately and asserts record-level equality).
//!
//! The convenience wrappers ([`crate::simulate_dispatch`] and friends)
//! reuse a thread-local workspace transparently, so ordinary callers —
//! including every pool worker thread — get the allocation-free steady
//! state without threading `&mut SimWorkspace` themselves.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::event::EventWorkspace;
use crate::fast::OrdF64;
use crate::metrics::{Collector, MetricsConfig};
use crate::state::{HostView, StateNeeds};
use dses_dist::Rng64;

/// Every buffer the simulation engines need, owned long-term.
///
/// Construct once per worker (or let the thread-local wrappers do it) and
/// pass to the `*_into` engine entry points; the engines reset what they
/// use at the start of each run.
#[derive(Debug)]
pub struct SimWorkspace {
    /// Lindley scalar per host: when each host drains its assigned work.
    pub(crate) free_at: Vec<f64>,
    /// Host views handed to the policy.
    pub(crate) views: Vec<HostView>,
    /// Per-host FIFO departure deques (queue-length kernel): completion
    /// times are monotone per FCFS host, so a deque replaces a heap.
    pub(crate) fifos: Vec<VecDeque<f64>>,
    /// Tournament heap over the deque *fronts* — at most one entry per
    /// non-empty host — giving the queue-length kernel an O(1)
    /// next-expiry check per arrival instead of an O(hosts) scan.
    pub(crate) expiry: BinaryHeap<Reverse<(OrdF64, usize)>>,
    /// Per-host completion min-heaps (full-state reference kernel).
    pub(crate) heaps: Vec<BinaryHeap<Reverse<OrdF64>>>,
    /// The streaming metrics collector. Its demand tier and record path
    /// are re-resolved from the run's [`MetricsConfig`] at each reset;
    /// its growable storage — histogram, percentile state, record
    /// buffer, and the batched tier's SoA block lanes — persists here
    /// so steady-state sweeps stay allocation-free.
    pub(crate) collector: Collector,
    /// Event-engine state machines (dispatch + central queue).
    pub(crate) event: EventWorkspace,
    /// Copy of a recognised SITA kernel's cutoffs, taken so the borrow
    /// on the policy ends before the engine needs `&mut policy` again.
    pub(crate) kernel_cutoffs: Vec<f64>,
    /// One collector per fused replication lane.
    pub(crate) lane_collectors: Vec<Collector>,
    /// One policy RNG stream per fused replication lane.
    pub(crate) lane_rngs: Vec<Rng64>,
    /// Per-lane round-robin cursors for the fused static kernel.
    pub(crate) lane_counters: Vec<usize>,
    /// Per-lane SITA cutoffs, flattened with a fixed stride.
    pub(crate) lane_cutoffs: Vec<f64>,
    /// Segmented kernel, phase 1: each block job's chosen host, lane-major
    /// (`chosen[r*block + j]` is lane `r`'s choice for block-local job `j`).
    pub(crate) chosen: Vec<u32>,
    /// Segmented kernel: per-lane segment boundaries into [`Self::seg_idx`],
    /// `hosts + 1` entries per lane (`seg_offsets[r*(h+1) + c]` is where
    /// host `c`'s segment starts within lane `r`'s block).
    pub(crate) seg_offsets: Vec<u32>,
    /// Segmented kernel: block-local job indices bucket-partitioned by
    /// chosen host (stable counting sort of `0..block` by [`Self::chosen`]),
    /// lane-major like `chosen`.
    pub(crate) seg_idx: Vec<u32>,
    /// Segmented kernel, phase 2 output: each block job's service start,
    /// written segment-by-segment, read back in arrival order.
    pub(crate) seg_starts: Vec<f64>,
    /// Segmented kernel, phase 2 output: each block job's departure
    /// (completion) time, the `departs` slot of the two-phase split.
    pub(crate) seg_departs: Vec<f64>,
}

impl SimWorkspace {
    /// An empty workspace; buffers grow on first use and persist.
    #[must_use]
    pub fn new() -> Self {
        Self {
            free_at: Vec::new(),
            views: Vec::new(),
            fifos: Vec::new(),
            expiry: BinaryHeap::new(),
            heaps: Vec::new(),
            collector: Collector::new(0, MetricsConfig::default()),
            event: EventWorkspace::new(),
            kernel_cutoffs: Vec::new(),
            lane_collectors: Vec::new(),
            lane_rngs: Vec::new(),
            lane_counters: Vec::new(),
            lane_cutoffs: Vec::new(),
            chosen: Vec::new(),
            seg_offsets: Vec::new(),
            seg_idx: Vec::new(),
            seg_starts: Vec::new(),
            seg_departs: Vec::new(),
        }
    }

    /// Shape the segmented-kernel scratch for `lanes` replication lanes on
    /// `hosts` hosts with a `block`-job working set. All five buffers are
    /// grow-once: `resize` only allocates the first time a larger shape
    /// runs, after which steady-state segmented sweeps never touch the
    /// allocator (the counting gate in `perf_report` measures this).
    ///
    /// Contents are *not* cleared — every slot the kernel reads is written
    /// earlier in the same run (phase 1 writes all of `chosen`, the
    /// counting sort writes all of `seg_idx`, the chains write exactly the
    /// `starts`/`departs` slots phase 3 reads), so stale values from a
    /// previous run are unobservable.
    pub(crate) fn reset_segmented(&mut self, lanes: usize, hosts: usize, block: usize) {
        let jobs = lanes * block;
        if self.chosen.len() < jobs {
            self.chosen.resize(jobs, 0);
            self.seg_idx.resize(jobs, 0);
            self.seg_starts.resize(jobs, 0.0);
            self.seg_departs.resize(jobs, 0.0);
        }
        let offsets = lanes * (hosts + 1);
        if self.seg_offsets.len() < offsets {
            self.seg_offsets.resize(offsets, 0);
        }
    }

    /// Reset the fast-engine buffers for a run on `hosts` hosts, keeping
    /// allocations. `backlog` pre-sizes the per-host completion
    /// containers (callers pass [`dses_workload::Trace::backlog_hint`],
    /// which scales with jobs-per-host instead of the old fixed 32).
    ///
    /// `needs` is the policy's declaration: only the containers the
    /// matching hot loop actually maintains are (re)shaped. A static or
    /// work-left run on `h = 1024` therefore never materialises 1024
    /// FIFO deques and completion heaps it would not touch — the stale
    /// ones from an earlier queue-aware run are left as-is (never read)
    /// and cleared again the next time a loop needs them.
    pub(crate) fn reset_fast(&mut self, hosts: usize, backlog: usize, needs: StateNeeds) {
        self.free_at.clear();
        self.free_at.resize(hosts, 0.0);
        self.views.clear();
        self.views.resize(
            hosts,
            HostView {
                queue_len: 0,
                work_left: 0.0,
            },
        );
        if needs.needs_queue_len() && !needs.needs_work_left() {
            // queue-length loop: FIFO deques + the expiry tournament heap
            // shrink the per-host lists only by truncation — capacity stays
            for fifo in &mut self.fifos {
                fifo.clear();
            }
            self.fifos.truncate(hosts);
            while self.fifos.len() < hosts {
                // dses-lint: allow(no-alloc-transitive) -- grow-once: fifos grow on a workspace's first run of a shape, then reused
                self.fifos.push(VecDeque::with_capacity(backlog));
            }
            self.expiry.clear();
            self.expiry.reserve(hosts.saturating_sub(self.expiry.capacity()));
        }
        if needs.needs_queue_len() && needs.needs_work_left() {
            // full reference loop: per-host completion min-heaps
            for heap in &mut self.heaps {
                heap.clear();
            }
            self.heaps.truncate(hosts);
            while self.heaps.len() < hosts {
                self.heaps.push(BinaryHeap::with_capacity(backlog));
            }
        }
    }

    /// Reset the fused-replication state: `lanes` interleaved host banks
    /// of `hosts` Lindley scalars each (`free_at[r*hosts..(r+1)*hosts]`
    /// is lane `r`'s bank), plus per-lane cursors. Lane RNGs, cutoffs,
    /// and collector configs are filled in by the fused entry point; the
    /// collectors themselves persist here so their buffers are reused
    /// across calls.
    pub(crate) fn reset_fused(&mut self, lanes: usize, hosts: usize) {
        self.free_at.clear();
        self.free_at.resize(lanes * hosts, 0.0);
        self.lane_rngs.clear();
        self.lane_counters.clear();
        self.lane_counters.resize(lanes, 0);
        self.lane_cutoffs.clear();
        while self.lane_collectors.len() < lanes {
            self.lane_collectors.push(Collector::new(0, MetricsConfig::default()));
        }
    }
}

impl Default for SimWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// The per-thread workspace behind the convenience wrappers. Taken
    /// out while in use (so a reentrant call — a policy that itself
    /// simulates — falls back to a fresh temporary instead of aliasing).
    static WORKSPACE: RefCell<Option<Box<SimWorkspace>>> = const { RefCell::new(None) };
}

/// Run `f` with this thread's reusable workspace (creating it on first
/// use), putting it back afterwards for the next run on this thread.
pub(crate) fn with_thread_workspace<R>(f: impl FnOnce(&mut SimWorkspace) -> R) -> R {
    WORKSPACE.with(|cell| {
        let taken = cell.borrow_mut().take();
        let mut ws = taken.unwrap_or_else(|| Box::new(SimWorkspace::new()));
        let result = f(&mut ws);
        *cell.borrow_mut() = Some(ws);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_fast_shapes_buffers() {
        let mut ws = SimWorkspace::new();
        ws.reset_fast(3, 64, StateNeeds::QUEUE_LEN);
        assert_eq!(ws.free_at, vec![0.0; 3]);
        assert_eq!(ws.views.len(), 3);
        assert_eq!(ws.fifos.len(), 3);
        assert!(ws.fifos[0].capacity() >= 64);
        ws.reset_fast(3, 64, StateNeeds::ALL);
        assert_eq!(ws.heaps.len(), 3);
        // shrink then regrow: contents always start clean
        ws.free_at[1] = 7.0;
        ws.fifos[2].push_back(1.0);
        ws.heaps[0].push(Reverse(OrdF64(2.0)));
        ws.reset_fast(2, 64, StateNeeds::QUEUE_LEN);
        assert_eq!(ws.free_at, vec![0.0; 2]);
        assert!(ws.fifos.iter().all(VecDeque::is_empty));
        ws.reset_fast(2, 64, StateNeeds::ALL);
        assert!(ws.heaps.iter().all(BinaryHeap::is_empty));
        ws.reset_fast(5, 64, StateNeeds::QUEUE_LEN);
        assert_eq!(ws.free_at.len(), 5);
        assert_eq!(ws.fifos.len(), 5);
    }

    #[test]
    fn needs_aware_reset_skips_unused_containers() {
        // a static run on many hosts must not materialise per-host
        // deques/heaps — that is what lets h=1024 sweeps stay lean
        let mut ws = SimWorkspace::new();
        ws.reset_fast(1024, 32, StateNeeds::NOTHING);
        assert_eq!(ws.free_at.len(), 1024);
        assert_eq!(ws.views.len(), 1024);
        assert!(ws.fifos.is_empty());
        assert!(ws.heaps.is_empty());
        ws.reset_fast(1024, 32, StateNeeds::WORK_LEFT);
        assert!(ws.fifos.is_empty());
        assert!(ws.heaps.is_empty());
    }

    #[test]
    fn reset_fused_shapes_lane_banks() {
        let mut ws = SimWorkspace::new();
        ws.reset_fused(3, 4);
        assert_eq!(ws.free_at, vec![0.0; 12]);
        assert_eq!(ws.lane_counters, vec![0; 3]);
        assert!(ws.lane_collectors.len() >= 3);
        // poison, then reset to a smaller shape: banks start clean
        ws.free_at[5] = 9.0;
        ws.lane_counters[1] = 7;
        ws.reset_fused(2, 2);
        assert_eq!(ws.free_at, vec![0.0; 4]);
        assert_eq!(ws.lane_counters, vec![0; 2]);
    }

    #[test]
    fn thread_workspace_is_reused() {
        let first = with_thread_workspace(|ws| {
            ws.reset_fast(4, 32, StateNeeds::ALL);
            std::ptr::from_ref(&*ws) as usize
        });
        let second = with_thread_workspace(|ws| {
            assert_eq!(ws.free_at.len(), 4, "state persisted between uses");
            std::ptr::from_ref(&*ws) as usize
        });
        assert_eq!(first, second, "same boxed workspace both times");
    }

    #[test]
    fn reentrant_use_gets_a_fresh_temporary() {
        with_thread_workspace(|outer| {
            outer.reset_fast(2, 32, StateNeeds::ALL);
            with_thread_workspace(|inner| {
                assert_eq!(inner.free_at.len(), 0, "inner must not alias outer");
            });
        });
    }
}
