//! The general event-driven engine.
//!
//! This is the "honest" simulator: an event queue of arrivals and
//! departures drives per-host state machines. It supports both execution
//! models in the paper:
//!
//! * **dispatch-on-arrival** — a [`Dispatcher`] policy routes each job to
//!   a host queue the moment it arrives (Random, Round-Robin,
//!   Shortest-Queue, Least-Work-Left, SITA-*);
//! * **central queue** — jobs wait at the dispatcher and an idle host
//!   pulls the next job per a [`QueueDiscipline`] (the paper's
//!   Central-Queue policy under FCFS; SJF as the §8 extension).
//!
//! Tie-breaking is deterministic: at equal times, departures are
//! processed before arrivals (a host that frees exactly when a job
//! arrives is seen as idle), matching the Lindley-recursion semantics of
//! the fast engine so the two agree bit-for-bit.
//!
//! Like the fast engine, all per-run state (host state machines, the
//! departure heap, the central waiting room) lives in an
//! [`EventWorkspace`] inside a [`SimWorkspace`]: `run_dispatch_into` /
//! `run_central_queue_into` borrow one explicitly and reset it without
//! freeing; the plain entry points use the thread-local workspace.

use std::collections::VecDeque;

use crate::fast::OrdF64;
use crate::metrics::{JobRecord, MetricsConfig, SimResult};
use crate::state::{Dispatcher, HostView, QueueDiscipline, SystemState};
use crate::workspace::{with_thread_workspace, SimWorkspace};
use dses_dist::Rng64;
use dses_workload::{Job, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A host's state machine: at most one job in service plus a FIFO queue.
#[derive(Debug)]
struct Host {
    /// job in service: (job, service start, completion time)
    serving: Option<(Job, f64, f64)>,
    /// waiting room, FCFS order
    queue: VecDeque<Job>,
    /// time the host drains all accepted work — maintained with exactly
    /// the Lindley update the fast engine uses (`max(free_at, now) +
    /// size/speed`), so the two engines present bit-identical `work_left`
    /// views and make identical near-tie decisions
    free_at: f64,
    /// service speed relative to the reference host
    speed: f64,
}

impl Host {
    fn new(speed: f64, backlog: usize) -> Self {
        Self {
            serving: None,
            // dses-lint: allow(no-alloc-transitive) -- grow-once: hosts are built on a workspace's first run of a shape, then reused
            queue: VecDeque::with_capacity(backlog),
            free_at: 0.0,
            speed,
        }
    }

    /// Return to the initial state for a new run, keeping the queue's
    /// allocation and adopting this run's `speed`.
    fn reset(&mut self, speed: f64) {
        self.serving = None;
        self.queue.clear();
        self.free_at = 0.0;
        self.speed = speed;
    }

    fn view(&self, now: f64) -> HostView {
        let in_service = usize::from(self.serving.is_some());
        HostView {
            queue_len: self.queue.len() + in_service,
            work_left: (self.free_at - now).max(0.0),
        }
    }

    fn is_idle(&self) -> bool {
        self.serving.is_none() && self.queue.is_empty()
    }

    /// Account for an accepted job (Lindley update), mirroring the fast
    /// engine's assignment arithmetic.
    // dses-lint: divides(1)
    // dses-lint: mirrors(lindley)
    fn accept(&mut self, job: &Job, now: f64) {
        self.free_at = self.free_at.max(now) + job.size / self.speed;
    }

    /// Begin serving `job` at `now`; returns the completion time.
    // dses-lint: divides(1)
    fn start_service(&mut self, job: Job, now: f64) -> f64 {
        debug_assert!(self.serving.is_none(), "host already busy");
        let completion = now + job.size / self.speed;
        self.serving = Some((job, now, completion));
        completion
    }

    fn enqueue(&mut self, job: Job) {
        self.queue.push_back(job);
    }

    fn dequeue(&mut self) -> Option<Job> {
        self.queue.pop_front()
    }
}

/// Reusable state for the event-driven engine: host state machines, the
/// departure heap, policy views, and the central-queue waiting room.
/// Lives inside [`SimWorkspace`]; reset (without freeing) at the start of
/// every run.
#[derive(Debug)]
pub(crate) struct EventWorkspace {
    hosts: Vec<Host>,
    departures: BinaryHeap<Reverse<(OrdF64, usize)>>,
    views: Vec<HostView>,
    /// central waiting room, FCFS order
    fcfs: VecDeque<Job>,
    /// SJF: min-heap on (size, arrival sequence) — FCFS among equals
    sjf: BinaryHeap<Reverse<(OrdF64, u64)>>,
    // dses-lint: allow(determinism) -- keyed by job id, never iterated
    sjf_jobs: std::collections::HashMap<u64, Job>,
}

impl EventWorkspace {
    pub(crate) fn new() -> Self {
        Self {
            hosts: Vec::new(),
            departures: BinaryHeap::new(),
            views: Vec::new(),
            fcfs: VecDeque::new(),
            sjf: BinaryHeap::new(),
            // dses-lint: allow(determinism) -- keyed by job id, never iterated
            sjf_jobs: std::collections::HashMap::new(),
        }
    }

    /// Shape the workspace for a run over hosts with `speeds`, keeping
    /// every allocation. `backlog` sizes each host's waiting room (and
    /// the central room) from the trace, replacing the old fixed
    /// capacities that regrew mid-simulation on large runs.
    fn reset(&mut self, speeds: &[f64], backlog: usize) {
        let hosts = speeds.len();
        self.hosts.truncate(hosts);
        for (host, &speed) in self.hosts.iter_mut().zip(speeds) {
            host.reset(speed);
            host.queue.reserve(backlog.saturating_sub(host.queue.capacity()));
        }
        while self.hosts.len() < hosts {
            self.hosts.push(Host::new(speeds[self.hosts.len()], backlog));
        }
        self.departures.clear();
        // at most one in-service job per host can sit in the heap
        self.departures.reserve(hosts.saturating_sub(self.departures.capacity()));
        self.views.clear();
        self.views.resize(
            hosts,
            HostView {
                queue_len: 0,
                work_left: 0.0,
            },
        );
        self.fcfs.clear();
        self.fcfs.reserve(backlog.saturating_sub(self.fcfs.capacity()));
        self.sjf.clear();
        self.sjf.reserve(backlog.saturating_sub(self.sjf.capacity()));
        self.sjf_jobs.clear();
    }
}

/// The event-driven engine.
#[derive(Debug, Clone)]
pub struct EventEngine {
    speeds: Vec<f64>,
    cfg: MetricsConfig,
}

impl EventEngine {
    /// Create an engine for `hosts` identical hosts.
    #[must_use]
    pub fn new(hosts: usize, cfg: MetricsConfig) -> Self {
        assert!(hosts > 0, "need at least one host");
        Self {
            speeds: vec![1.0; hosts],
            cfg,
        }
    }

    /// Create an engine with per-host speeds (see
    /// [`crate::fast::simulate_dispatch_speeds`] for the convention).
    #[must_use]
    pub fn with_speeds(speeds: Vec<f64>, cfg: MetricsConfig) -> Self {
        assert!(!speeds.is_empty(), "need at least one host");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "host speeds must be positive and finite"
        );
        Self { speeds, cfg }
    }

    fn num_hosts(&self) -> usize {
        self.speeds.len()
    }

    /// Run a dispatch-on-arrival policy. Produces exactly the schedule of
    /// [`crate::fast::simulate_dispatch`]. Uses the thread-local
    /// workspace; see [`EventEngine::run_dispatch_into`].
    #[must_use]
    pub fn run_dispatch<P: Dispatcher + ?Sized>(
        &self,
        trace: &Trace,
        policy: &mut P,
        seed: u64,
    ) -> SimResult {
        with_thread_workspace(|ws| {
            let mut out = SimResult::empty();
            self.run_dispatch_into(trace, policy, seed, ws, &mut out);
            out
        })
    }

    /// [`EventEngine::run_dispatch`] through caller-owned buffers
    /// (allocation-free in steady state, like
    /// [`crate::fast::simulate_dispatch_into`]).
    ///
    /// Three divides per job: the Lindley update in [`Host::accept`],
    /// the completion time in [`Host::start_service`], and the
    /// collector's slowdown reciprocal — the oracle engine pays for
    /// clarity what the fast kernels hoist.
    // dses-lint: divides(3)
    // dses-lint: deny(alloc)
    pub fn run_dispatch_into<P: Dispatcher + ?Sized>(
        &self,
        trace: &Trace,
        policy: &mut P,
        seed: u64,
        ws: &mut SimWorkspace,
        out: &mut SimResult,
    ) {
        policy.reset();
        let mut rng = Rng64::seed_from(seed).stream(0xD15);
        ws.event.reset(&self.speeds, trace.backlog_hint(self.num_hosts()));
        ws.collector.reset(self.num_hosts(), self.cfg, trace.len());
        let SimWorkspace {
            collector, event, ..
        } = ws;
        let hosts = &mut event.hosts;
        let departures = &mut event.departures;
        let views = &mut event.views;
        let jobs = trace.jobs();
        let mut next = 0usize;
        loop {
            let arrival_time = jobs.get(next).map(|j| j.arrival);
            let departure_time = departures.peek().map(|Reverse((OrdF64(t), _))| *t);
            match (arrival_time, departure_time) {
                (None, None) => break,
                // departures first on ties: `d <= a`
                (a, Some(d)) if a.is_none_or(|a| d <= a) => {
                    // dses-lint: allow(panic-hygiene) -- heap non-empty: this arm matched Some(d)
                    let Reverse((OrdF64(now), h)) = departures.pop().expect("peeked");
                    let (job, start, completion) =
                        // dses-lint: allow(panic-hygiene) -- a departure is scheduled only while serving
                        hosts[h].serving.take().expect("departure from idle host");
                    debug_assert_eq!(completion, now);
                    collector.record(JobRecord {
                        id: job.id,
                        arrival: job.arrival,
                        size: job.size,
                        start,
                        completion,
                        host: h,
                    });
                    if let Some(nextjob) = hosts[h].dequeue() {
                        let c = hosts[h].start_service(nextjob, now);
                        departures.push(Reverse((OrdF64(c), h)));
                    }
                }
                (Some(now), _) => {
                    let job = jobs[next];
                    next += 1;
                    for (v, h) in views.iter_mut().zip(hosts.iter()) {
                        *v = h.view(now);
                    }
                    let state = SystemState {
                        now,
                        hosts: views.as_slice(),
                    };
                    let target = policy.dispatch(&job, &state, &mut rng);
                    assert!(
                        target < self.num_hosts(),
                        "policy {} returned host {target} of {}",
                        // dses-lint: allow(no-alloc-transitive) -- name() formats only on the assert failure path
                        policy.name(),
                        self.num_hosts()
                    );
                    hosts[target].accept(&job, now);
                    if hosts[target].serving.is_none() {
                        let c = hosts[target].start_service(job, now);
                        departures.push(Reverse((OrdF64(c), target)));
                    } else {
                        hosts[target].enqueue(job);
                    }
                }
                (None, Some(_)) => unreachable!("covered by the departure arm"),
            }
        }
        collector.finish_into(out);
    }

    /// Run a central-queue policy: jobs are held at the dispatcher and an
    /// idle host (lowest index first) pulls the next job per `discipline`.
    /// Uses the thread-local workspace; see
    /// [`EventEngine::run_central_queue_into`].
    #[must_use]
    pub fn run_central_queue(&self, trace: &Trace, discipline: QueueDiscipline) -> SimResult {
        with_thread_workspace(|ws| {
            let mut out = SimResult::empty();
            self.run_central_queue_into(trace, discipline, ws, &mut out);
            out
        })
    }

    /// [`EventEngine::run_central_queue`] through caller-owned buffers.
    // dses-lint: divides(2)
    // dses-lint: deny(alloc)
    pub fn run_central_queue_into(
        &self,
        trace: &Trace,
        discipline: QueueDiscipline,
        ws: &mut SimWorkspace,
        out: &mut SimResult,
    ) {
        ws.event.reset(&self.speeds, trace.backlog_hint(1));
        ws.collector.reset(self.num_hosts(), self.cfg, trace.len());
        let SimWorkspace {
            collector, event, ..
        } = ws;
        let hosts = &mut event.hosts;
        let departures = &mut event.departures;
        let fcfs = &mut event.fcfs;
        let sjf = &mut event.sjf;
        let sjf_jobs = &mut event.sjf_jobs;
        let push_central = |job: Job,
                            fcfs: &mut VecDeque<Job>,
                            sjf: &mut BinaryHeap<Reverse<(OrdF64, u64)>>,
                            // dses-lint: allow(determinism) -- keyed lookups only
                            sjf_jobs: &mut std::collections::HashMap<u64, Job>| {
            match discipline {
                QueueDiscipline::Fcfs => fcfs.push_back(job),
                QueueDiscipline::Sjf => {
                    sjf.push(Reverse((OrdF64(job.size), job.id)));
                    sjf_jobs.insert(job.id, job);
                }
            }
        };
        let pop_central = |fcfs: &mut VecDeque<Job>,
                           sjf: &mut BinaryHeap<Reverse<(OrdF64, u64)>>,
                           // dses-lint: allow(determinism) -- keyed lookups only
                           sjf_jobs: &mut std::collections::HashMap<u64, Job>| {
            match discipline {
                QueueDiscipline::Fcfs => fcfs.pop_front(),
                QueueDiscipline::Sjf => sjf
                    .pop()
                    // dses-lint: allow(panic-hygiene) -- every heap id was inserted by push_central
                    .map(|Reverse((_, id))| sjf_jobs.remove(&id).expect("job stored")),
            }
        };
        let jobs = trace.jobs();
        let mut next = 0usize;
        loop {
            let arrival_time = jobs.get(next).map(|j| j.arrival);
            let departure_time = departures.peek().map(|Reverse((OrdF64(t), _))| *t);
            match (arrival_time, departure_time) {
                (None, None) => break,
                (a, Some(d)) if a.is_none_or(|a| d <= a) => {
                    // dses-lint: allow(panic-hygiene) -- heap non-empty: this arm matched Some(d)
                    let Reverse((OrdF64(now), h)) = departures.pop().expect("peeked");
                    let (job, start, completion) =
                        // dses-lint: allow(panic-hygiene) -- a departure is scheduled only while serving
                        hosts[h].serving.take().expect("departure from idle host");
                    collector.record(JobRecord {
                        id: job.id,
                        arrival: job.arrival,
                        size: job.size,
                        start,
                        completion,
                        host: h,
                    });
                    if let Some(nextjob) = pop_central(fcfs, sjf, sjf_jobs) {
                        let c = hosts[h].start_service(nextjob, now);
                        departures.push(Reverse((OrdF64(c), h)));
                    }
                }
                (Some(now), _) => {
                    let job = jobs[next];
                    next += 1;
                    match hosts.iter().position(Host::is_idle) {
                        Some(h) => {
                            let c = hosts[h].start_service(job, now);
                            departures.push(Reverse((OrdF64(c), h)));
                        }
                        None => push_central(job, fcfs, sjf, sjf_jobs),
                    }
                }
                (None, Some(_)) => unreachable!("covered by the departure arm"),
            }
        }
        collector.finish_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::simulate_dispatch;

    struct MiniLwl;
    impl Dispatcher for MiniLwl {
        fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
            s.least_work()
        }
        fn name(&self) -> String {
            "lwl".into()
        }
    }

    fn trace(jobs: &[(f64, f64)]) -> Trace {
        Trace::new(
            jobs.iter()
                .enumerate()
                .map(|(i, &(a, s))| Job::new(i as u64, a, s))
                .collect(),
        )
    }

    fn records_cfg() -> MetricsConfig {
        MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        }
    }

    #[test]
    fn event_engine_matches_fast_engine_exactly() {
        let t = trace(&[
            (0.0, 5.0),
            (1.0, 1.0),
            (1.5, 8.0),
            (2.0, 0.5),
            (7.0, 3.0),
            (7.0, 2.0), // simultaneous arrivals
            (20.0, 1.0),
        ]);
        let fast = simulate_dispatch(&t, 2, &mut MiniLwl, 0, records_cfg());
        let ev = EventEngine::new(2, records_cfg()).run_dispatch(&t, &mut MiniLwl, 0);
        let mut fr = fast.records.unwrap();
        let mut er = ev.records.unwrap();
        fr.sort_by_key(|r| r.id);
        er.sort_by_key(|r| r.id);
        assert_eq!(fr, er);
    }

    #[test]
    fn explicit_workspace_matches_thread_local_path() {
        let t = trace(&[(0.0, 5.0), (1.0, 1.0), (1.5, 8.0), (2.0, 0.5)]);
        let engine = EventEngine::new(2, records_cfg());
        let implicit = engine.run_dispatch(&t, &mut MiniLwl, 0);
        let mut ws = SimWorkspace::new();
        let mut out = SimResult::empty();
        engine.run_dispatch_into(&t, &mut MiniLwl, 0, &mut ws, &mut out);
        assert_eq!(implicit.records.unwrap(), out.records.clone().unwrap());
        // and the central queue through the same (now dirty) workspace
        let implicit = engine.run_central_queue(&t, QueueDiscipline::Sjf);
        engine.run_central_queue_into(&t, QueueDiscipline::Sjf, &mut ws, &mut out);
        assert_eq!(implicit.records.unwrap(), out.records.unwrap());
    }

    #[test]
    fn central_queue_fcfs_hand_schedule() {
        // 2 hosts. Jobs: (0,10), (0,10) occupy both; (1, 2) waits; first
        // host frees at 10 → job 2 starts at 10.
        let t = trace(&[(0.0, 10.0), (0.0, 10.0), (1.0, 2.0)]);
        let r = EventEngine::new(2, records_cfg()).run_central_queue(&t, QueueDiscipline::Fcfs);
        let recs = r.records.unwrap();
        let j2 = recs.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(j2.start, 10.0);
        assert_eq!(j2.completion, 12.0);
    }

    #[test]
    fn central_queue_sjf_reorders_by_size() {
        // one host busy until t=10; three waiting jobs of sizes 5, 1, 3
        // SJF serves 1, then 3, then 5.
        let t = trace(&[(0.0, 10.0), (1.0, 5.0), (2.0, 1.0), (3.0, 3.0)]);
        let r = EventEngine::new(1, records_cfg()).run_central_queue(&t, QueueDiscipline::Sjf);
        let recs = r.records.unwrap();
        let by_id: Vec<f64> = (0..4)
            .map(|id| recs.iter().find(|r| r.id == id).unwrap().start)
            .collect();
        assert_eq!(by_id, vec![0.0, 14.0, 10.0, 11.0]);
    }

    #[test]
    fn sjf_is_fcfs_among_equal_sizes() {
        let t = trace(&[(0.0, 10.0), (1.0, 2.0), (2.0, 2.0)]);
        let r = EventEngine::new(1, records_cfg()).run_central_queue(&t, QueueDiscipline::Sjf);
        let recs = r.records.unwrap();
        let j1 = recs.iter().find(|r| r.id == 1).unwrap();
        let j2 = recs.iter().find(|r| r.id == 2).unwrap();
        assert!(j1.start < j2.start, "ties must preserve arrival order");
    }

    #[test]
    fn departure_processed_before_simultaneous_arrival() {
        // host busy exactly until t=5; a job arriving at t=5 must start
        // immediately (host seen idle).
        let t = trace(&[(0.0, 5.0), (5.0, 1.0)]);
        let r = EventEngine::new(1, records_cfg()).run_central_queue(&t, QueueDiscipline::Fcfs);
        let recs = r.records.unwrap();
        let j1 = recs.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(j1.start, 5.0);
        assert_eq!(j1.slowdown(), 1.0);
    }

    #[test]
    fn idle_host_selection_prefers_lowest_index() {
        let t = trace(&[(0.0, 1.0)]);
        let r = EventEngine::new(3, records_cfg()).run_central_queue(&t, QueueDiscipline::Fcfs);
        assert_eq!(r.records.unwrap()[0].host, 0);
    }

    #[test]
    fn all_jobs_complete_and_work_is_conserved() {
        let t = trace(&[(0.0, 3.0), (0.1, 1.0), (0.2, 4.0), (0.3, 1.0), (0.4, 5.0)]);
        for disc in [QueueDiscipline::Fcfs, QueueDiscipline::Sjf] {
            let r = EventEngine::new(2, MetricsConfig::default()).run_central_queue(&t, disc);
            assert_eq!(r.measured, 5);
            let total: f64 = r.per_host.iter().map(|h| h.work).sum();
            assert!((total - 14.0).abs() < 1e-12, "{disc:?}");
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::new(vec![]);
        let r = EventEngine::new(2, MetricsConfig::default()).run_central_queue(&t, QueueDiscipline::Fcfs);
        assert_eq!(r.measured, 0);
        let r2 = EventEngine::new(2, MetricsConfig::default()).run_dispatch(&t, &mut MiniLwl, 0);
        assert_eq!(r2.measured, 0);
    }
}
