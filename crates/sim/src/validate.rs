//! Cross-validation helpers used by tests, benches and the `claims`
//! exhibit binary.
//!
//! The key check is the paper's §3.1 citation of \[11\]: **Least-Work-Left
//! is equivalent to Central-Queue for any sequence of job requests** —
//! not just in distribution, but job-for-job. [`assert_response_equivalence`]
//! verifies that two runs gave every job the same response time.

use crate::metrics::JobRecord;

/// Maximum relative deviation between two runs' per-job response times.
///
/// Records are matched by job id; both slices must cover the same ids.
///
/// # Panics
/// Panics if the id sets differ.
#[must_use]
pub fn max_response_deviation(a: &[JobRecord], b: &[JobRecord]) -> f64 {
    assert_eq!(a.len(), b.len(), "record sets differ in length");
    let mut a_sorted = a.to_vec();
    let mut b_sorted = b.to_vec();
    a_sorted.sort_by_key(|r| r.id);
    b_sorted.sort_by_key(|r| r.id);
    let mut worst = 0.0f64;
    for (ra, rb) in a_sorted.iter().zip(&b_sorted) {
        assert_eq!(ra.id, rb.id, "record id mismatch");
        let denom = ra.response().abs().max(1e-12);
        worst = worst.max((ra.response() - rb.response()).abs() / denom);
    }
    worst
}

/// Assert two runs are response-time equivalent within `tol` relative
/// error (use `0.0` + a tiny epsilon for the exact LWL ≡ Central-Queue
/// theorem).
pub fn assert_response_equivalence(a: &[JobRecord], b: &[JobRecord], tol: f64) {
    let dev = max_response_deviation(a, b);
    assert!(
        dev <= tol,
        "runs differ: max relative response deviation {dev} > {tol}"
    );
}

/// Check the FCFS invariant: on each host, jobs start in arrival order.
#[must_use]
pub fn fcfs_order_respected(records: &[JobRecord]) -> bool {
    let hosts = records.iter().map(|r| r.host).max().map_or(0, |h| h + 1);
    for host in 0..hosts {
        let mut host_recs: Vec<&JobRecord> = records.iter().filter(|r| r.host == host).collect();
        host_recs.sort_by(|x, y| x.arrival.total_cmp(&y.arrival).then(x.id.cmp(&y.id)));
        for w in host_recs.windows(2) {
            if w[1].start < w[0].start {
                return false;
            }
        }
    }
    true
}

/// Check work conservation on each host: service periods never overlap
/// and each job is served for exactly its size.
#[must_use]
pub fn service_is_exclusive_and_exact(records: &[JobRecord]) -> bool {
    let hosts = records.iter().map(|r| r.host).max().map_or(0, |h| h + 1);
    for host in 0..hosts {
        let mut intervals: Vec<(f64, f64)> = records
            .iter()
            .filter(|r| r.host == host)
            .map(|r| (r.start, r.completion))
            .collect();
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in intervals.windows(2) {
            // tolerance scales with the clock value (f64 ulps grow with t)
            let tol = 1e-9 * w[0].1.abs().max(1.0);
            if w[1].0 < w[0].1 - tol {
                return false; // overlap: two jobs on one host at once
            }
        }
    }
    records.iter().all(|r| {
        let tol = 1e-9 * r.start.abs().max(r.size).max(1.0);
        (r.completion - r.start - r.size).abs() < tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: f64, size: f64, start: f64, host: usize) -> JobRecord {
        JobRecord {
            id,
            arrival,
            size,
            start,
            completion: start + size,
            host,
        }
    }

    #[test]
    fn equivalence_of_identical_runs() {
        let a = vec![rec(0, 0.0, 1.0, 0.0, 0), rec(1, 1.0, 2.0, 1.0, 1)];
        let b = a.clone();
        assert_eq!(max_response_deviation(&a, &b), 0.0);
        assert_response_equivalence(&a, &b, 0.0);
    }

    #[test]
    fn equivalence_ignores_host_assignment() {
        // same response times on different hosts: still equivalent
        let a = vec![rec(0, 0.0, 1.0, 0.0, 0)];
        let b = vec![rec(0, 0.0, 1.0, 0.0, 1)];
        assert_eq!(max_response_deviation(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "runs differ")]
    fn detects_divergent_runs() {
        let a = vec![rec(0, 0.0, 1.0, 0.0, 0)];
        let b = vec![rec(0, 0.0, 1.0, 5.0, 0)];
        assert_response_equivalence(&a, &b, 1e-9);
    }

    #[test]
    fn order_matching_is_by_id() {
        let a = vec![rec(1, 1.0, 2.0, 1.0, 0), rec(0, 0.0, 1.0, 0.0, 0)];
        let b = vec![rec(0, 0.0, 1.0, 0.0, 0), rec(1, 1.0, 2.0, 1.0, 0)];
        assert_eq!(max_response_deviation(&a, &b), 0.0);
    }

    #[test]
    fn fcfs_order_check() {
        let good = vec![rec(0, 0.0, 5.0, 0.0, 0), rec(1, 1.0, 1.0, 5.0, 0)];
        assert!(fcfs_order_respected(&good));
        let bad = vec![rec(0, 0.0, 5.0, 1.0, 0), rec(1, 1.0, 1.0, 0.0, 0)];
        assert!(!fcfs_order_respected(&bad));
    }

    #[test]
    fn exclusivity_check() {
        let good = vec![rec(0, 0.0, 5.0, 0.0, 0), rec(1, 0.0, 1.0, 5.0, 0)];
        assert!(service_is_exclusive_and_exact(&good));
        let overlapping = vec![rec(0, 0.0, 5.0, 0.0, 0), rec(1, 0.0, 1.0, 2.0, 0)];
        assert!(!service_is_exclusive_and_exact(&overlapping));
        // wrong service duration
        let mut wrong = vec![rec(0, 0.0, 5.0, 0.0, 0)];
        wrong[0].completion = 7.0;
        assert!(!service_is_exclusive_and_exact(&wrong));
    }

    #[test]
    fn different_hosts_may_overlap_in_time() {
        let parallel = vec![rec(0, 0.0, 5.0, 0.0, 0), rec(1, 0.0, 5.0, 0.0, 1)];
        assert!(service_is_exclusive_and_exact(&parallel));
    }
}
