//! Per-job records and aggregated performance metrics.
//!
//! The paper's three performance goals (§1.2) are mean slowdown, variance
//! of slowdown, and fairness (expected slowdown conditioned on job size);
//! it also reports mean/variance of response time. [`SimResult`] carries
//! all of them, plus the per-host load shares that Figure 5's
//! "fraction of load on Host 1" series needs.

use dses_dist::{LogHistogram, Moments, OnlineMoments, QuantileSet};

/// The outcome of one job's passage through the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// job id (arrival order)
    pub id: u64,
    /// arrival time at the dispatcher
    pub arrival: f64,
    /// service requirement
    pub size: f64,
    /// time service began
    pub start: f64,
    /// time service completed
    pub completion: f64,
    /// host that served the job
    pub host: usize,
}

impl JobRecord {
    /// Waiting time in queue: `start − arrival`.
    #[must_use]
    pub fn waiting(&self) -> f64 {
        self.start - self.arrival
    }

    /// Response time (sojourn): `completion − arrival`.
    #[must_use]
    pub fn response(&self) -> f64 {
        self.completion - self.arrival
    }

    /// Slowdown: response time / service requirement (≥ 1).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.response() / self.size
    }

    /// Queueing slowdown: waiting time / service requirement (≥ 0).
    ///
    /// The paper's Theorem 1 works with `E{S} = E{W/X}`; the two
    /// conventions differ by exactly 1 (`slowdown = 1 + W/X`), so either
    /// supports the same comparisons.
    #[must_use]
    pub fn queueing_slowdown(&self) -> f64 {
        self.waiting() / self.size
    }
}

/// What to collect during a run.
///
/// Two modes matter in practice:
///
/// * **streaming** (the default, [`MetricsConfig::streaming`]) — every
///   aggregate is O(1) memory: Welford accumulators for the four moment
///   sets, the log-binned fairness histogram (fixed bin count), and the
///   P² percentile estimators. Nothing grows with the number of jobs, so
///   sweeps over millions of jobs run allocation-free in the metrics
///   layer. This is what `Experiment` sweeps and replications use.
/// * **full-record** ([`MetricsConfig::full_records`]) — additionally
///   buffers every [`JobRecord`] (48 B/job) for validation: engine
///   cross-checks, schedule invariants, batch-means analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsConfig {
    /// Skip this many leading jobs from aggregates (warm-up trim).
    pub warmup_jobs: usize,
    /// Keep per-job records (memory: 48 B/job).
    pub collect_records: bool,
    /// Number of log-spaced size bins for the fairness profile
    /// (0 disables it).
    pub fairness_bins: usize,
    /// Size range for the fairness profile (defaults to `(0.01, 1e7)`).
    pub fairness_range: (f64, f64),
    /// If set, also split slowdown statistics into "short" (size ≤ cutoff)
    /// and "long" (size > cutoff) classes — the SITA-U-fair criterion.
    pub split_cutoff: Option<f64>,
    /// Track streaming slowdown percentiles (p50/p90/p95/p99) via the
    /// P² estimator — O(1) memory, no record buffering.
    pub slowdown_percentiles: bool,
    /// If set, count jobs whose slowdown exceeds this service-level
    /// threshold — "predictable slowdown" (§1.2) as an SLO violation
    /// fraction.
    pub slo_slowdown: Option<f64>,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            warmup_jobs: 0,
            collect_records: false,
            fairness_bins: 0,
            fairness_range: (0.01, 1.0e7),
            split_cutoff: None,
            slowdown_percentiles: false,
            slo_slowdown: None,
        }
    }
}

impl MetricsConfig {
    /// The zero-buffer streaming mode: constant memory regardless of how
    /// many jobs a run processes. Identical to [`MetricsConfig::default`];
    /// the name exists so call sites can state the intent.
    #[must_use]
    pub fn streaming() -> Self {
        Self::default()
    }

    /// Full-record mode for validation: streaming aggregates plus a
    /// buffered [`JobRecord`] per job.
    #[must_use]
    pub fn full_records() -> Self {
        Self {
            collect_records: true,
            ..Self::default()
        }
    }

    /// Whether any per-job buffering happens (false ⇒ O(1) memory).
    #[must_use]
    pub fn buffers_records(&self) -> bool {
        self.collect_records
    }
}

/// Per-host accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostStats {
    /// jobs served by this host
    pub jobs: u64,
    /// total work (sum of service requirements) served by this host
    pub work: f64,
}

/// Aggregated result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// slowdown (response / size) moments
    pub slowdown: Moments,
    /// queueing slowdown (waiting / size) moments
    pub queueing_slowdown: Moments,
    /// response-time moments
    pub response: Moments,
    /// waiting-time moments
    pub waiting: Moments,
    /// per-host job/work tallies (over measured jobs)
    pub per_host: Vec<HostStats>,
    /// completion time of the last job
    pub makespan: f64,
    /// number of jobs contributing to the aggregates
    pub measured: u64,
    /// number of warm-up jobs excluded
    pub skipped: u64,
    /// slowdown-vs-size fairness profile, if requested
    pub fairness: Option<LogHistogram>,
    /// slowdown moments of jobs with `size ≤ cutoff`, if a split was set
    pub short_slowdown: Option<Moments>,
    /// slowdown moments of jobs with `size > cutoff`, if a split was set
    pub long_slowdown: Option<Moments>,
    /// streaming slowdown percentiles `(q, estimate)`, if requested
    pub slowdown_percentiles: Option<Vec<(f64, f64)>>,
    /// `(violations, threshold)`: jobs whose slowdown exceeded the SLO,
    /// if a threshold was set
    pub slo_violations: Option<(u64, f64)>,
    /// per-job records, if requested
    pub records: Option<Vec<JobRecord>>,
}

impl SimResult {
    /// A result describing no jobs at all — the starting value for
    /// [`Collector::finish_into`], which overwrites every field while
    /// reusing whatever buffers a previous run left behind.
    #[must_use]
    pub fn empty() -> Self {
        let nothing = OnlineMoments::new().finish();
        Self {
            slowdown: nothing,
            queueing_slowdown: nothing,
            response: nothing,
            waiting: nothing,
            per_host: Vec::new(),
            makespan: 0.0,
            measured: 0,
            skipped: 0,
            fairness: None,
            short_slowdown: None,
            long_slowdown: None,
            slowdown_percentiles: None,
            slo_violations: None,
            records: None,
        }
    }

    /// Fraction of the measured *work* served by host `i` — Figure 5's
    /// y-axis ("fraction of the total load which goes to Host 1").
    #[must_use]
    pub fn load_fraction(&self, host: usize) -> f64 {
        let total: f64 = self.per_host.iter().map(|h| h.work).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.per_host[host].work / total
        }
    }

    /// Fraction of measured *jobs* dispatched to host `i` (the paper's
    /// §3.3 "98.7 % of jobs go to Host 1 under SITA-E").
    #[must_use]
    pub fn job_fraction(&self, host: usize) -> f64 {
        let total: u64 = self.per_host.iter().map(|h| h.jobs).sum();
        if total == 0 {
            0.0
        } else {
            self.per_host[host].jobs as f64 / total as f64
        }
    }

    /// Fraction of measured jobs violating the configured slowdown SLO
    /// (`None` when no threshold was set).
    #[must_use]
    pub fn slo_violation_fraction(&self) -> Option<f64> {
        self.slo_violations.map(|(v, _)| {
            if self.measured == 0 {
                0.0
            } else {
                v as f64 / self.measured as f64
            }
        })
    }

    /// Host utilisations: work served / makespan.
    #[must_use]
    pub fn utilizations(&self) -> Vec<f64> {
        self.per_host
            .iter()
            .map(|h| if self.makespan > 0.0 { h.work / self.makespan } else { 0.0 })
            .collect()
    }
}

/// Streaming collector that the engines feed records into.
#[derive(Debug)]
pub struct Collector {
    cfg: MetricsConfig,
    slowdown: OnlineMoments,
    queueing_slowdown: OnlineMoments,
    response: OnlineMoments,
    waiting: OnlineMoments,
    per_host: Vec<HostStats>,
    makespan: f64,
    seen: u64,
    fairness: Option<LogHistogram>,
    short_slowdown: OnlineMoments,
    long_slowdown: OnlineMoments,
    percentiles: Option<QuantileSet>,
    slo_violations: u64,
    records: Option<Vec<JobRecord>>,
    /// `inv_n[k] = 1.0 / (k + 1)` for the first `expected_jobs` counts —
    /// the same single IEEE divide [`Collector::record_with_inv`] would
    /// issue per job, precomputed once at reset so the steady-state
    /// record path performs **zero** divides. Grow-once: reset extends
    /// but never shrinks, and counts past the table fall back to the
    /// live divide (bitwise the same value).
    inv_n: Vec<f64>,
}

impl Collector {
    /// Create a collector for `hosts` hosts.
    #[must_use]
    pub fn new(hosts: usize, cfg: MetricsConfig) -> Self {
        Self::with_job_hint(hosts, cfg, 0)
    }

    /// Create a collector for `hosts` hosts, pre-sizing the record buffer
    /// for `expected_jobs` completions (engines pass the trace length so
    /// full-record runs never pay repeated reallocation; streaming mode
    /// ignores the hint).
    #[must_use]
    pub fn with_job_hint(hosts: usize, cfg: MetricsConfig, expected_jobs: usize) -> Self {
        let fairness = (cfg.fairness_bins > 0).then(|| {
            let (lo, hi) = cfg.fairness_range;
            LogHistogram::new(lo, hi, cfg.fairness_bins)
        });
        Self {
            cfg,
            slowdown: OnlineMoments::new(),
            queueing_slowdown: OnlineMoments::new(),
            response: OnlineMoments::new(),
            waiting: OnlineMoments::new(),
            per_host: vec![HostStats::default(); hosts],
            makespan: 0.0,
            seen: 0,
            fairness,
            short_slowdown: OnlineMoments::new(),
            long_slowdown: OnlineMoments::new(),
            percentiles: cfg.slowdown_percentiles.then(QuantileSet::default),
            slo_violations: 0,
            records: cfg.collect_records.then(|| Vec::with_capacity(expected_jobs)),
            inv_n: (0..expected_jobs).map(|k| 1.0 / (k + 1) as f64).collect(),
        }
    }

    /// Reconfigure for a new run, clearing without freeing.
    ///
    /// After `reset(hosts, cfg, expected_jobs)` the collector is
    /// observationally identical to `Collector::with_job_hint(hosts, cfg,
    /// expected_jobs)` — the engines' reusable-workspace entry points rely
    /// on that to stay bit-for-bit equal to fresh-allocation runs — but
    /// every growable buffer (per-host stats, the fairness histogram when
    /// its layout is unchanged, the record vector) keeps its allocation.
    pub fn reset(&mut self, hosts: usize, cfg: MetricsConfig, expected_jobs: usize) {
        self.cfg = cfg;
        self.slowdown = OnlineMoments::new();
        self.queueing_slowdown = OnlineMoments::new();
        self.response = OnlineMoments::new();
        self.waiting = OnlineMoments::new();
        self.per_host.clear();
        self.per_host.resize(hosts, HostStats::default());
        self.makespan = 0.0;
        self.seen = 0;
        if cfg.fairness_bins > 0 {
            let (lo, hi) = cfg.fairness_range;
            match &mut self.fairness {
                Some(f) if f.has_layout(lo, hi, cfg.fairness_bins) => f.reset(),
                other => *other = Some(LogHistogram::new(lo, hi, cfg.fairness_bins)),
            }
        } else {
            self.fairness = None;
        }
        self.short_slowdown = OnlineMoments::new();
        self.long_slowdown = OnlineMoments::new();
        if cfg.slowdown_percentiles {
            match &mut self.percentiles {
                Some(p) => p.reset(),
                other => *other = Some(QuantileSet::default()),
            }
        } else {
            self.percentiles = None;
        }
        self.slo_violations = 0;
        if cfg.collect_records {
            match &mut self.records {
                Some(v) => {
                    v.clear();
                    v.reserve(expected_jobs);
                }
                // dses-lint: allow(no-alloc-transitive) -- grow-once: records are built when first enabled, then cleared and reused
                other => *other = Some(Vec::with_capacity(expected_jobs)),
            }
        } else {
            self.records = None;
        }
        if self.inv_n.len() < expected_jobs {
            // dses-lint: allow(no-alloc-transitive) -- grow-once: the reciprocal table only extends when a larger trace arrives
            self.inv_n.extend((self.inv_n.len()..expected_jobs).map(|k| 1.0 / (k + 1) as f64));
        }
    }

    /// Record one completed job.
    ///
    /// The four always-on moment streams advance in lockstep (same count
    /// after every call), so one `1/n` reciprocal serves all four pushes,
    /// and one `1/size` serves both slowdown ratios — two divides per job
    /// where the naive form issues fourteen. Divide throughput, not
    /// flops, bounds the specialized kernels (see DESIGN.md §11).
    #[inline]
    pub fn record(&mut self, rec: JobRecord) {
        self.record_with_inv(rec, 1.0 / rec.size);
    }

    /// [`Collector::record`] with the caller supplying `1.0 / rec.size`.
    ///
    /// The fast-engine kernels stream `Trace::inv_sizes`, where the
    /// reciprocal was computed once at trace construction — the same
    /// single IEEE divide this method would otherwise issue per job, so
    /// results are bitwise unchanged (a `debug_assert` pins the bit
    /// pattern). This takes the metrics path to one divide per job.
    #[inline]
    pub fn record_with_inv(&mut self, rec: JobRecord, inv_size: f64) {
        debug_assert!(rec.start >= rec.arrival, "service before arrival");
        debug_assert!(rec.completion >= rec.start, "negative service");
        debug_assert_eq!(
            inv_size.to_bits(),
            (1.0 / rec.size).to_bits(),
            "inv_size must be the bitwise reciprocal of rec.size"
        );
        self.makespan = self.makespan.max(rec.completion);
        self.seen += 1;
        if self.seen <= self.cfg.warmup_jobs as u64 {
            return;
        }
        let count = self.slowdown.count() as usize;
        // Table hit in every engine run (reset sizes it to the trace);
        // the fallback divide computes the identical bit pattern for
        // hand-built collectors that outgrow their hint.
        let inv_n = match self.inv_n.get(count) {
            Some(&v) => v,
            None => 1.0 / (count + 1) as f64,
        };
        let response = rec.completion - rec.arrival;
        let waiting = rec.start - rec.arrival;
        let s = response * inv_size;
        self.slowdown.push_with_inv(s, inv_n);
        self.queueing_slowdown.push_with_inv(waiting * inv_size, inv_n);
        self.response.push_with_inv(response, inv_n);
        self.waiting.push_with_inv(waiting, inv_n);
        let h = &mut self.per_host[rec.host];
        h.jobs += 1;
        h.work += rec.size;
        if let Some(f) = &mut self.fairness {
            f.record(rec.size, s);
        }
        if let Some(cutoff) = self.cfg.split_cutoff {
            if rec.size <= cutoff {
                self.short_slowdown.push(s);
            } else {
                self.long_slowdown.push(s);
            }
        }
        if let Some(p) = &mut self.percentiles {
            p.push(s);
        }
        if let Some(threshold) = self.cfg.slo_slowdown {
            if s > threshold {
                self.slo_violations += 1;
            }
        }
        if let Some(v) = &mut self.records {
            v.push(rec);
        }
    }

    /// Finish the run.
    #[must_use]
    pub fn finish(self) -> SimResult {
        let measured = self.slowdown.count();
        SimResult {
            slowdown: self.slowdown.finish(),
            queueing_slowdown: self.queueing_slowdown.finish(),
            response: self.response.finish(),
            waiting: self.waiting.finish(),
            per_host: self.per_host,
            makespan: self.makespan,
            measured,
            skipped: self.seen - measured,
            fairness: self.fairness,
            short_slowdown: self.cfg.split_cutoff.map(|_| self.short_slowdown.finish()),
            long_slowdown: self.cfg.split_cutoff.map(|_| self.long_slowdown.finish()),
            slowdown_percentiles: self.percentiles.map(|p| p.estimates()),
            slo_violations: self.cfg.slo_slowdown.map(|t| (self.slo_violations, t)),
            records: self.records,
        }
    }

    /// Finish the run into an existing result, reusing its buffers.
    ///
    /// Writes exactly what [`Collector::finish`] would return, but keeps
    /// the collector alive (it is workspace state) and routes every
    /// growable field through `clone_from`/`extend`, so a result that
    /// already went through a run of the same shape absorbs this one with
    /// zero heap allocation — the steady state of a reused-workspace
    /// sweep.
    pub fn finish_into(&self, out: &mut SimResult) {
        let measured = self.slowdown.count();
        out.slowdown = self.slowdown.finish();
        out.queueing_slowdown = self.queueing_slowdown.finish();
        out.response = self.response.finish();
        out.waiting = self.waiting.finish();
        out.per_host.clear();
        out.per_host.extend_from_slice(&self.per_host);
        out.makespan = self.makespan;
        out.measured = measured;
        out.skipped = self.seen - measured;
        match (&self.fairness, &mut out.fairness) {
            (Some(src), Some(dst)) => dst.clone_from(src),
            (Some(src), dst) => *dst = Some(src.clone()),
            (None, dst) => *dst = None,
        }
        out.short_slowdown = self.cfg.split_cutoff.map(|_| self.short_slowdown.finish());
        out.long_slowdown = self.cfg.split_cutoff.map(|_| self.long_slowdown.finish());
        match (&self.percentiles, &mut out.slowdown_percentiles) {
            (Some(src), Some(dst)) => src.estimates_into(dst),
            (Some(src), dst) => *dst = Some(src.estimates()),
            (None, dst) => *dst = None,
        }
        out.slo_violations = self.cfg.slo_slowdown.map(|t| (self.slo_violations, t));
        match (&self.records, &mut out.records) {
            (Some(src), Some(dst)) => dst.clone_from(src),
            (Some(src), dst) => *dst = Some(src.clone()),
            (None, dst) => *dst = None,
        }
    }
}

/// Batch-means confidence half-width for the mean of `values` at roughly
/// 95 % confidence, using `batches` equal batches.
///
/// Returns `(mean, half_width)`. The batch-means method absorbs the
/// autocorrelation of within-run job metrics that a naive standard error
/// would ignore.
#[must_use]
pub fn batch_means_ci(values: &[f64], batches: usize) -> (f64, f64) {
    assert!(batches >= 2, "need at least 2 batches");
    let n = values.len();
    if n < batches {
        let mean = values.iter().sum::<f64>() / n.max(1) as f64;
        return (mean, f64::INFINITY);
    }
    let per = n / batches;
    let means: Vec<f64> = (0..batches)
        .map(|b| values[b * per..(b + 1) * per].iter().sum::<f64>() / per as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / batches as f64;
    let var = means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>()
        / (batches - 1) as f64;
    // t-quantile ~ 2.0 is adequate for ≥ 10 batches at 95%
    let half = 2.0 * (var / batches as f64).sqrt();
    (grand, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: f64, size: f64, start: f64, host: usize) -> JobRecord {
        JobRecord {
            id,
            arrival,
            size,
            start,
            completion: start + size,
            host,
        }
    }

    #[test]
    fn job_record_derived_metrics() {
        let r = rec(0, 10.0, 4.0, 12.0, 0);
        assert_eq!(r.waiting(), 2.0);
        assert_eq!(r.response(), 6.0);
        assert_eq!(r.slowdown(), 1.5);
        assert_eq!(r.queueing_slowdown(), 0.5);
    }

    #[test]
    fn collector_aggregates() {
        let mut c = Collector::new(2, MetricsConfig::default());
        c.record(rec(0, 0.0, 2.0, 0.0, 0)); // slowdown 1
        c.record(rec(1, 0.0, 1.0, 1.0, 1)); // slowdown 2
        let r = c.finish();
        assert_eq!(r.measured, 2);
        assert!((r.slowdown.mean - 1.5).abs() < 1e-12);
        assert_eq!(r.per_host[0].jobs, 1);
        assert_eq!(r.per_host[1].work, 1.0);
        assert_eq!(r.makespan, 2.0);
    }

    #[test]
    fn warmup_jobs_are_skipped_but_count_into_makespan() {
        let mut c = Collector::new(1, MetricsConfig {
            warmup_jobs: 1,
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 100.0, 0));
        c.record(rec(1, 0.0, 1.0, 0.0, 0));
        let r = c.finish();
        assert_eq!(r.measured, 1);
        assert_eq!(r.skipped, 1);
        assert!((r.slowdown.mean - 1.0).abs() < 1e-12); // only second job
        assert_eq!(r.makespan, 101.0);
    }

    #[test]
    fn load_and_job_fractions() {
        let mut c = Collector::new(2, MetricsConfig::default());
        c.record(rec(0, 0.0, 3.0, 0.0, 0));
        c.record(rec(1, 0.0, 1.0, 0.0, 1));
        let r = c.finish();
        assert!((r.load_fraction(0) - 0.75).abs() < 1e-12);
        assert!((r.job_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_cutoff_classifies_short_and_long() {
        let mut c = Collector::new(1, MetricsConfig {
            split_cutoff: Some(2.0),
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 1.0, 0)); // short, slowdown 2
        c.record(rec(1, 0.0, 4.0, 0.0, 0)); // long, slowdown 1
        let r = c.finish();
        assert!((r.short_slowdown.unwrap().mean - 2.0).abs() < 1e-12);
        assert!((r.long_slowdown.unwrap().mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_histogram_populates() {
        let mut c = Collector::new(1, MetricsConfig {
            fairness_bins: 10,
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 0.0, 0));
        c.record(rec(1, 0.0, 1.0e6, 0.0, 0));
        let r = c.finish();
        let bins: Vec<_> = r.fairness.unwrap().populated_bins().map(|(c, _)| c).collect();
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn records_collected_when_asked() {
        let mut c = Collector::new(1, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 0.0, 0));
        let r = c.finish();
        assert_eq!(r.records.unwrap().len(), 1);
    }

    #[test]
    fn record_with_inv_matches_record_bitwise() {
        let jobs = [(0.0, 3.0, 1.5), (1.0, 7.0, 2.0), (2.5, 0.5, 4.0)];
        let mut plain = Collector::new(1, MetricsConfig::default());
        let mut with_inv = Collector::new(1, MetricsConfig::default());
        for (i, &(arrival, size, start)) in jobs.iter().enumerate() {
            let r = rec(i as u64, arrival, size, start, 0);
            plain.record(r);
            with_inv.record_with_inv(r, 1.0 / size);
        }
        let a = plain.finish();
        let b = with_inv.finish();
        assert_eq!(a.slowdown.mean.to_bits(), b.slowdown.mean.to_bits());
        assert_eq!(a.slowdown.variance.to_bits(), b.slowdown.variance.to_bits());
        assert_eq!(
            a.queueing_slowdown.mean.to_bits(),
            b.queueing_slowdown.mean.to_bits()
        );
    }

    #[test]
    fn batch_means_on_iid_data() {
        // constant data → zero half width
        let v = vec![5.0; 1000];
        let (m, h) = batch_means_ci(&v, 10);
        assert_eq!(m, 5.0);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn batch_means_small_sample_is_honest() {
        let (_, h) = batch_means_ci(&[1.0, 2.0], 10);
        assert_eq!(h, f64::INFINITY);
    }

    #[test]
    fn utilizations_from_makespan() {
        let mut c = Collector::new(2, MetricsConfig::default());
        c.record(rec(0, 0.0, 4.0, 0.0, 0));
        c.record(rec(1, 0.0, 8.0, 2.0, 1)); // completes at 10 → makespan 10
        let r = c.finish();
        let u = r.utilizations();
        assert!((u[0] - 0.4).abs() < 1e-12);
        assert!((u[1] - 0.8).abs() < 1e-12);
    }
}

#[cfg(test)]
mod slo_tests {
    use super::*;

    #[test]
    fn slo_violations_are_counted() {
        let mut c = Collector::new(1, MetricsConfig {
            slo_slowdown: Some(3.0),
            ..MetricsConfig::default()
        });
        for (i, slowdown) in [1.0f64, 2.0, 5.0, 10.0].iter().enumerate() {
            c.record(JobRecord {
                id: i as u64,
                arrival: 0.0,
                size: 1.0,
                start: slowdown - 1.0,
                completion: *slowdown,
                host: 0,
            });
        }
        let r = c.finish();
        assert_eq!(r.slo_violations, Some((2, 3.0)));
        assert!((r.slo_violation_fraction().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slo_absent_without_threshold() {
        let c = Collector::new(1, MetricsConfig::default());
        let r = c.finish();
        assert!(r.slo_violations.is_none());
        assert!(r.slo_violation_fraction().is_none());
    }
}

#[cfg(test)]
mod percentile_tests {
    use super::*;

    #[test]
    fn percentiles_tracked_when_enabled() {
        let mut c = Collector::new(1, MetricsConfig {
            slowdown_percentiles: true,
            ..MetricsConfig::default()
        });
        for i in 0..1000 {
            let slowdown = 1.0 + (i % 100) as f64; // slowdowns 1..=100
            c.record(JobRecord {
                id: i,
                arrival: 0.0,
                size: 1.0,
                start: slowdown - 1.0,
                completion: slowdown,
                host: 0,
            });
        }
        let r = c.finish();
        let p = r.slowdown_percentiles.expect("enabled");
        let median = p.iter().find(|(q, _)| (*q - 0.5).abs() < 1e-9).unwrap().1;
        assert!((median - 51.0).abs() < 5.0, "median = {median}");
        let p99 = p.iter().find(|(q, _)| (*q - 0.99).abs() < 1e-9).unwrap().1;
        assert!(p99 > 95.0, "p99 = {p99}");
    }

    #[test]
    fn percentiles_absent_by_default() {
        let c = Collector::new(1, MetricsConfig::default());
        assert!(c.finish().slowdown_percentiles.is_none());
    }
}
