//! Per-job records and aggregated performance metrics.
//!
//! The paper's three performance goals (§1.2) are mean slowdown, variance
//! of slowdown, and fairness (expected slowdown conditioned on job size);
//! it also reports mean/variance of response time. [`SimResult`] carries
//! all of them, plus the per-host load shares that Figure 5's
//! "fraction of load on Host 1" series needs.

use dses_dist::{LogHistogram, Moments, OnlineMoments, QuantileSet};
use dses_workload::Job;

/// The outcome of one job's passage through the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// job id (arrival order)
    pub id: u64,
    /// arrival time at the dispatcher
    pub arrival: f64,
    /// service requirement
    pub size: f64,
    /// time service began
    pub start: f64,
    /// time service completed
    pub completion: f64,
    /// host that served the job
    pub host: usize,
}

impl JobRecord {
    /// Waiting time in queue: `start − arrival`.
    #[must_use]
    pub fn waiting(&self) -> f64 {
        self.start - self.arrival
    }

    /// Response time (sojourn): `completion − arrival`.
    #[must_use]
    pub fn response(&self) -> f64 {
        self.completion - self.arrival
    }

    /// Slowdown: response time / service requirement (≥ 1).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.response() / self.size
    }

    /// Queueing slowdown: waiting time / service requirement (≥ 0).
    ///
    /// The paper's Theorem 1 works with `E{S} = E{W/X}`; the two
    /// conventions differ by exactly 1 (`slowdown = 1 + W/X`), so either
    /// supports the same comparisons.
    #[must_use]
    pub fn queueing_slowdown(&self) -> f64 {
        self.waiting() / self.size
    }
}

/// Which aggregate families a run's consumer will actually read — the
/// collector's licence to skip maintaining the rest.
///
/// This is the metrics-layer sibling of `StateNeeds`: just as a policy
/// that never reads `queue_len` licenses the engine to skip per-host
/// counting, a caller that only reads mean slowdown licenses the
/// collector to skip per-host tallies, extrema, quantiles, and class
/// splits. [`Collector`] resolves the demand to a monomorphized record
/// path at reset, so an unrequested accumulator costs zero instructions
/// per job on the named tiers (DESIGN.md §13).
///
/// Demand is an *upper bound* composed with the existing config
/// switches: an optional accumulator (fairness histogram, percentiles,
/// class split, SLO counter, records) runs only when its config switch
/// is on **and** its demand bit is requested. The default demand is
/// [`Demand::FULL`], so every pre-demand config contract is unchanged.
///
/// Undemanded outputs are deterministic empties: optional fields are
/// `None`, per-host tallies are zero, and stream extrema are the
/// empty-stream sentinels (`min = +∞`, `max = −∞`). Demanded fields are
/// bitwise identical across demand values — each accumulator's
/// arithmetic never depends on which other accumulators run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand(u8);

impl Demand {
    /// Count/mean/variance of the four moment streams, plus makespan.
    /// Always on — a collector that measures nothing is useless, so
    /// [`Collector`] ORs this in at reset.
    pub const MEANS: Demand = Demand(1);
    /// Short/long slowdown class split (when `split_cutoff` is set).
    pub const CLASS_SPLIT: Demand = Demand(2);
    /// Distribution shape: stream extrema (min/max), the P² slowdown
    /// percentiles, the fairness profile, and the SLO violation count.
    pub const QUANTILES: Demand = Demand(4);
    /// Per-host job/work tallies (load and job fractions, utilizations).
    pub const PER_HOST: Demand = Demand(8);
    /// The per-job record buffer (when `collect_records` is set).
    pub const RECORDS: Demand = Demand(16);
    /// Everything — the default, and the tier every exhibit capture and
    /// bit-identity gate runs under.
    pub const FULL: Demand = Demand(31);

    /// Whether every bit of `other` is requested.
    #[must_use]
    pub fn includes(self, other: Demand) -> bool {
        self.0 & other.0 == other.0
    }

    /// The demand with [`Demand::MEANS`] forced on (what [`Collector`]
    /// actually runs under).
    #[must_use]
    pub fn normalized(self) -> Demand {
        Demand(self.0 | Demand::MEANS.0)
    }
}

impl std::ops::BitOr for Demand {
    type Output = Demand;
    fn bitor(self, rhs: Demand) -> Demand {
        Demand(self.0 | rhs.0)
    }
}

/// What to collect during a run.
///
/// Two modes matter in practice:
///
/// * **streaming** (the default, [`MetricsConfig::streaming`]) — every
///   aggregate is O(1) memory: Welford accumulators for the four moment
///   sets, the log-binned fairness histogram (fixed bin count), and the
///   P² percentile estimators. Nothing grows with the number of jobs, so
///   sweeps over millions of jobs run allocation-free in the metrics
///   layer. This is what `Experiment` sweeps and replications use.
/// * **full-record** ([`MetricsConfig::full_records`]) — additionally
///   buffers every [`JobRecord`] (48 B/job) for validation: engine
///   cross-checks, schedule invariants, batch-means analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsConfig {
    /// Skip this many leading jobs from aggregates (warm-up trim).
    pub warmup_jobs: usize,
    /// Keep per-job records (memory: 48 B/job).
    pub collect_records: bool,
    /// Number of log-spaced size bins for the fairness profile
    /// (0 disables it).
    pub fairness_bins: usize,
    /// Size range for the fairness profile (defaults to `(0.01, 1e7)`).
    pub fairness_range: (f64, f64),
    /// If set, also split slowdown statistics into "short" (size ≤ cutoff)
    /// and "long" (size > cutoff) classes — the SITA-U-fair criterion.
    pub split_cutoff: Option<f64>,
    /// Track streaming slowdown percentiles (p50/p90/p95/p99) via the
    /// P² estimator — O(1) memory, no record buffering.
    pub slowdown_percentiles: bool,
    /// If set, count jobs whose slowdown exceeds this service-level
    /// threshold — "predictable slowdown" (§1.2) as an SLO violation
    /// fraction.
    pub slo_slowdown: Option<f64>,
    /// Which aggregate families the consumer will read (see [`Demand`]).
    /// Defaults to [`Demand::FULL`]; narrower demands let the collector
    /// drop to a slimmer monomorphized record path.
    pub demand: Demand,
    /// Opt into the block-batched collector tier: records buffer into
    /// 64-wide SoA lanes and fold into the Welford streams once per
    /// block ([`OnlineMoments::merge_block`]). Stream means/variances
    /// are then **ulp-bounded** rather than bit-identical to the
    /// per-record tiers (count, extrema, makespan, and per-host tallies
    /// stay exact), so this tier carries its own relative-error gate in
    /// `perf_report`, is never the default, and is never used by
    /// exhibits. Engages only when no per-record optional accumulator
    /// is active (records, fairness profile, percentiles, class split,
    /// SLO counter — each off in config or undemanded); otherwise the
    /// per-record path runs and results stay bit-identical.
    pub batched: bool,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            warmup_jobs: 0,
            collect_records: false,
            fairness_bins: 0,
            fairness_range: (0.01, 1.0e7),
            split_cutoff: None,
            slowdown_percentiles: false,
            slo_slowdown: None,
            demand: Demand::FULL,
            batched: false,
        }
    }
}

impl MetricsConfig {
    /// The zero-buffer streaming mode: constant memory regardless of how
    /// many jobs a run processes. Identical to [`MetricsConfig::default`];
    /// the name exists so call sites can state the intent.
    #[must_use]
    pub fn streaming() -> Self {
        Self::default()
    }

    /// Full-record mode for validation: streaming aggregates plus a
    /// buffered [`JobRecord`] per job.
    #[must_use]
    pub fn full_records() -> Self {
        Self {
            collect_records: true,
            ..Self::default()
        }
    }

    /// Whether any per-job buffering happens (false ⇒ O(1) memory).
    #[must_use]
    pub fn buffers_records(&self) -> bool {
        self.collect_records
    }
}

/// Per-host accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostStats {
    /// jobs served by this host
    pub jobs: u64,
    /// total work (sum of service requirements) served by this host
    pub work: f64,
}

/// Aggregated result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// slowdown (response / size) moments
    pub slowdown: Moments,
    /// queueing slowdown (waiting / size) moments
    pub queueing_slowdown: Moments,
    /// response-time moments
    pub response: Moments,
    /// waiting-time moments
    pub waiting: Moments,
    /// per-host job/work tallies (over measured jobs)
    pub per_host: Vec<HostStats>,
    /// completion time of the last job
    pub makespan: f64,
    /// number of jobs contributing to the aggregates
    pub measured: u64,
    /// number of warm-up jobs excluded
    pub skipped: u64,
    /// slowdown-vs-size fairness profile, if requested
    pub fairness: Option<LogHistogram>,
    /// slowdown moments of jobs with `size ≤ cutoff`, if a split was set
    pub short_slowdown: Option<Moments>,
    /// slowdown moments of jobs with `size > cutoff`, if a split was set
    pub long_slowdown: Option<Moments>,
    /// streaming slowdown percentiles `(q, estimate)`, if requested
    pub slowdown_percentiles: Option<Vec<(f64, f64)>>,
    /// `(violations, threshold)`: jobs whose slowdown exceeded the SLO,
    /// if a threshold was set
    pub slo_violations: Option<(u64, f64)>,
    /// per-job records, if requested
    pub records: Option<Vec<JobRecord>>,
}

impl SimResult {
    /// A result describing no jobs at all — the starting value for
    /// [`Collector::finish_into`], which overwrites every field while
    /// reusing whatever buffers a previous run left behind.
    #[must_use]
    pub fn empty() -> Self {
        let nothing = OnlineMoments::new().finish();
        Self {
            slowdown: nothing,
            queueing_slowdown: nothing,
            response: nothing,
            waiting: nothing,
            per_host: Vec::new(),
            makespan: 0.0,
            measured: 0,
            skipped: 0,
            fairness: None,
            short_slowdown: None,
            long_slowdown: None,
            slowdown_percentiles: None,
            slo_violations: None,
            records: None,
        }
    }

    /// Fraction of the measured *work* served by host `i` — Figure 5's
    /// y-axis ("fraction of the total load which goes to Host 1").
    #[must_use]
    pub fn load_fraction(&self, host: usize) -> f64 {
        let total: f64 = self.per_host.iter().map(|h| h.work).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.per_host[host].work / total
        }
    }

    /// Fraction of measured *jobs* dispatched to host `i` (the paper's
    /// §3.3 "98.7 % of jobs go to Host 1 under SITA-E").
    #[must_use]
    pub fn job_fraction(&self, host: usize) -> f64 {
        let total: u64 = self.per_host.iter().map(|h| h.jobs).sum();
        if total == 0 {
            0.0
        } else {
            self.per_host[host].jobs as f64 / total as f64
        }
    }

    /// Fraction of measured jobs violating the configured slowdown SLO
    /// (`None` when no threshold was set).
    #[must_use]
    pub fn slo_violation_fraction(&self) -> Option<f64> {
        self.slo_violations.map(|(v, _)| {
            if self.measured == 0 {
                0.0
            } else {
                v as f64 / self.measured as f64
            }
        })
    }

    /// Host utilisations: work served / makespan.
    #[must_use]
    pub fn utilizations(&self) -> Vec<f64> {
        self.per_host
            .iter()
            .map(|h| if self.makespan > 0.0 { h.work / self.makespan } else { 0.0 })
            .collect()
    }
}

/// Number of records the block-batched tier buffers between flushes.
const BLOCK: usize = 64;

/// SoA lane buffer for the block-batched collector tier (DESIGN.md §13).
///
/// Buffers up to [`BLOCK`] post-warmup records as structure-of-arrays
/// lanes. A flush reduces each derived stream to `(n, mean, m2, min,
/// max)` in short vectorizable passes (8-way partial sums, then
/// centered squares) and folds the summary into the owning collector's
/// Welford streams via [`OnlineMoments::merge_block`] — one reduction
/// per block instead of four dependent accumulator updates per job.
#[derive(Debug, Clone)]
struct BlockCollector {
    fill: usize,
    /// response time `completion − arrival`
    resp: [f64; BLOCK],
    /// waiting time `start − arrival`
    wait: [f64; BLOCK],
    size: [f64; BLOCK],
    /// exact reciprocal `1/size` (the trace's precomputed value)
    inv: [f64; BLOCK],
    host: [u32; BLOCK],
}

impl BlockCollector {
    fn empty() -> Self {
        Self {
            fill: 0,
            resp: [0.0; BLOCK],
            wait: [0.0; BLOCK],
            size: [0.0; BLOCK],
            inv: [0.0; BLOCK],
            host: [0; BLOCK],
        }
    }
}

/// Reduce one value lane to `(mean, m2, min, max)`.
///
/// Partial 8-way accumulators keep every pass free of loop-carried
/// scalar dependences, so the compiler can vectorize; the tree
/// reduction at the end fixes the summation order, making the result
/// deterministic (and ulp-close to, but not bitwise, the sequential
/// Welford recurrence — see the error argument in DESIGN.md §13).
// dses-lint: mirrors(welford-block, ulp)
fn lane_stats(x: &[f64]) -> (f64, f64, f64, f64) {
    debug_assert!(!x.is_empty() && x.len() <= BLOCK);
    let mut sums = [0.0f64; 8];
    let mut mins = [f64::INFINITY; 8];
    let mut maxs = [f64::NEG_INFINITY; 8];
    for c in x.chunks(8) {
        for (k, &v) in c.iter().enumerate() {
            sums[k] += v;
            if v < mins[k] {
                mins[k] = v;
            }
            if v > maxs[k] {
                maxs[k] = v;
            }
        }
    }
    let tree = |p: &[f64; 8], f: fn(f64, f64) -> f64| {
        f(f(f(p[0], p[1]), f(p[2], p[3])), f(f(p[4], p[5]), f(p[6], p[7])))
    };
    let sum = tree(&sums, |a, b| a + b);
    // a full block divides by 64 — a power of two, so the constant
    // multiply is the exact same value and the steady-state flush stays
    // divide-free; only tail blocks pay one divide
    // dses-lint: allow(divide-budget) -- `1.0 / BLOCK` is a compile-time constant fold; the `/ len` arm runs only for the final partial block, once per run
    let mean = if x.len() == BLOCK { sum * (1.0 / BLOCK as f64) } else { sum / x.len() as f64 };
    let mut m2s = [0.0f64; 8];
    for c in x.chunks(8) {
        for (k, &v) in c.iter().enumerate() {
            let d = v - mean;
            m2s[k] += d * d;
        }
    }
    (
        mean,
        tree(&m2s, |a, b| a + b),
        tree(&mins, f64::min),
        tree(&maxs, f64::max),
    )
}

/// The monomorphized record path a collector resolved its
/// [`Demand`] + config to at reset (the §13 demand lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordPath {
    /// Every accumulator family the config enables — the default tier,
    /// bit-identical to the pre-demand collector, and the fallback for
    /// any demand combination without a dedicated slim path.
    Full,
    /// `MEANS | PER_HOST`, no optional accumulators: moment streams
    /// without extrema, plus host tallies. What `sweep_grid` demands.
    MeansHost,
    /// `MEANS` only: the four moment streams, nothing else.
    Means,
    /// Block-batched SoA accumulation (`MetricsConfig::batched`).
    Batched,
}

/// Resolve the record path from the demand lattice and the config's
/// optional accumulators. An optional accumulator is *active* only when
/// its config switch is on and its demand bit is requested.
fn resolve_path(cfg: &MetricsConfig) -> RecordPath {
    let d = cfg.demand.normalized();
    let tail_active = (cfg.collect_records && d.includes(Demand::RECORDS))
        || (cfg.fairness_bins > 0 && d.includes(Demand::QUANTILES))
        || (cfg.split_cutoff.is_some() && d.includes(Demand::CLASS_SPLIT))
        || (cfg.slowdown_percentiles && d.includes(Demand::QUANTILES))
        || (cfg.slo_slowdown.is_some() && d.includes(Demand::QUANTILES));
    if tail_active {
        // per-record accumulators force the per-record path
        RecordPath::Full
    } else if cfg.batched {
        RecordPath::Batched
    } else if d.includes(Demand::QUANTILES) {
        // extrema demanded: full streams (tail checks are four
        // predictable None-tests)
        RecordPath::Full
    } else if d.includes(Demand::PER_HOST) {
        RecordPath::MeansHost
    } else {
        RecordPath::Means
    }
}

/// Streaming collector that the engines feed records into.
#[derive(Debug)]
pub struct Collector {
    cfg: MetricsConfig,
    slowdown: OnlineMoments,
    queueing_slowdown: OnlineMoments,
    response: OnlineMoments,
    waiting: OnlineMoments,
    per_host: Vec<HostStats>,
    makespan: f64,
    seen: u64,
    fairness: Option<LogHistogram>,
    short_slowdown: OnlineMoments,
    long_slowdown: OnlineMoments,
    percentiles: Option<QuantileSet>,
    slo_violations: u64,
    records: Option<Vec<JobRecord>>,
    /// `inv_n[k] = 1.0 / (k + 1)` for the first `expected_jobs` counts —
    /// the same single IEEE divide [`Collector::record_with_inv`] would
    /// issue per job, precomputed once at reset so the steady-state
    /// record path performs **zero** divides. Grow-once: reset extends
    /// but never shrinks, and counts past the table fall back to the
    /// live divide (bitwise the same value).
    inv_n: Vec<f64>,
    /// The monomorphized record path resolved from `cfg` at reset.
    path: RecordPath,
    /// `Demand::PER_HOST` requested (the batched flush consults it; the
    /// per-record paths bake it into their instantiation).
    host_on: bool,
    /// `cfg.split_cutoff` masked by `Demand::CLASS_SPLIT`.
    eff_split: Option<f64>,
    /// `cfg.slo_slowdown` masked by `Demand::QUANTILES`.
    eff_slo: Option<f64>,
    /// SoA lanes for the batched tier; grow-once like the buffers above.
    block: Option<Box<BlockCollector>>,
}

impl Collector {
    /// Create a collector for `hosts` hosts.
    #[must_use]
    pub fn new(hosts: usize, cfg: MetricsConfig) -> Self {
        Self::with_job_hint(hosts, cfg, 0)
    }

    /// Create a collector for `hosts` hosts, pre-sizing the record buffer
    /// for `expected_jobs` completions (engines pass the trace length so
    /// full-record runs never pay repeated reallocation; streaming mode
    /// ignores the hint).
    #[must_use]
    pub fn with_job_hint(hosts: usize, cfg: MetricsConfig, expected_jobs: usize) -> Self {
        let mut c = Self {
            cfg,
            slowdown: OnlineMoments::new(),
            queueing_slowdown: OnlineMoments::new(),
            response: OnlineMoments::new(),
            waiting: OnlineMoments::new(),
            per_host: Vec::new(),
            makespan: 0.0,
            seen: 0,
            fairness: None,
            short_slowdown: OnlineMoments::new(),
            long_slowdown: OnlineMoments::new(),
            percentiles: None,
            slo_violations: 0,
            records: None,
            inv_n: Vec::new(),
            path: RecordPath::Full,
            host_on: true,
            eff_split: None,
            eff_slo: None,
            block: None,
        };
        c.reset(hosts, cfg, expected_jobs);
        c
    }

    /// Reconfigure for a new run, clearing without freeing.
    ///
    /// After `reset(hosts, cfg, expected_jobs)` the collector is
    /// observationally identical to `Collector::with_job_hint(hosts, cfg,
    /// expected_jobs)` — the engines' reusable-workspace entry points rely
    /// on that to stay bit-for-bit equal to fresh-allocation runs — but
    /// every growable buffer (per-host stats, the fairness histogram when
    /// its layout is unchanged, the record vector, the block lanes) keeps
    /// its allocation.
    pub fn reset(&mut self, hosts: usize, cfg: MetricsConfig, expected_jobs: usize) {
        self.cfg = cfg;
        let d = cfg.demand.normalized();
        self.slowdown = OnlineMoments::new();
        self.queueing_slowdown = OnlineMoments::new();
        self.response = OnlineMoments::new();
        self.waiting = OnlineMoments::new();
        self.per_host.clear();
        self.per_host.resize(hosts, HostStats::default());
        self.makespan = 0.0;
        self.seen = 0;
        if cfg.fairness_bins > 0 && d.includes(Demand::QUANTILES) {
            let (lo, hi) = cfg.fairness_range;
            match &mut self.fairness {
                Some(f) if f.has_layout(lo, hi, cfg.fairness_bins) => f.reset(),
                other => *other = Some(LogHistogram::new(lo, hi, cfg.fairness_bins)),
            }
        } else {
            self.fairness = None;
        }
        self.short_slowdown = OnlineMoments::new();
        self.long_slowdown = OnlineMoments::new();
        if cfg.slowdown_percentiles && d.includes(Demand::QUANTILES) {
            match &mut self.percentiles {
                Some(p) => p.reset(),
                other => *other = Some(QuantileSet::default()),
            }
        } else {
            self.percentiles = None;
        }
        self.slo_violations = 0;
        if cfg.collect_records && d.includes(Demand::RECORDS) {
            match &mut self.records {
                Some(v) => {
                    v.clear();
                    v.reserve(expected_jobs);
                }
                // dses-lint: allow(no-alloc-transitive) -- grow-once: records are built when first enabled, then cleared and reused
                other => *other = Some(Vec::with_capacity(expected_jobs)),
            }
        } else {
            self.records = None;
        }
        self.path = resolve_path(&cfg);
        self.host_on = d.includes(Demand::PER_HOST);
        self.eff_split = cfg.split_cutoff.filter(|_| d.includes(Demand::CLASS_SPLIT));
        self.eff_slo = cfg.slo_slowdown.filter(|_| d.includes(Demand::QUANTILES));
        if self.path == RecordPath::Batched {
            match &mut self.block {
                Some(b) => b.fill = 0,
                other => *other = Some(Box::new(BlockCollector::empty())),
            }
        }
        if self.inv_n.len() < expected_jobs {
            self.inv_n.extend((self.inv_n.len()..expected_jobs).map(|k| 1.0 / (k + 1) as f64));
        }
    }

    /// Record one completed job.
    ///
    /// The four always-on moment streams advance in lockstep (same count
    /// after every call), so one `1/n` reciprocal serves all four pushes,
    /// and one `1/size` serves both slowdown ratios — two divides per job
    /// where the naive form issues fourteen. Divide throughput, not
    /// flops, bounds the specialized kernels (see DESIGN.md §11).
    // dses-lint: divides(1)
    // dses-lint: mirrors(record-entry)
    #[inline]
    pub fn record(&mut self, rec: JobRecord) {
        self.record_with_inv(rec, 1.0 / rec.size);
    }

    /// [`Collector::record`] with the caller supplying `1.0 / rec.size`.
    ///
    /// The fast-engine kernels stream `Trace::inv_sizes`, where the
    /// reciprocal was computed once at trace construction — the same
    /// single IEEE divide this method would otherwise issue per job, so
    /// results are bitwise unchanged (a `debug_assert` pins the bit
    /// pattern). This takes the metrics path to one divide per job.
    // dses-lint: divides(0)
    // dses-lint: deny(alloc)
    // dses-lint: mirrors(record-entry)
    // dses-lint: hoist(inv_size)
    #[inline]
    pub fn record_with_inv(&mut self, rec: JobRecord, inv_size: f64) {
        match self.path {
            RecordPath::Full => self.record_core::<true, true, true>(rec, inv_size),
            RecordPath::MeansHost => self.record_core::<false, true, false>(rec, inv_size),
            RecordPath::Means => self.record_core::<false, false, false>(rec, inv_size),
            RecordPath::Batched => self.record_batched(rec, inv_size),
        }
    }

    /// The per-record accumulation core, monomorphized over the demand
    /// tier: `EXTREMA` tracks stream min/max (the `QUANTILES` bit),
    /// `HOST` updates per-host tallies (`PER_HOST`), `TAIL` runs the
    /// optional accumulators (fairness histogram, class split,
    /// percentiles, SLO counter, record buffer). Every demanded field
    /// computes in exactly the pre-tier order, so demanded outputs stay
    /// bitwise identical across tiers.
    // dses-lint: divides(0)
    // dses-lint: mirrors(record-tiers)
    // dses-lint: inline(push_with_inv, push_mv_with_inv)
    #[inline(always)]
    fn record_core<const EXTREMA: bool, const HOST: bool, const TAIL: bool>(
        &mut self,
        rec: JobRecord,
        inv_size: f64,
    ) {
        debug_assert!(rec.start >= rec.arrival, "service before arrival");
        debug_assert!(rec.completion >= rec.start, "negative service");
        debug_assert_eq!(
            inv_size.to_bits(),
            (1.0 / rec.size).to_bits(),
            "inv_size must be the bitwise reciprocal of rec.size"
        );
        self.makespan = self.makespan.max(rec.completion);
        self.seen += 1;
        if self.seen <= self.cfg.warmup_jobs as u64 {
            return;
        }
        let count = self.slowdown.count() as usize;
        // Table hit in every engine run (reset sizes it to the trace);
        // the fallback divide computes the identical bit pattern for
        // hand-built collectors that outgrow their hint.
        let inv_n = match self.inv_n.get(count) {
            Some(&v) => v,
            None => 1.0 / (count + 1) as f64,
        };
        let response = rec.completion - rec.arrival;
        let waiting = rec.start - rec.arrival;
        let s = response * inv_size;
        if EXTREMA {
            self.slowdown.push_with_inv(s, inv_n);
            self.queueing_slowdown.push_with_inv(waiting * inv_size, inv_n);
            self.response.push_with_inv(response, inv_n);
            self.waiting.push_with_inv(waiting, inv_n);
        } else {
            self.slowdown.push_mv_with_inv(s, inv_n);
            self.queueing_slowdown.push_mv_with_inv(waiting * inv_size, inv_n);
            self.response.push_mv_with_inv(response, inv_n);
            self.waiting.push_mv_with_inv(waiting, inv_n);
        }
        if HOST {
            let h = &mut self.per_host[rec.host];
            h.jobs += 1;
            h.work += rec.size;
        }
        if TAIL {
            if let Some(f) = &mut self.fairness {
                // dses-lint: allow(divide-budget) -- name-resolution collision: `f` is the fairness LogHistogram, not the Collector; its binning divide is waived at its own site
                f.record(rec.size, s);
            }
            if let Some(cutoff) = self.eff_split {
                // The class streams advance one at a time (a job is short
                // or long, never both), so the lockstep `inv_n` above is
                // the wrong count — but the same table serves: index it
                // by the chosen stream's own count. Same bits as the
                // divide `OnlineMoments::push` would issue.
                let m = if rec.size <= cutoff {
                    &mut self.short_slowdown
                } else {
                    &mut self.long_slowdown
                };
                let k = m.count() as usize;
                let inv = match self.inv_n.get(k) {
                    Some(&v) => v,
                    None => 1.0 / (k + 1) as f64,
                };
                m.push_with_inv(s, inv);
            }
            if let Some(p) = &mut self.percentiles {
                p.push(s);
            }
            if let Some(threshold) = self.eff_slo {
                if s > threshold {
                    self.slo_violations += 1;
                }
            }
            if let Some(v) = &mut self.records {
                v.push(rec);
            }
        }
    }

    /// The block-batched record path: stage the record into the SoA
    /// lanes and flush once per [`BLOCK`] completions.
    #[inline]
    fn record_batched(&mut self, rec: JobRecord, inv_size: f64) {
        debug_assert!(rec.start >= rec.arrival, "service before arrival");
        debug_assert!(rec.completion >= rec.start, "negative service");
        debug_assert_eq!(
            inv_size.to_bits(),
            // dses-lint: allow(divide-budget) -- debug_assert reciprocal pin: compiled out of release builds, never on the measured path
            (1.0 / rec.size).to_bits(),
            "inv_size must be the bitwise reciprocal of rec.size"
        );
        self.makespan = self.makespan.max(rec.completion);
        self.seen += 1;
        if self.seen <= self.cfg.warmup_jobs as u64 {
            return;
        }
        let Some(b) = self.block.as_mut() else {
            unreachable!("RecordPath::Batched without lanes; reset() allocates them")
        };
        let f = b.fill;
        b.resp[f] = rec.completion - rec.arrival;
        b.wait[f] = rec.start - rec.arrival;
        b.size[f] = rec.size;
        b.inv[f] = inv_size;
        b.host[f] = rec.host as u32;
        b.fill = f + 1;
        if b.fill == BLOCK {
            self.flush_block();
        }
    }

    /// Flush the staged SoA lanes into the Welford streams (batched tier
    /// only; a no-op on the per-record paths and on an empty buffer).
    ///
    /// Counts, extrema, per-host tallies, and makespan are exact; the
    /// stream mean/variance go through [`lane_stats`] +
    /// [`OnlineMoments::merge_block`], which reorders the summation and
    /// is therefore ulp-bounded rather than bitwise (DESIGN.md §13).
    fn flush_block(&mut self) {
        let Some(mut b) = self.block.take() else { return };
        let fill = b.fill;
        if fill > 0 {
            let mut s = [0.0f64; BLOCK];
            let mut q = [0.0f64; BLOCK];
            for (sj, (&r, &iv)) in s.iter_mut().zip(b.resp.iter().zip(&b.inv)).take(fill) {
                *sj = r * iv;
            }
            for (qj, (&w, &iv)) in q.iter_mut().zip(b.wait.iter().zip(&b.inv)).take(fill) {
                *qj = w * iv;
            }
            let (m, m2, mn, mx) = lane_stats(&s[..fill]);
            self.slowdown.merge_block(fill as u64, m, m2, mn, mx);
            let (m, m2, mn, mx) = lane_stats(&q[..fill]);
            self.queueing_slowdown.merge_block(fill as u64, m, m2, mn, mx);
            let (m, m2, mn, mx) = lane_stats(&b.resp[..fill]);
            self.response.merge_block(fill as u64, m, m2, mn, mx);
            let (m, m2, mn, mx) = lane_stats(&b.wait[..fill]);
            self.waiting.merge_block(fill as u64, m, m2, mn, mx);
            if self.host_on {
                for j in 0..fill {
                    let h = &mut self.per_host[b.host[j] as usize];
                    h.jobs += 1;
                    h.work += b.size[j];
                }
            }
            b.fill = 0;
        }
        self.block = Some(b);
    }

    /// Record a contiguous run of completed jobs delivered as SoA lanes —
    /// the segmented replay phase and the fused kernels hand the
    /// collector exactly the slices they already hold, so the batched
    /// tier stages by `copy_from_slice` instead of one struct at a time.
    ///
    /// Equivalent to calling [`Collector::record_with_inv`] once per
    /// index in order (bitwise so on the per-record paths). All slices
    /// must have equal length; `jobs` supplies the ids.
    // dses-lint: divides(0)
    // dses-lint: deny(alloc)
    #[allow(clippy::too_many_arguments)]
    pub fn record_block_with_inv(
        &mut self,
        jobs: &[Job],
        arrivals: &[f64],
        sizes: &[f64],
        inv_sizes: &[f64],
        starts: &[f64],
        completions: &[f64],
        hosts: &[u32],
    ) {
        let n = jobs.len();
        assert_eq!(arrivals.len(), n, "lane length mismatch");
        assert_eq!(sizes.len(), n, "lane length mismatch");
        assert_eq!(inv_sizes.len(), n, "lane length mismatch");
        assert_eq!(starts.len(), n, "lane length mismatch");
        assert_eq!(completions.len(), n, "lane length mismatch");
        assert_eq!(hosts.len(), n, "lane length mismatch");
        if self.path == RecordPath::Batched {
            self.record_block_batched(arrivals, sizes, inv_sizes, starts, completions, hosts);
            return;
        }
        for j in 0..n {
            self.record_with_inv(
                JobRecord {
                    id: jobs[j].id,
                    arrival: arrivals[j],
                    size: sizes[j],
                    start: starts[j],
                    completion: completions[j],
                    host: hosts[j] as usize,
                },
                inv_sizes[j],
            );
        }
    }

    /// Bulk lane staging for the batched tier: per-record through the
    /// warmup boundary, then `copy_from_slice` chunks into the block
    /// lanes with a makespan fold per chunk. Ids are not needed — the
    /// batched tier never buffers records.
    fn record_block_batched(
        &mut self,
        arrivals: &[f64],
        sizes: &[f64],
        inv_sizes: &[f64],
        starts: &[f64],
        completions: &[f64],
        hosts: &[u32],
    ) {
        let n = arrivals.len();
        let warmup = self.cfg.warmup_jobs as u64;
        let mut j = 0;
        while j < n && self.seen < warmup {
            self.record_batched(
                JobRecord {
                    id: 0,
                    arrival: arrivals[j],
                    size: sizes[j],
                    start: starts[j],
                    completion: completions[j],
                    host: hosts[j] as usize,
                },
                inv_sizes[j],
            );
            j += 1;
        }
        while j < n {
            let Some(b) = self.block.as_mut() else {
                unreachable!("RecordPath::Batched without lanes; reset() allocates them")
            };
            let take = (BLOCK - b.fill).min(n - j);
            let f = b.fill;
            for k in 0..take {
                debug_assert!(starts[j + k] >= arrivals[j + k], "service before arrival");
                debug_assert!(completions[j + k] >= starts[j + k], "negative service");
                debug_assert_eq!(
                    inv_sizes[j + k].to_bits(),
                    // dses-lint: allow(divide-budget) -- debug_assert reciprocal pin: compiled out of release builds, never on the measured path
                    (1.0 / sizes[j + k]).to_bits(),
                    "inv_size must be the bitwise reciprocal of size"
                );
                b.resp[f + k] = completions[j + k] - arrivals[j + k];
                b.wait[f + k] = starts[j + k] - arrivals[j + k];
            }
            b.size[f..f + take].copy_from_slice(&sizes[j..j + take]);
            b.inv[f..f + take].copy_from_slice(&inv_sizes[j..j + take]);
            b.host[f..f + take].copy_from_slice(&hosts[j..j + take]);
            b.fill = f + take;
            let full = b.fill == BLOCK;
            let mut mk = self.makespan;
            for &c in &completions[j..j + take] {
                if c > mk {
                    mk = c;
                }
            }
            self.makespan = mk;
            self.seen += take as u64;
            j += take;
            if full {
                self.flush_block();
            }
        }
    }

    /// Finish one moment stream, masking extrema when `QUANTILES` is not
    /// demanded (the slim tiers never track them; the full path tracked
    /// them but the demand contract says undemanded fields are
    /// deterministic empties, so both report the `OnlineMoments::new`
    /// sentinels).
    fn demanded_moments(&self, om: &OnlineMoments) -> Moments {
        let m = om.finish();
        if self.cfg.demand.normalized().includes(Demand::QUANTILES) {
            m
        } else {
            Moments {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                ..m
            }
        }
    }

    /// Finish the run.
    ///
    /// Consumes the collector; on the batched tier any partially filled
    /// block is flushed first. Undemanded fields come out as
    /// deterministic empties (`None`, zeroed tallies, extrema
    /// sentinels) regardless of what the config switches asked for.
    #[must_use]
    pub fn finish(mut self) -> SimResult {
        self.flush_block();
        let d = self.cfg.demand.normalized();
        let measured = self.slowdown.count();
        let mut per_host = std::mem::take(&mut self.per_host);
        if !d.includes(Demand::PER_HOST) {
            per_host.iter_mut().for_each(|h| *h = HostStats::default());
        }
        SimResult {
            slowdown: self.demanded_moments(&self.slowdown),
            queueing_slowdown: self.demanded_moments(&self.queueing_slowdown),
            response: self.demanded_moments(&self.response),
            waiting: self.demanded_moments(&self.waiting),
            per_host,
            makespan: self.makespan,
            measured,
            skipped: self.seen - measured,
            fairness: self.fairness,
            short_slowdown: self.eff_split.map(|_| self.short_slowdown.finish()),
            long_slowdown: self.eff_split.map(|_| self.long_slowdown.finish()),
            slowdown_percentiles: self.percentiles.map(|p| p.estimates()),
            slo_violations: self.eff_slo.map(|t| (self.slo_violations, t)),
            records: self.records,
        }
    }

    /// Finish the run into an existing result, reusing its buffers.
    ///
    /// Writes exactly what [`Collector::finish`] would return, but keeps
    /// the collector alive (it is workspace state). The per-host tallies
    /// and record buffer are *moved* into the result by `mem::swap` —
    /// zero copies, zero allocations — so the collector's own copies are
    /// stale afterwards; every engine entry point calls `reset` before
    /// the next run, which reinstates them. Remaining growable fields
    /// route through `clone_from`, so a result that already went through
    /// a run of the same shape absorbs this one with zero heap
    /// allocation — the steady state of a reused-workspace sweep.
    // dses-lint: deny(alloc)
    pub fn finish_into(&mut self, out: &mut SimResult) {
        self.flush_block();
        let d = self.cfg.demand.normalized();
        let measured = self.slowdown.count();
        out.slowdown = self.demanded_moments(&self.slowdown);
        out.queueing_slowdown = self.demanded_moments(&self.queueing_slowdown);
        out.response = self.demanded_moments(&self.response);
        out.waiting = self.demanded_moments(&self.waiting);
        if out.per_host.capacity() >= self.per_host.len() {
            // steady state: the result's previous buffer (same shape)
            // comes back to the collector — a pointer swap, not a copy
            std::mem::swap(&mut out.per_host, &mut self.per_host);
        } else {
            // first run into a fresh result: grow the result's buffer
            // once and keep the collector's for the swap next time
            out.per_host.clear();
            out.per_host.extend_from_slice(&self.per_host);
        }
        if !d.includes(Demand::PER_HOST) {
            out.per_host.iter_mut().for_each(|h| *h = HostStats::default());
        }
        out.makespan = self.makespan;
        out.measured = measured;
        out.skipped = self.seen - measured;
        match (&self.fairness, &mut out.fairness) {
            (Some(src), Some(dst)) => dst.clone_from(src),
            (Some(src), dst) => *dst = Some(src.clone()),
            (None, dst) => *dst = None,
        }
        out.short_slowdown = self.eff_split.map(|_| self.short_slowdown.finish());
        out.long_slowdown = self.eff_split.map(|_| self.long_slowdown.finish());
        match (&self.percentiles, &mut out.slowdown_percentiles) {
            (Some(src), Some(dst)) => src.estimates_into(dst),
            (Some(src), dst) => *dst = Some(src.estimates()),
            (None, dst) => *dst = None,
        }
        out.slo_violations = self.eff_slo.map(|t| (self.slo_violations, t));
        match (&mut self.records, &mut out.records) {
            (Some(src), Some(dst)) => {
                // the result's previous buffer comes back to the
                // collector, cleared, so the next reset reuses its
                // capacity
                std::mem::swap(src, dst);
                src.clear();
            }
            // first run into a fresh result: clone so the collector
            // keeps its buffer (and its capacity) for the swap next time
            (Some(src), dst) => *dst = Some(src.clone()),
            (None, dst) => *dst = None,
        }
    }
}

/// Batch-means confidence half-width for the mean of `values` at roughly
/// 95 % confidence, using `batches` equal batches.
///
/// Returns `(mean, half_width)`. The batch-means method absorbs the
/// autocorrelation of within-run job metrics that a naive standard error
/// would ignore.
#[must_use]
pub fn batch_means_ci(values: &[f64], batches: usize) -> (f64, f64) {
    assert!(batches >= 2, "need at least 2 batches");
    let n = values.len();
    if n < batches {
        let mean = values.iter().sum::<f64>() / n.max(1) as f64;
        return (mean, f64::INFINITY);
    }
    let per = n / batches;
    let means: Vec<f64> = (0..batches)
        .map(|b| values[b * per..(b + 1) * per].iter().sum::<f64>() / per as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / batches as f64;
    let var = means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>()
        / (batches - 1) as f64;
    // t-quantile ~ 2.0 is adequate for ≥ 10 batches at 95%
    let half = 2.0 * (var / batches as f64).sqrt();
    (grand, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: f64, size: f64, start: f64, host: usize) -> JobRecord {
        JobRecord {
            id,
            arrival,
            size,
            start,
            completion: start + size,
            host,
        }
    }

    #[test]
    fn job_record_derived_metrics() {
        let r = rec(0, 10.0, 4.0, 12.0, 0);
        assert_eq!(r.waiting(), 2.0);
        assert_eq!(r.response(), 6.0);
        assert_eq!(r.slowdown(), 1.5);
        assert_eq!(r.queueing_slowdown(), 0.5);
    }

    #[test]
    fn collector_aggregates() {
        let mut c = Collector::new(2, MetricsConfig::default());
        c.record(rec(0, 0.0, 2.0, 0.0, 0)); // slowdown 1
        c.record(rec(1, 0.0, 1.0, 1.0, 1)); // slowdown 2
        let r = c.finish();
        assert_eq!(r.measured, 2);
        assert!((r.slowdown.mean - 1.5).abs() < 1e-12);
        assert_eq!(r.per_host[0].jobs, 1);
        assert_eq!(r.per_host[1].work, 1.0);
        assert_eq!(r.makespan, 2.0);
    }

    #[test]
    fn warmup_jobs_are_skipped_but_count_into_makespan() {
        let mut c = Collector::new(1, MetricsConfig {
            warmup_jobs: 1,
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 100.0, 0));
        c.record(rec(1, 0.0, 1.0, 0.0, 0));
        let r = c.finish();
        assert_eq!(r.measured, 1);
        assert_eq!(r.skipped, 1);
        assert!((r.slowdown.mean - 1.0).abs() < 1e-12); // only second job
        assert_eq!(r.makespan, 101.0);
    }

    #[test]
    fn load_and_job_fractions() {
        let mut c = Collector::new(2, MetricsConfig::default());
        c.record(rec(0, 0.0, 3.0, 0.0, 0));
        c.record(rec(1, 0.0, 1.0, 0.0, 1));
        let r = c.finish();
        assert!((r.load_fraction(0) - 0.75).abs() < 1e-12);
        assert!((r.job_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_cutoff_classifies_short_and_long() {
        let mut c = Collector::new(1, MetricsConfig {
            split_cutoff: Some(2.0),
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 1.0, 0)); // short, slowdown 2
        c.record(rec(1, 0.0, 4.0, 0.0, 0)); // long, slowdown 1
        let r = c.finish();
        assert!((r.short_slowdown.unwrap().mean - 2.0).abs() < 1e-12);
        assert!((r.long_slowdown.unwrap().mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_histogram_populates() {
        let mut c = Collector::new(1, MetricsConfig {
            fairness_bins: 10,
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 0.0, 0));
        c.record(rec(1, 0.0, 1.0e6, 0.0, 0));
        let r = c.finish();
        let bins: Vec<_> = r.fairness.unwrap().populated_bins().map(|(c, _)| c).collect();
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn records_collected_when_asked() {
        let mut c = Collector::new(1, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        c.record(rec(0, 0.0, 1.0, 0.0, 0));
        let r = c.finish();
        assert_eq!(r.records.unwrap().len(), 1);
    }

    #[test]
    fn record_with_inv_matches_record_bitwise() {
        let jobs = [(0.0, 3.0, 1.5), (1.0, 7.0, 2.0), (2.5, 0.5, 4.0)];
        let mut plain = Collector::new(1, MetricsConfig::default());
        let mut with_inv = Collector::new(1, MetricsConfig::default());
        for (i, &(arrival, size, start)) in jobs.iter().enumerate() {
            let r = rec(i as u64, arrival, size, start, 0);
            plain.record(r);
            with_inv.record_with_inv(r, 1.0 / size);
        }
        let a = plain.finish();
        let b = with_inv.finish();
        assert_eq!(a.slowdown.mean.to_bits(), b.slowdown.mean.to_bits());
        assert_eq!(a.slowdown.variance.to_bits(), b.slowdown.variance.to_bits());
        assert_eq!(
            a.queueing_slowdown.mean.to_bits(),
            b.queueing_slowdown.mean.to_bits()
        );
    }

    #[test]
    fn batch_means_on_iid_data() {
        // constant data → zero half width
        let v = vec![5.0; 1000];
        let (m, h) = batch_means_ci(&v, 10);
        assert_eq!(m, 5.0);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn batch_means_small_sample_is_honest() {
        let (_, h) = batch_means_ci(&[1.0, 2.0], 10);
        assert_eq!(h, f64::INFINITY);
    }

    #[test]
    fn utilizations_from_makespan() {
        let mut c = Collector::new(2, MetricsConfig::default());
        c.record(rec(0, 0.0, 4.0, 0.0, 0));
        c.record(rec(1, 0.0, 8.0, 2.0, 1)); // completes at 10 → makespan 10
        let r = c.finish();
        let u = r.utilizations();
        assert!((u[0] - 0.4).abs() < 1e-12);
        assert!((u[1] - 0.8).abs() < 1e-12);
    }
}

#[cfg(test)]
mod slo_tests {
    use super::*;

    #[test]
    fn slo_violations_are_counted() {
        let mut c = Collector::new(1, MetricsConfig {
            slo_slowdown: Some(3.0),
            ..MetricsConfig::default()
        });
        for (i, slowdown) in [1.0f64, 2.0, 5.0, 10.0].iter().enumerate() {
            c.record(JobRecord {
                id: i as u64,
                arrival: 0.0,
                size: 1.0,
                start: slowdown - 1.0,
                completion: *slowdown,
                host: 0,
            });
        }
        let r = c.finish();
        assert_eq!(r.slo_violations, Some((2, 3.0)));
        assert!((r.slo_violation_fraction().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slo_absent_without_threshold() {
        let c = Collector::new(1, MetricsConfig::default());
        let r = c.finish();
        assert!(r.slo_violations.is_none());
        assert!(r.slo_violation_fraction().is_none());
    }
}

#[cfg(test)]
mod percentile_tests {
    use super::*;

    #[test]
    fn percentiles_tracked_when_enabled() {
        let mut c = Collector::new(1, MetricsConfig {
            slowdown_percentiles: true,
            ..MetricsConfig::default()
        });
        for i in 0..1000 {
            let slowdown = 1.0 + (i % 100) as f64; // slowdowns 1..=100
            c.record(JobRecord {
                id: i,
                arrival: 0.0,
                size: 1.0,
                start: slowdown - 1.0,
                completion: slowdown,
                host: 0,
            });
        }
        let r = c.finish();
        let p = r.slowdown_percentiles.expect("enabled");
        let median = p.iter().find(|(q, _)| (*q - 0.5).abs() < 1e-9).unwrap().1;
        assert!((median - 51.0).abs() < 5.0, "median = {median}");
        let p99 = p.iter().find(|(q, _)| (*q - 0.99).abs() < 1e-9).unwrap().1;
        assert!(p99 > 95.0, "p99 = {p99}");
    }

    #[test]
    fn percentiles_absent_by_default() {
        let c = Collector::new(1, MetricsConfig::default());
        assert!(c.finish().slowdown_percentiles.is_none());
    }
}

#[cfg(test)]
mod demand_tests {
    use super::*;

    fn rec(id: u64, arrival: f64, size: f64, start: f64, host: usize) -> JobRecord {
        JobRecord {
            id,
            arrival,
            size,
            start,
            completion: start + size,
            host,
        }
    }

    #[test]
    fn demand_bit_algebra() {
        assert_eq!(Demand::FULL, Demand::MEANS | Demand::CLASS_SPLIT | Demand::QUANTILES | Demand::PER_HOST | Demand::RECORDS);
        assert!(Demand::FULL.includes(Demand::MEANS));
        assert!(!Demand::MEANS.includes(Demand::PER_HOST));
        assert!((Demand::MEANS | Demand::PER_HOST).includes(Demand::PER_HOST));
        // normalization always demands the core moment streams
        assert!(Demand::PER_HOST.normalized().includes(Demand::MEANS));
        assert_eq!(MetricsConfig::default().demand, Demand::FULL);
    }

    #[test]
    fn record_path_routing() {
        let base = MetricsConfig::streaming();
        assert_eq!(resolve_path(&base), RecordPath::Full);
        let means = MetricsConfig { demand: Demand::MEANS, ..base };
        assert_eq!(resolve_path(&means), RecordPath::Means);
        let hosty = MetricsConfig { demand: Demand::MEANS | Demand::PER_HOST, ..base };
        assert_eq!(resolve_path(&hosty), RecordPath::MeansHost);
        let batched = MetricsConfig { batched: true, ..base };
        assert_eq!(resolve_path(&batched), RecordPath::Batched);
        // a demanded tail accumulator overrides the batching request
        let tailed = MetricsConfig {
            batched: true,
            split_cutoff: Some(1.0),
            ..base
        };
        assert_eq!(resolve_path(&tailed), RecordPath::Full);
        // ... but an undemanded one does not
        let masked_tail = MetricsConfig {
            batched: true,
            split_cutoff: Some(1.0),
            demand: Demand::MEANS,
            ..base
        };
        assert_eq!(resolve_path(&masked_tail), RecordPath::Batched);
        assert_eq!(resolve_path(&MetricsConfig::full_records()), RecordPath::Full);
    }

    #[test]
    fn means_tier_matches_full_bitwise_and_masks_the_rest() {
        let recs: Vec<JobRecord> = (0..257)
            .map(|i| rec(i, i as f64, 1.0 + (i % 13) as f64, i as f64 + (i % 3) as f64, (i % 4) as usize))
            .collect();
        let mut full = Collector::new(4, MetricsConfig::streaming());
        let mut means = Collector::new(
            4,
            MetricsConfig {
                demand: Demand::MEANS,
                ..MetricsConfig::streaming()
            },
        );
        for &r in &recs {
            full.record(r);
            means.record(r);
        }
        let f = full.finish();
        let m = means.finish();
        assert_eq!(f.slowdown.mean.to_bits(), m.slowdown.mean.to_bits());
        assert_eq!(f.slowdown.variance.to_bits(), m.slowdown.variance.to_bits());
        assert_eq!(f.waiting.mean.to_bits(), m.waiting.mean.to_bits());
        assert_eq!(f.measured, m.measured);
        assert_eq!(f.makespan.to_bits(), m.makespan.to_bits());
        assert_eq!(m.slowdown.min, f64::INFINITY);
        assert_eq!(m.slowdown.max, f64::NEG_INFINITY);
        assert!(m.per_host.iter().all(|h| h.jobs == 0 && h.work == 0.0));
        assert!(f.per_host.iter().any(|h| h.jobs > 0));
    }

    #[test]
    fn batched_tier_is_close_and_exact_where_promised() {
        let recs: Vec<JobRecord> = (0..321)
            .map(|i| rec(i, i as f64 * 0.5, 0.5 + (i % 17) as f64, i as f64 * 0.5 + (i % 5) as f64, (i % 3) as usize))
            .collect();
        let mut scalar = Collector::new(3, MetricsConfig::streaming());
        let mut batched = Collector::new(
            3,
            MetricsConfig {
                batched: true,
                ..MetricsConfig::streaming()
            },
        );
        for &r in &recs {
            scalar.record(r);
            batched.record(r);
        }
        let s = scalar.finish();
        let b = batched.finish();
        // exact: counts, extrema, per-host tallies, makespan
        assert_eq!(b.measured, s.measured);
        assert_eq!(b.slowdown.min.to_bits(), s.slowdown.min.to_bits());
        assert_eq!(b.slowdown.max.to_bits(), s.slowdown.max.to_bits());
        assert_eq!(b.per_host, s.per_host);
        assert_eq!(b.makespan.to_bits(), s.makespan.to_bits());
        // ulp-bounded: stream mean and variance
        for (x, y) in [
            (&b.slowdown, &s.slowdown),
            (&b.queueing_slowdown, &s.queueing_slowdown),
            (&b.response, &s.response),
            (&b.waiting, &s.waiting),
        ] {
            assert!((x.mean - y.mean).abs() <= 1e-12 * y.mean.abs().max(1e-300));
            assert!((x.variance - y.variance).abs() <= 1e-9 * y.variance.abs().max(1e-300));
        }
    }

    #[test]
    fn soa_block_delivery_matches_per_record_calls_bitwise() {
        let n = 200;
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job {
                id: i as u64,
                arrival: i as f64,
                size: 1.0 + (i % 11) as f64,
            })
            .collect();
        let arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
        let sizes: Vec<f64> = jobs.iter().map(|j| j.size).collect();
        let inv_sizes: Vec<f64> = sizes.iter().map(|&s| 1.0 / s).collect();
        let starts: Vec<f64> = arrivals.iter().map(|&a| a + 0.5).collect();
        let completions: Vec<f64> = starts.iter().zip(&sizes).map(|(&st, &sz)| st + sz).collect();
        let hosts: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let cfg = MetricsConfig {
            warmup_jobs: 7,
            ..MetricsConfig::streaming()
        };
        let mut block = Collector::new(2, cfg);
        block.record_block_with_inv(&jobs, &arrivals, &sizes, &inv_sizes, &starts, &completions, &hosts);
        let mut scalar = Collector::new(2, cfg);
        for (j, job) in jobs.iter().enumerate() {
            scalar.record_with_inv(
                JobRecord {
                    id: job.id,
                    arrival: arrivals[j],
                    size: sizes[j],
                    start: starts[j],
                    completion: completions[j],
                    host: hosts[j] as usize,
                },
                inv_sizes[j],
            );
        }
        let a = block.finish();
        let b = scalar.finish();
        assert_eq!(a.slowdown.mean.to_bits(), b.slowdown.mean.to_bits());
        assert_eq!(a.slowdown.variance.to_bits(), b.slowdown.variance.to_bits());
        assert_eq!(a.waiting.mean.to_bits(), b.waiting.mean.to_bits());
        assert_eq!(a.per_host, b.per_host);
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.skipped, b.skipped);
    }

    #[test]
    fn lane_stats_matches_naive_two_pass() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64).mul_add(0.37, -3.0)).collect();
        let (mean, m2, mn, mx) = lane_stats(&xs);
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_m2 = xs.iter().map(|x| (x - naive_mean) * (x - naive_mean)).sum::<f64>();
        assert!((mean - naive_mean).abs() <= 1e-13 * naive_mean.abs().max(1.0));
        assert!((m2 - naive_m2).abs() <= 1e-10 * naive_m2.abs().max(1.0));
        assert_eq!(mn, *xs.first().unwrap());
        assert_eq!(mx, *xs.last().unwrap());
        // short slices (partial final block) go through the same code
        let (mean1, m21, mn1, mx1) = lane_stats(&xs[..1]);
        assert_eq!(mean1, xs[0]);
        assert_eq!(m21, 0.0);
        assert_eq!((mn1, mx1), (xs[0], xs[0]));
    }

    #[test]
    fn reset_re_resolves_the_record_path() {
        let mut c = Collector::new(2, MetricsConfig {
            demand: Demand::MEANS,
            ..MetricsConfig::streaming()
        });
        c.record(rec(0, 0.0, 1.0, 0.0, 0));
        c.reset(2, MetricsConfig::streaming(), 4);
        c.record(rec(0, 0.0, 2.0, 0.0, 1));
        let r = c.finish();
        // back on the full path: extrema and per-host live again
        assert_eq!(r.measured, 1);
        assert_eq!(r.slowdown.min, 1.0);
        assert_eq!(r.per_host[1].jobs, 1);
    }
}
