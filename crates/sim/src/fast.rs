//! The fast exact simulator for dispatch-on-arrival policies.
//!
//! With FCFS run-to-completion hosts and immediate dispatch, a host is a
//! G/G/1 queue whose waiting times obey the Lindley recursion: if
//! `free_at` is the time the host drains everything already assigned,
//! then a job arriving at `t` starts at `max(t, free_at)` and the new
//! `free_at` is `start + size`. This gives an *exact* simulation — not an
//! approximation — at O(log n) per job (a heap maintains in-system job
//! counts for queue-length-aware policies such as Shortest-Queue).
//!
//! The event-driven engine in [`crate::event`] computes the identical
//! schedule the slow way; `tests` in both modules and the integration
//! suite assert exact agreement.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::metrics::{Collector, JobRecord, MetricsConfig, SimResult};
use crate::state::{Dispatcher, HostView, SystemState};
use dses_dist::Rng64;
use dses_workload::Trace;

/// An `f64` wrapper ordered by `total_cmp`, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct HostSim {
    /// time at which all currently assigned work completes
    free_at: f64,
    /// host speed: a job of size `x` occupies the host for `x / speed`
    speed: f64,
    /// completion times of jobs still in the system (min-heap)
    completions: BinaryHeap<Reverse<OrdF64>>,
}

impl HostSim {
    fn new(speed: f64) -> Self {
        Self {
            free_at: 0.0,
            speed,
            // jobs in system per host stay small except near saturation;
            // 32 slots absorb the common case without reallocation
            completions: BinaryHeap::with_capacity(32),
        }
    }

    /// Remove completed jobs as of time `now` and return the view.
    fn view(&mut self, now: f64) -> HostView {
        while let Some(&Reverse(OrdF64(c))) = self.completions.peek() {
            if c <= now {
                self.completions.pop();
            } else {
                break;
            }
        }
        HostView {
            queue_len: self.completions.len(),
            work_left: (self.free_at - now).max(0.0),
        }
    }

    /// Assign a job arriving at `now` with the given size; returns
    /// `(start, completion)`.
    fn assign(&mut self, now: f64, size: f64) -> (f64, f64) {
        let start = now.max(self.free_at);
        let completion = start + size / self.speed;
        self.free_at = completion;
        self.completions.push(Reverse(OrdF64(completion)));
        (start, completion)
    }
}

/// Simulate `trace` on `hosts` identical FCFS hosts under `policy`.
///
/// `seed` drives any randomness inside the policy (e.g. Random's coin
/// flips); the engine itself is deterministic.
///
/// ```
/// use dses_sim::{simulate_dispatch, Dispatcher, MetricsConfig, SystemState};
/// use dses_workload::{Job, Trace};
/// use dses_dist::Rng64;
///
/// struct Lwl;
/// impl Dispatcher for Lwl {
///     fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
///         s.least_work()
///     }
/// }
///
/// let trace = Trace::new(vec![
///     Job::new(0, 0.0, 5.0),
///     Job::new(1, 1.0, 1.0),
/// ]);
/// let result = simulate_dispatch(&trace, 2, &mut Lwl, 0, MetricsConfig::default());
/// assert_eq!(result.measured, 2);
/// // the second job found the idle host: no waiting at all
/// assert!((result.slowdown.mean - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn simulate_dispatch<P: Dispatcher + ?Sized>(
    trace: &Trace,
    hosts: usize,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
) -> SimResult {
    simulate_dispatch_speeds(trace, &vec![1.0; hosts], policy, seed, cfg)
}

/// Simulate `trace` on **heterogeneous** FCFS hosts: `speeds[i]` is host
/// `i`'s service rate relative to the reference (a job of size `x` runs
/// for `x / speeds[i]` there). Slowdown remains `response / size` — size
/// is measured in reference-host seconds, so a job served faster than
/// the reference can record a slowdown below 1.
///
/// An extension beyond the paper, whose architectural model fixes
/// identical hosts (§1.1); the `ablation_hetero` exhibit explores how
/// SITA's cutoffs interact with speed asymmetry.
#[must_use]
pub fn simulate_dispatch_speeds<P: Dispatcher + ?Sized>(
    trace: &Trace,
    speeds: &[f64],
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
) -> SimResult {
    let hosts = speeds.len();
    assert!(hosts > 0, "need at least one host");
    assert!(
        speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
        "host speeds must be positive and finite"
    );
    policy.reset();
    let mut rng = Rng64::seed_from(seed).stream(0xD15);
    let mut host_sims: Vec<HostSim> = speeds.iter().map(|&s| HostSim::new(s)).collect();
    let mut views: Vec<HostView> = vec![
        HostView {
            queue_len: 0,
            work_left: 0.0
        };
        hosts
    ];
    let mut collector = Collector::with_job_hint(hosts, cfg, trace.len());
    for job in trace.jobs() {
        let now = job.arrival;
        for (v, hs) in views.iter_mut().zip(host_sims.iter_mut()) {
            *v = hs.view(now);
        }
        let state = SystemState { now, hosts: &views };
        let target = policy.dispatch(job, &state, &mut rng);
        assert!(
            target < hosts,
            "policy {} returned host {target} of {hosts}",
            policy.name()
        );
        let (start, completion) = host_sims[target].assign(now, job.size);
        collector.record(JobRecord {
            id: job.id,
            arrival: job.arrival,
            size: job.size,
            start,
            completion,
            host: target,
        });
    }
    collector.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dses_workload::Job;

    /// Send every job to host 0.
    struct ToZero;
    impl Dispatcher for ToZero {
        fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
            0
        }
        fn name(&self) -> String {
            "to-zero".into()
        }
    }

    /// Always pick the least-work host (mini LWL for engine tests).
    struct MiniLwl;
    impl Dispatcher for MiniLwl {
        fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
            s.least_work()
        }
    }

    fn trace(jobs: &[(f64, f64)]) -> Trace {
        Trace::new(
            jobs.iter()
                .enumerate()
                .map(|(i, &(a, s))| Job::new(i as u64, a, s))
                .collect(),
        )
    }

    #[test]
    fn single_host_fcfs_hand_schedule() {
        // arrivals (0, 10), (1, 5), (12, 2):
        // job0: start 0, done 10; job1: start 10, done 15; job2: start 15, done 17
        let t = trace(&[(0.0, 10.0), (1.0, 5.0), (12.0, 2.0)]);
        let r = simulate_dispatch(&t, 1, &mut ToZero, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[0].completion, 10.0);
        assert_eq!(recs[1].start, 10.0);
        assert_eq!(recs[1].completion, 15.0);
        assert_eq!(recs[2].start, 15.0);
        assert_eq!(recs[2].completion, 17.0);
        // slowdowns: 1, 14/5, 5/2
        assert!((r.slowdown.mean - (1.0 + 2.8 + 2.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_host_serves_immediately() {
        let t = trace(&[(0.0, 5.0), (100.0, 1.0)]);
        let r = simulate_dispatch(&t, 1, &mut ToZero, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[1].start, 100.0);
        assert_eq!(recs[1].slowdown(), 1.0);
    }

    #[test]
    fn least_work_balances_two_hosts() {
        // job0 (size 10) → host 0; job1 at t=1 sees work (9, 0) → host 1
        let t = trace(&[(0.0, 10.0), (1.0, 2.0)]);
        let r = simulate_dispatch(&t, 2, &mut MiniLwl, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[0].host, 0);
        assert_eq!(recs[1].host, 1);
        assert_eq!(recs[1].start, 1.0);
    }

    #[test]
    fn queue_len_view_expires_completed_jobs() {
        // host 0 serves a size-1 job at t=0; at t=5 the queue must be empty
        struct AssertingPolicy {
            calls: usize,
        }
        impl Dispatcher for AssertingPolicy {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                if self.calls == 1 {
                    assert_eq!(s.hosts[0].queue_len, 0, "stale completion retained");
                    assert_eq!(s.hosts[0].work_left, 0.0);
                }
                self.calls += 1;
                0
            }
        }
        let t = trace(&[(0.0, 1.0), (5.0, 1.0)]);
        let _ = simulate_dispatch(&t, 1, &mut AssertingPolicy { calls: 0 }, 0, MetricsConfig::default());
    }

    #[test]
    fn work_left_view_is_remaining_service() {
        struct Check;
        impl Dispatcher for Check {
            fn dispatch(&mut self, job: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                if job.id == 1 {
                    // size-10 job started at 0; at t = 4, 6 seconds remain
                    assert!((s.hosts[0].work_left - 6.0).abs() < 1e-12);
                }
                0
            }
        }
        let t = trace(&[(0.0, 10.0), (4.0, 1.0)]);
        let _ = simulate_dispatch(&t, 1, &mut Check, 0, MetricsConfig::default());
    }

    #[test]
    fn work_conservation() {
        let t = trace(&[(0.0, 3.0), (0.5, 4.0), (1.0, 5.0), (2.0, 1.0)]);
        let r = simulate_dispatch(&t, 2, &mut MiniLwl, 0, MetricsConfig::default());
        let total: f64 = r.per_host.iter().map(|h| h.work).sum();
        assert!((total - 13.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "returned host")]
    fn out_of_range_dispatch_is_caught() {
        struct Bad;
        impl Dispatcher for Bad {
            fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
                7
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let _ = simulate_dispatch(&t, 2, &mut Bad, 0, MetricsConfig::default());
    }

    #[test]
    fn deterministic_given_seed() {
        struct Coin;
        impl Dispatcher for Coin {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, rng: &mut Rng64) -> usize {
                rng.below(s.num_hosts() as u64) as usize
            }
        }
        let t = trace(&[(0.0, 1.0), (0.1, 2.0), (0.2, 3.0), (0.3, 4.0)]);
        let a = simulate_dispatch(&t, 2, &mut Coin, 5, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let b = simulate_dispatch(&t, 2, &mut Coin, 5, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        assert_eq!(a.records.unwrap(), b.records.unwrap());
    }
}

#[cfg(test)]
mod speed_tests {
    use super::*;
    use crate::state::{Dispatcher, SystemState};
    use dses_workload::{Job, Trace};

    struct ToHost(usize);
    impl Dispatcher for ToHost {
        fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
            self.0
        }
    }

    fn trace(jobs: &[(f64, f64)]) -> Trace {
        Trace::new(
            jobs.iter()
                .enumerate()
                .map(|(i, &(a, s))| Job::new(i as u64, a, s))
                .collect(),
        )
    }

    #[test]
    fn fast_host_halves_service_time() {
        let t = trace(&[(0.0, 10.0)]);
        let r = simulate_dispatch_speeds(&t, &[2.0], &mut ToHost(0), 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let rec = r.records.unwrap()[0];
        assert_eq!(rec.completion, 5.0);
        assert_eq!(rec.slowdown(), 0.5); // faster than the reference host
    }

    #[test]
    fn slow_host_queues_longer() {
        let t = trace(&[(0.0, 10.0), (1.0, 10.0)]);
        let r = simulate_dispatch_speeds(&t, &[0.5], &mut ToHost(0), 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[0].completion, 20.0);
        assert_eq!(recs[1].start, 20.0);
        assert_eq!(recs[1].completion, 40.0);
    }

    #[test]
    fn unit_speeds_match_the_homogeneous_engine() {
        let t = trace(&[(0.0, 3.0), (0.5, 4.0), (1.0, 5.0), (2.0, 1.0)]);
        struct MiniLwl;
        impl Dispatcher for MiniLwl {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                s.least_work()
            }
        }
        let cfg = MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        };
        let a = simulate_dispatch(&t, 2, &mut MiniLwl, 0, cfg);
        let b = simulate_dispatch_speeds(&t, &[1.0, 1.0], &mut MiniLwl, 0, cfg);
        assert_eq!(a.records.unwrap(), b.records.unwrap());
    }

    #[test]
    fn lwl_prefers_the_fast_host_under_load() {
        // both hosts busy; the fast host drains sooner, so LWL picks it
        struct MiniLwl;
        impl Dispatcher for MiniLwl {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                s.least_work()
            }
        }
        let t = trace(&[(0.0, 10.0), (0.0, 10.0), (1.0, 1.0)]);
        let r = simulate_dispatch_speeds(&t, &[1.0, 4.0], &mut MiniLwl, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        // job 0 -> host 0 (tie, lowest index); job 1 -> host 1;
        // at t=1: host0 has 9s left, host1 has 10/4-1 = 1.5s left
        let j2 = recs.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(j2.host, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_speed() {
        let t = trace(&[(0.0, 1.0)]);
        let _ = simulate_dispatch_speeds(&t, &[0.0], &mut ToHost(0), 0, MetricsConfig::default());
    }
}
