//! The fast exact simulator for dispatch-on-arrival policies.
//!
//! With FCFS run-to-completion hosts and immediate dispatch, a host is a
//! G/G/1 queue whose waiting times obey the Lindley recursion: if
//! `free_at` is the time the host drains everything already assigned,
//! then a job arriving at `t` starts at `max(t, free_at)` and the new
//! `free_at` is `start + size`. This gives an *exact* simulation — not an
//! approximation.
//!
//! The engine is **specialized to the policy**: a dispatcher declares
//! which [`HostView`] fields it reads via
//! [`Dispatcher::state_needs`](crate::state::StateNeeds), and the engine
//! picks one of four hot loops:
//!
//! * **static** (`NOTHING`, e.g. Random/Round-Robin/SITA) — O(1) per
//!   job: the Lindley scalar per host is all the state there is, and the
//!   views handed to the policy are never refreshed (it cannot tell);
//! * **work-left** (`WORK_LEFT`, e.g. Least-Work-Left) — O(h) per job,
//!   heap-free: `work_left = max(free_at − now, 0)` falls out of the
//!   Lindley scalar;
//! * **queue-length** (`QUEUE_LEN` only, e.g. Shortest-Queue) — an FCFS
//!   run-to-completion host completes jobs in assignment order
//!   (`completion = max(now, free_at) + service ≥ free_at`, the previous
//!   completion), so its in-system completion times form a **monotone
//!   FIFO deque** — push new completions at the back, pop expired ones
//!   off the front. Queue lengths update incrementally, and a tournament
//!   heap over the deque fronts (≤ one entry per non-empty host) makes
//!   the per-arrival expiry check O(1) instead of an O(h) scan;
//! * **full** (`ALL`, the default for policies that declare nothing) —
//!   per-host completion min-heaps maintain counts *and* work; this is
//!   also the reference loop the specialized ones are tested against.
//!
//! All loops run the identical Lindley arithmetic on the same RNG
//! stream, so the schedules are bit-for-bit the same regardless of which
//! loop runs — a policy that does not read a field cannot observe
//! whether it was computed. The loops stream the trace through its
//! structure-of-arrays views ([`Trace::arrivals`], [`Trace::sizes`]).
//!
//! All per-run state lives in a [`SimWorkspace`]: the `*_into` entry
//! points borrow one explicitly (allocation-free in steady state), and
//! the plain entry points reuse a thread-local workspace transparently.
//!
//! The event-driven engine in [`crate::event`] computes the identical
//! schedule the slow way; `tests` in both modules and the integration
//! suite assert exact agreement.

use std::cmp::Reverse;

use crate::metrics::{Collector, JobRecord, MetricsConfig, SimResult};
use crate::state::{DispatchKernel, Dispatcher, HostView, StateNeeds, SystemState};
use crate::workspace::{with_thread_workspace, SimWorkspace};
use dses_dist::Rng64;
use dses_workload::Trace;

/// An `f64` wrapper ordered by `total_cmp`, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// How a host turns a job's size into occupancy time. The two
/// implementations let the common homogeneous case monomorphize to a
/// plain `size` copy — no `Vec<f64>` of speeds allocated, no per-job
/// divide — while heterogeneous hosts pay the divide they need.
/// (`size / 1.0 == size` exactly in IEEE arithmetic, so the two paths
/// agree bit-for-bit on unit speeds.)
trait SpeedModel {
    fn hosts(&self) -> usize;
    fn service(&self, host: usize, size: f64) -> f64;
}

/// `hosts` identical unit-speed hosts (the paper's model).
struct UnitSpeeds(usize);

impl SpeedModel for UnitSpeeds {
    #[inline]
    fn hosts(&self) -> usize {
        self.0
    }
    // dses-lint: divides(0)
    #[inline]
    fn service(&self, _host: usize, size: f64) -> f64 {
        size
    }
}

/// Per-host relative service rates.
struct PerHostSpeeds<'a>(&'a [f64]);

impl SpeedModel for PerHostSpeeds<'_> {
    #[inline]
    fn hosts(&self) -> usize {
        self.0.len()
    }
    // dses-lint: divides(1)
    #[inline]
    fn service(&self, host: usize, size: f64) -> f64 {
        size / self.0[host]
    }
}

/// Number of parallel accumulator lanes in [`argmin_work_left`]: eight
/// f64s are one AVX-512 register or two AVX2 registers. The chunked loop
/// is plain safe code shaped so the autovectorizer lowers it to
/// `vsubpd`/`vmaxpd`/`vcmppd`/`vblendvpd` — no intrinsics, no `unsafe`.
const ARGMIN_LANES: usize = 8;

/// Leftmost argmin of the clamped backlog `max(free_at[h] − now, 0)` —
/// the branchless, vectorizable replacement for
/// [`SystemState::least_work`] over views refreshed from the Lindley
/// scalars.
///
/// Tie-break proof sketch (full version: DESIGN.md §11). The clamped
/// values are finite, non-negative, and never `−0.0` (`free_at` holds
/// `+0.0` or positive sums; equal finite operands subtract to `+0.0`,
/// and the clamp maps every non-positive input to `+0.0`), so
/// `total_cmp` coincides with `<` and the scalar reference — `min_by`
/// keeping the first minimum — is exactly "leftmost strict minimum".
/// The chunked scan keeps one running `(value, index)` pair per residue
/// class mod [`ARGMIN_LANES`], updated with strict `<` so each lane
/// holds the *first* minimum of its class; the global leftmost minimum
/// is the first minimum of its own class, hence among the eight
/// candidates, and the `(min value, then min index)` horizontal
/// reduction recovers exactly it. The scalar tail covers indices after
/// the chunked prefix, where strict `<` alone preserves the tie-break.
// dses-lint: divides(0)
// dses-lint: deny(alloc)
#[must_use]
pub(crate) fn argmin_work_left(free_at: &[f64], now: f64) -> usize {
    let n = free_at.len();
    debug_assert!(n > 0, "argmin over zero hosts");
    let chunks = if n >= 2 * ARGMIN_LANES { n / ARGMIN_LANES } else { 0 };
    let mut best_v = f64::INFINITY;
    let mut best_i = 0usize;
    // The chunked scan pays a fixed cost (lane init + an 8-way
    // horizontal reduce) that only amortizes once several chunks flow
    // through it; below that the plain strict-`<` loop — the proof's
    // "tail" case covering the whole slice — is faster and trivially
    // leftmost-tie-wins.
    if chunks > 0 {
        // Indices ride in f64 lanes too (exact below 2^53), so one
        // compare mask drives two same-width selects.
        let mut lane_v = [f64::INFINITY; ARGMIN_LANES];
        let mut lane_i = [0.0f64; ARGMIN_LANES];
        for (c, block) in free_at.chunks_exact(ARGMIN_LANES).enumerate() {
            let base = (c * ARGMIN_LANES) as f64;
            for j in 0..ARGMIN_LANES {
                let v = (block[j] - now).max(0.0);
                // strict `<`: ties never displace the earlier chunk's entry
                let keep = v < lane_v[j];
                lane_v[j] = if keep { v } else { lane_v[j] };
                lane_i[j] = if keep { base + j as f64 } else { lane_i[j] };
            }
        }
        // (min value, then min index) select-based reduce: lane j holds
        // the first minimum of residue class j, so the global leftmost
        // minimum is the lowest index among the value-tied lanes.
        let mut red_i = 0.0f64;
        for j in 0..ARGMIN_LANES {
            let better =
                lane_v[j] < best_v || (lane_v[j] == best_v && lane_i[j] < red_i);
            best_v = if better { lane_v[j] } else { best_v };
            red_i = if better { lane_i[j] } else { red_i };
        }
        best_i = red_i as usize;
    }
    for (off, &f) in free_at[chunks * ARGMIN_LANES..].iter().enumerate() {
        let v = (f - now).max(0.0);
        if v < best_v {
            best_v = v;
            best_i = chunks * ARGMIN_LANES + off;
        }
    }
    best_i
}

/// Cutoff count up to which the linear prefix-count SITA lookup wins:
/// `h − 1` independent compares vectorize flat and beat a ⌈log₂ h⌉
/// chain of dependent selects while the cutoff array still fits in a
/// couple of cache lines.
const SITA_LINEAR_MAX: usize = 16;

/// Host index for `size` under SITA cutoffs `cuts` (strictly increasing,
/// `cuts.len() == hosts − 1`): exactly
/// `cuts.partition_point(|&c| size > c)`, the policy's own arithmetic.
///
/// Narrow arrays keep the branchless prefix count — on a strictly
/// increasing sequence `{c : size > c}` is a prefix, and the partition
/// point is its length; `h − 1` independent compares vectorize flat and
/// walking them beats any search while the array fits in two cache
/// lines. Wide arrays binary-search. A branchless fixed-depth
/// (⌈log₂ h⌉ conditional moves) variant was built and measured first:
/// it beat the linear walk 3× at h = 1024 but lost 1.65× to the branchy
/// `partition_point` on heavy-tailed workloads — skewed routing sends
/// most jobs down the same few comparison paths, so the predictor eats
/// the branches while the cmov chain always pays its full serial
/// ⌈log₂ h⌉ × load-to-select latency. Measurement wins: wide goes to
/// `partition_point`. Ties land left either way: `size == cuts[k]`
/// fails `size > cuts[k]` (pinned in the tie-dense unit test below and
/// in `tests/segmented.rs`).
// dses-lint: divides(0)
// dses-lint: deny(alloc)
#[inline]
#[must_use]
pub(crate) fn sita_pick(cuts: &[f64], size: f64) -> usize {
    if cuts.len() <= SITA_LINEAR_MAX {
        return cuts.iter().map(|&c| usize::from(size > c)).sum();
    }
    cuts.partition_point(|&c| size > c)
}

/// Jobs per segmented block: bounds the phase-1/phase-2 scratch to a
/// cache-resident working set (24 B per job per lane across
/// `chosen`/`seg_idx`/`seg_starts`/`seg_departs`) while keeping per-host
/// segments long enough to amortize the per-block counting sort.
const SEG_BLOCK: usize = 8192;

/// Independent Lindley chains kept in flight in segmented phase 2. Each
/// chain is a serial `max`+`add` dependency; interleaving four gives the
/// out-of-order core four accumulators to overlap, the same device the
/// fused kernel gets from replication lanes.
const SEG_CHAINS: usize = 4;

/// Trace length below which the segmented split costs more than the
/// serial chain it breaks (three extra passes over the block scratch).
const SEGMENTED_MIN_JOBS: usize = 4096;

/// Which path the engine takes for closed-form static kernels
/// (Random / Round-Robin / SITA): the direct loop of
/// [`run_static_kernel`] or the two-phase segmented split of
/// [`run_segmented_core`]. Both produce bit-identical results; this is
/// purely a throughput choice, so the plain entry points use [`Auto`]
/// and the pinned modes exist for gating and honest benchmarking.
///
/// [`Auto`]: SegmentedMode::Auto
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SegmentedMode {
    /// Segment when the measured heuristic ([`segmented_pays`]) says it
    /// pays: fused replication lanes on traces long enough to amortize
    /// the block passes, with few hosts or skewed (SITA) routing.
    /// Policies without a closed-form static kernel always take their
    /// existing loops.
    #[default]
    Auto,
    /// Always segment where a closed-form static kernel exists (the
    /// bit-identity gates run here); other policies fall back.
    Force,
    /// Never segment — the direct kernels regardless of trace size, the
    /// baseline `perf_report` measures the segmented path against.
    Never,
}

/// Fused host-count bound up to which the segmented split beats the
/// lockstep fused loop for *uniform* choosers (Random / Round-Robin):
/// past it the per-block segment bookkeeping outgrows what shorter
/// per-host chains save.
const SEG_FUSED_MAX_HOSTS: usize = 16;

/// The [`SegmentedMode::Auto`] heuristic, set by measurement (DESIGN.md
/// §12.5), with `skewed` marking size-interval choosers whose routing
/// concentrates consecutive jobs on few hosts:
///
/// * **Solo runs never segment.** On identical hosts the direct loop's
///   per-host chains already interleave naturally (consecutive jobs
///   rarely share a host), and the record path — not the Lindley
///   recursion — is the throughput wall, so the block passes are pure
///   overhead.
/// * **Fused lanes segment** when the trace amortizes the block passes
///   and hosts are few (every chooser) or routing is skewed (SITA —
///   the one case whose direct chains genuinely serialize): the
///   lockstep fused loop pays register pressure per job that the
///   phase split avoids.
///
/// Both paths are bit-identical, so this is purely a throughput choice;
/// the pinned modes serve the gates and benchmark baselines.
#[inline]
fn segmented_pays(n: usize, lanes: usize, hosts: usize, skewed: bool) -> bool {
    lanes > 1
        && n >= SEGMENTED_MIN_JOBS
        && hosts * 4 <= SEG_BLOCK.min(n)
        && (skewed || hosts <= SEG_FUSED_MAX_HOSTS)
}

/// Mutable views over the workspace's segmented scratch
/// ([`crate::workspace::SimWorkspace::reset_segmented`] shapes the
/// backing buffers; all lane-major with block stride `b`).
struct SegScratch<'a> {
    /// Phase-1 host choices: `chosen[r*b + j]`.
    chosen: &'a mut [u32],
    /// Per-lane counting-sort boundaries, `hosts + 1` entries per lane.
    offsets: &'a mut [u32],
    /// Block-local job indices partitioned by host.
    idx: &'a mut [u32],
    /// Phase-2 service starts by block-local job index.
    starts: &'a mut [f64],
    /// Phase-2 departures by block-local job index.
    departs: &'a mut [f64],
}

/// One in-flight Lindley chain of segmented phase 2: a (lane, host)
/// segment with its carried `free` time and the lane's hoisted SoA
/// views, so the march loop touches no accessor calls.
struct Chain<'a> {
    /// Remaining block-local job indices of this segment, arrival order.
    seg: &'a [u32],
    /// The owning lane's full arrival SoA.
    arrivals: &'a [f64],
    /// The owning lane's full size SoA.
    sizes: &'a [f64],
    /// `r * b` — the lane's offset into the starts/departs scratch.
    sd_base: usize,
    /// Host index within the lane (drives the speed model).
    host: usize,
    /// `r * hosts + host` — where the carried free time writes back.
    slot: usize,
    /// The chain value: this host's next-free time.
    free: f64,
}

const EMPTY_CHAIN: Chain<'static> = Chain {
    seg: &[],
    arrivals: &[],
    sizes: &[],
    sd_base: 0,
    host: 0,
    slot: 0,
    free: 0.0,
};

/// Advance the first `G` chains in lockstep by the length of the
/// shortest among them. `G` is const so the step body fully unrolls
/// into `G` independent `max`/`add` chains with no per-step branches;
/// the caller re-compacts and re-dispatches when a segment runs dry.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
// dses-lint: mirrors(lindley)
// dses-lint: hoist(service)
#[inline(always)]
fn march_chains<'a, const G: usize, S: SpeedModel>(
    chains: &mut [Chain<'a>; SEG_CHAINS],
    speeds: &S,
    block_base: usize,
    starts: &mut [f64],
    departs: &mut [f64],
) {
    let mut m = usize::MAX;
    for ch in chains.iter().take(G) {
        m = m.min(ch.seg.len());
    }
    for step in 0..m {
        for ch in chains.iter_mut().take(G) {
            let j = ch.seg[step] as usize;
            let i = block_base + j;
            let start = ch.arrivals[i].max(ch.free);
            let completion = start + speeds.service(ch.host, ch.sizes[i]);
            ch.free = completion;
            starts[ch.sd_base + j] = start;
            departs[ch.sd_base + j] = completion;
        }
    }
    for ch in chains.iter_mut().take(G) {
        ch.seg = &ch.seg[m..];
    }
}

/// The two-phase segmented static kernel — the engine's answer to the
/// serial Lindley chain (DESIGN.md §12).
///
/// A static policy's host choice is independent of host state, so the
/// whole job→host assignment is known *before* any Lindley update runs.
/// The kernel exploits that in blocks of [`SEG_BLOCK`] jobs:
///
/// 1. **choose** — every block job's host is computed up front into
///    `chosen`, per lane in job order (RNG draws and kernel cursors
///    advance in exactly the order the direct kernel would use, so the
///    streams stay aligned) with no `free_at` in sight;
/// 2. **partition + sweep** — a stable counting sort groups block-local
///    job indices by host, then each (lane, host) segment runs its own
///    prefix-max chain `start = max(arrival, free); free = start +
///    service`, [`SEG_CHAINS`] segments interleaved so the core
///    overlaps their dependency chains. `free_at` carries across
///    blocks, so each host sees exactly the arithmetic sequence the
///    direct kernel gave it — bit-identical starts and departures land
///    in per-job slots;
/// 3. **replay** — metrics are recorded in arrival order from the
///    per-job slots: the collector consumes bit-identical values in
///    bit-identical order to the direct kernel.
///
/// Lanes generalize exactly as in [`run_fused_static`]: lane `r` reads
/// `traces[r]`, draws from `rngs[r]`, owns the bank
/// `free_at[r*h..(r+1)*h]` and records into `collectors[r]`. The solo
/// kernel is the 1-lane case.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
fn run_segmented_core<S, F>(
    traces: &[&Trace],
    speeds: &S,
    mut select: F,
    rngs: &mut [Rng64],
    free_at: &mut [f64],
    collectors: &mut [Collector],
    scratch: SegScratch<'_>,
) where
    S: SpeedModel,
    F: FnMut(usize, f64, &mut Rng64) -> usize,
{
    let lanes = traces.len();
    let hosts = speeds.hosts();
    let n = traces[0].len();
    let SegScratch { chosen, offsets, idx, starts, departs } = scratch;
    let mut block_base = 0usize;
    while block_base < n {
        let b = (n - block_base).min(SEG_BLOCK);
        // Phase 1: batch host choices, counting segment sizes in the
        // same pass — the only phase that touches the RNG or kernel
        // cursors, advancing them in job order per lane.
        for r in 0..lanes {
            let sizes = &traces[r].sizes()[block_base..block_base + b];
            let rng = &mut rngs[r];
            let off = &mut offsets[r * (hosts + 1)..(r + 1) * (hosts + 1)];
            off.fill(0);
            for (j, slot) in chosen[r * b..(r + 1) * b].iter_mut().enumerate() {
                let target = select(r, sizes[j], rng);
                debug_assert!(target < hosts, "kernel selected host {target} of {hosts}");
                *slot = target as u32;
                off[target + 1] += 1;
            }
            // Phase 2a: stable counting sort of block-local job indices
            // by chosen host. The inclusive prefix sum makes `off[c]`
            // the start of segment c; the scatter advances it to the
            // segment's end, so afterwards segment c is
            // `idx[off[c−1]..off[c]]` (with `off[−1]` read as 0).
            let mut acc = 0u32;
            for o in off.iter_mut() {
                acc += *o;
                *o = acc;
            }
            let lane_chosen = &chosen[r * b..(r + 1) * b];
            let lane_idx = &mut idx[r * b..(r + 1) * b];
            for (j, &c) in lane_chosen.iter().enumerate() {
                let slot = off[c as usize];
                lane_idx[slot as usize] = j as u32;
                off[c as usize] = slot + 1;
            }
        }
        // Phase 2b: one prefix-max chain per (lane, host) segment,
        // SEG_CHAINS of them in flight. Segments list jobs in arrival
        // order (the sort is stable) and `free_at` carries each chain
        // across blocks, so every host replays the direct kernel's
        // exact arithmetic sequence — only the evaluation order across
        // *different* hosts changes, and no value flows between hosts.
        // The group marches in lockstep for the length of its shortest
        // live segment ([`march_chains`] — no per-step branches), then
        // compacts exhausted chains away and re-dispatches narrower.
        let idx_ro: &[u32] = idx;
        let total = lanes * hosts;
        let mut k = 0usize;
        while k < total {
            let g = (total - k).min(SEG_CHAINS);
            let mut chains = [EMPTY_CHAIN; SEG_CHAINS];
            for (t, chain) in chains.iter_mut().take(g).enumerate() {
                // dses-lint: allow(divide-budget) -- usize lane-index decomposition; integer, once per chain group per compaction round, not per job
                let r = (k + t) / hosts;
                // dses-lint: allow(divide-budget) -- usize lane-index decomposition; integer, once per chain group per compaction round, not per job
                let c = (k + t) % hosts;
                let off = &offsets[r * (hosts + 1)..(r + 1) * (hosts + 1)];
                let lo = if c == 0 { 0 } else { off[c - 1] as usize };
                let hi = off[c] as usize;
                *chain = Chain {
                    seg: &idx_ro[r * b + lo..r * b + hi],
                    // dses-lint: allow(no-alloc-transitive) -- Trace::arrivals borrows; the allocating name-match is WorkloadBuilder::arrivals
                    arrivals: traces[r].arrivals(),
                    sizes: traces[r].sizes(),
                    sd_base: r * b,
                    host: c,
                    slot: r * hosts + c,
                    free: free_at[r * hosts + c],
                };
            }
            let mut live = g;
            loop {
                let mut w = 0;
                for t in 0..live {
                    if !chains[t].seg.is_empty() {
                        chains.swap(w, t);
                        w += 1;
                    }
                }
                live = w;
                match live {
                    0 => break,
                    1 => march_chains::<1, S>(&mut chains, speeds, block_base, starts, departs),
                    2 => march_chains::<2, S>(&mut chains, speeds, block_base, starts, departs),
                    3 => march_chains::<3, S>(&mut chains, speeds, block_base, starts, departs),
                    _ => march_chains::<4, S>(&mut chains, speeds, block_base, starts, departs),
                }
            }
            for chain in chains.iter().take(g) {
                free_at[chain.slot] = chain.free;
            }
            k += g;
        }
        // Phase 3: metrics replay from the per-job slots, lane-outer so
        // every SoA view hoists. Each collector is per-lane state, so
        // feeding it this block's records in arrival order reproduces
        // the direct kernel's accumulator updates bit for bit. The
        // whole block goes over as contiguous SoA lanes — on the
        // batched collector tier that path stages by `copy_from_slice`
        // instead of one `JobRecord` at a time.
        for (r, &trace) in traces.iter().enumerate() {
            let jobs = &trace.jobs()[block_base..block_base + b];
            let arrivals = &trace.arrivals()[block_base..block_base + b];
            let sizes = &trace.sizes()[block_base..block_base + b];
            let inv_sizes = &trace.inv_sizes()[block_base..block_base + b];
            let lane_starts = &starts[r * b..(r + 1) * b];
            let lane_departs = &departs[r * b..(r + 1) * b];
            let lane_chosen = &chosen[r * b..(r + 1) * b];
            collectors[r].record_block_with_inv(
                jobs,
                arrivals,
                sizes,
                inv_sizes,
                lane_starts,
                lane_departs,
                lane_chosen,
            );
        }
        block_base += b;
    }
}

/// Simulate `trace` on `hosts` identical FCFS hosts under `policy`.
///
/// `seed` drives any randomness inside the policy (e.g. Random's coin
/// flips); the engine itself is deterministic. Per-run buffers come from
/// this thread's reusable [`SimWorkspace`]; use
/// [`simulate_dispatch_into`] to manage the workspace (and the result's
/// buffers) explicitly.
///
/// ```
/// use dses_sim::{simulate_dispatch, Dispatcher, MetricsConfig, SystemState};
/// use dses_workload::{Job, Trace};
/// use dses_dist::Rng64;
///
/// struct Lwl;
/// impl Dispatcher for Lwl {
///     fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
///         s.least_work()
///     }
/// }
///
/// let trace = Trace::new(vec![
///     Job::new(0, 0.0, 5.0),
///     Job::new(1, 1.0, 1.0),
/// ]);
/// let result = simulate_dispatch(&trace, 2, &mut Lwl, 0, MetricsConfig::default());
/// assert_eq!(result.measured, 2);
/// // the second job found the idle host: no waiting at all
/// assert!((result.slowdown.mean - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn simulate_dispatch<P: Dispatcher + ?Sized>(
    trace: &Trace,
    hosts: usize,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
) -> SimResult {
    with_thread_workspace(|ws| {
        let mut out = SimResult::empty();
        run_specialized(
            trace,
            &UnitSpeeds(hosts),
            policy,
            seed,
            cfg,
            SegmentedMode::Auto,
            ws,
            &mut out,
        );
        out
    })
}

/// [`simulate_dispatch`] writing through caller-owned buffers: all
/// per-run state comes from `ws`, the result lands in `out` (every field
/// overwritten). After one warm-up run of the same shape, a call
/// performs **zero heap allocations** — the loop body of an
/// allocation-free sweep.
// dses-lint: deny(alloc)
pub fn simulate_dispatch_into<P: Dispatcher + ?Sized>(
    trace: &Trace,
    hosts: usize,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
    ws: &mut SimWorkspace,
    out: &mut SimResult,
) {
    run_specialized(
        trace,
        &UnitSpeeds(hosts),
        policy,
        seed,
        cfg,
        SegmentedMode::Auto,
        ws,
        out,
    );
}

/// [`simulate_dispatch`] with the segmented static kernel pinned on
/// ([`SegmentedMode::Force`]): closed-form static policies (Random,
/// Round-Robin, SITA-*) take the two-phase [`run_segmented_core`] path
/// regardless of trace size; every other policy falls back to the same
/// loops [`simulate_dispatch`] uses. Results are **bit-identical** to
/// [`simulate_dispatch`] in every case — `tests/segmented.rs` gates
/// this record for record — so the entry point exists for that gate and
/// for benchmarking, not because it computes anything different.
#[must_use]
pub fn simulate_dispatch_segmented<P: Dispatcher + ?Sized>(
    trace: &Trace,
    hosts: usize,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
) -> SimResult {
    with_thread_workspace(|ws| {
        let mut out = SimResult::empty();
        simulate_dispatch_segmented_into(trace, hosts, policy, seed, cfg, ws, &mut out);
        out
    })
}

/// [`simulate_dispatch_segmented`] through caller-owned buffers; see
/// [`simulate_dispatch_into`].
// dses-lint: deny(alloc)
pub fn simulate_dispatch_segmented_into<P: Dispatcher + ?Sized>(
    trace: &Trace,
    hosts: usize,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
    ws: &mut SimWorkspace,
    out: &mut SimResult,
) {
    run_specialized(
        trace,
        &UnitSpeeds(hosts),
        policy,
        seed,
        cfg,
        SegmentedMode::Force,
        ws,
        out,
    );
}

/// [`simulate_dispatch_into`] with the segmented kernel pinned **off**
/// ([`SegmentedMode::Never`]): the direct single-pass kernels whatever
/// the trace size. This is the honest baseline `perf_report` measures
/// the segmented path against — the plain entry points would silently
/// re-enable segmentation on exactly the sizes worth benchmarking.
// dses-lint: deny(alloc)
pub fn simulate_dispatch_unsegmented_into<P: Dispatcher + ?Sized>(
    trace: &Trace,
    hosts: usize,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
    ws: &mut SimWorkspace,
    out: &mut SimResult,
) {
    run_specialized(
        trace,
        &UnitSpeeds(hosts),
        policy,
        seed,
        cfg,
        SegmentedMode::Never,
        ws,
        out,
    );
}

/// Simulate `trace` on **heterogeneous** FCFS hosts: `speeds[i]` is host
/// `i`'s service rate relative to the reference (a job of size `x` runs
/// for `x / speeds[i]` there). Slowdown remains `response / size` — size
/// is measured in reference-host seconds, so a job served faster than
/// the reference can record a slowdown below 1.
///
/// An extension beyond the paper, whose architectural model fixes
/// identical hosts (§1.1); the `ablation_hetero` exhibit explores how
/// SITA's cutoffs interact with speed asymmetry.
#[must_use]
pub fn simulate_dispatch_speeds<P: Dispatcher + ?Sized>(
    trace: &Trace,
    speeds: &[f64],
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
) -> SimResult {
    with_thread_workspace(|ws| {
        let mut out = SimResult::empty();
        simulate_dispatch_speeds_into(trace, speeds, policy, seed, cfg, ws, &mut out);
        out
    })
}

/// [`simulate_dispatch_speeds`] through caller-owned buffers; see
/// [`simulate_dispatch_into`].
// dses-lint: deny(alloc)
pub fn simulate_dispatch_speeds_into<P: Dispatcher + ?Sized>(
    trace: &Trace,
    speeds: &[f64],
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
    ws: &mut SimWorkspace,
    out: &mut SimResult,
) {
    assert!(
        speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
        "host speeds must be positive and finite"
    );
    run_specialized(
        trace,
        &PerHostSpeeds(speeds),
        policy,
        seed,
        cfg,
        SegmentedMode::Auto,
        ws,
        out,
    );
}

/// Dispatch to the hot loop matching the policy's declared state needs.
///
/// Every loop performs the same sequence of observable operations — one
/// `policy.dispatch` per job on the shared RNG stream, then the Lindley
/// update `start = max(now, free_at)`, `free_at = start + service` —
/// so the choice of loop never changes a schedule, only how much host
/// bookkeeping is maintained between dispatches.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
#[allow(clippy::too_many_arguments)]
fn run_specialized<P: Dispatcher + ?Sized, S: SpeedModel>(
    trace: &Trace,
    speeds: &S,
    policy: &mut P,
    seed: u64,
    cfg: MetricsConfig,
    mode: SegmentedMode,
    ws: &mut SimWorkspace,
    out: &mut SimResult,
) {
    let hosts = speeds.hosts();
    assert!(hosts > 0, "need at least one host");
    policy.reset();
    let needs = policy.state_needs();
    let mut rng = Rng64::seed_from(seed).stream(0xD15);
    ws.reset_fast(hosts, trace.backlog_hint(hosts), needs);
    ws.collector.reset(hosts, cfg, trace.len());

    // Inline a declared closed-form kernel: same decisions, same RNG
    // stream, no per-job virtual call. The SITA cutoffs are copied into
    // workspace scratch so the borrow on the policy ends here.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Selected {
        Random,
        RoundRobin,
        Sita,
        WorkLeft,
        Generic,
    }
    let selected = match (policy.dispatch_kernel(), needs) {
        (DispatchKernel::UniformRandom, n) if n == StateNeeds::NOTHING => Selected::Random,
        (DispatchKernel::RoundRobin, n) if n == StateNeeds::NOTHING => Selected::RoundRobin,
        (DispatchKernel::SizeInterval(cuts), n)
            if n == StateNeeds::NOTHING && cuts.len() < hosts =>
        {
            ws.kernel_cutoffs.clear();
            ws.kernel_cutoffs.extend_from_slice(cuts);
            Selected::Sita
        }
        (DispatchKernel::LeastWorkLeft, n) if n == StateNeeds::WORK_LEFT => Selected::WorkLeft,
        _ => Selected::Generic,
    };

    // Segmented vs. direct for the closed-form static kernels: a pure
    // throughput choice (both paths are bit-identical), so Auto takes
    // the split only where it pays and the pinned modes serve the gates
    // and the benchmark baselines.
    let seg_run = matches!(
        selected,
        Selected::Random | Selected::RoundRobin | Selected::Sita
    ) && match mode {
        SegmentedMode::Force => true,
        SegmentedMode::Never => false,
        SegmentedMode::Auto => {
            segmented_pays(trace.len(), 1, hosts, matches!(selected, Selected::Sita))
        }
    };
    if seg_run {
        ws.reset_segmented(1, hosts, SEG_BLOCK.min(trace.len().max(1)));
    }

    let jobs = trace.jobs();
    let arrivals = trace.arrivals();
    let sizes = trace.sizes();
    let inv_sizes = trace.inv_sizes();
    let SimWorkspace {
        free_at,
        views,
        fifos,
        expiry,
        heaps,
        collector,
        kernel_cutoffs,
        chosen,
        seg_offsets,
        seg_idx,
        seg_starts,
        seg_departs,
        ..
    } = ws;

    match selected {
        Selected::Random => {
            if seg_run {
                // dses-lint: allow(divide-budget) -- mode arms are mutually exclusive per run; each path performs at most one service divide per job
                run_segmented_core(
                    &[trace],
                    speeds,
                    |_, _, rng: &mut Rng64| rng.below(hosts as u64) as usize,
                    std::slice::from_mut(&mut rng),
                    free_at,
                    std::slice::from_mut(collector),
                    SegScratch {
                        chosen: chosen.as_mut_slice(),
                        offsets: seg_offsets.as_mut_slice(),
                        idx: seg_idx.as_mut_slice(),
                        starts: seg_starts.as_mut_slice(),
                        departs: seg_departs.as_mut_slice(),
                    },
                );
            } else {
                // dses-lint: allow(divide-budget) -- mode arms are mutually exclusive per run; each path performs at most one service divide per job
                run_static_kernel(
                    trace,
                    speeds,
                    |_, rng| rng.below(hosts as u64) as usize,
                    &mut rng,
                    free_at,
                    collector,
                );
            }
            collector.finish_into(out);
            return;
        }
        Selected::RoundRobin => {
            // engine-owned cursor: `next % hosts` under the invariant
            // `next < hosts`, exactly the policy's arithmetic
            let mut next = 0usize;
            if seg_run {
                run_segmented_core(
                    &[trace],
                    speeds,
                    |_, _, _: &mut Rng64| {
                        let t = next;
                        next = if t + 1 == hosts { 0 } else { t + 1 };
                        t
                    },
                    std::slice::from_mut(&mut rng),
                    free_at,
                    std::slice::from_mut(collector),
                    SegScratch {
                        chosen: chosen.as_mut_slice(),
                        offsets: seg_offsets.as_mut_slice(),
                        idx: seg_idx.as_mut_slice(),
                        starts: seg_starts.as_mut_slice(),
                        departs: seg_departs.as_mut_slice(),
                    },
                );
            } else {
                run_static_kernel(
                    trace,
                    speeds,
                    |_, _| {
                        let t = next;
                        next = if t + 1 == hosts { 0 } else { t + 1 };
                        t
                    },
                    &mut rng,
                    free_at,
                    collector,
                );
            }
            collector.finish_into(out);
            return;
        }
        Selected::Sita => {
            // `sita_pick` ≡ `partition_point(|c| size > c)` on strictly
            // increasing cutoffs ({c : size > c} is a prefix)
            let cuts = kernel_cutoffs.as_slice();
            if seg_run {
                run_segmented_core(
                    &[trace],
                    speeds,
                    |_, size, _: &mut Rng64| sita_pick(cuts, size),
                    std::slice::from_mut(&mut rng),
                    free_at,
                    std::slice::from_mut(collector),
                    SegScratch {
                        chosen: chosen.as_mut_slice(),
                        offsets: seg_offsets.as_mut_slice(),
                        idx: seg_idx.as_mut_slice(),
                        starts: seg_starts.as_mut_slice(),
                        departs: seg_departs.as_mut_slice(),
                    },
                );
            } else {
                run_static_kernel(
                    trace,
                    speeds,
                    |size, _| sita_pick(cuts, size),
                    &mut rng,
                    free_at,
                    collector,
                );
            }
            collector.finish_into(out);
            return;
        }
        Selected::WorkLeft => {
            // dses-lint: allow(divide-budget) -- mode arms are mutually exclusive per run; each path performs at most one service divide per job
            run_work_left_kernel(trace, speeds, free_at, collector);
            collector.finish_into(out);
            return;
        }
        Selected::Generic => {}
    }

    if needs.needs_queue_len() && needs.needs_work_left() {
        // Full loop: per-host completion heaps maintain queue lengths
        // alongside the Lindley scalars. Also the reference loop the
        // specialized ones are validated against.
        for i in 0..jobs.len() {
            let now = arrivals[i];
            for h in 0..hosts {
                let heap = &mut heaps[h];
                while let Some(&Reverse(OrdF64(c))) = heap.peek() {
                    if c <= now {
                        heap.pop();
                    } else {
                        break;
                    }
                }
                views[h] = HostView {
                    queue_len: heap.len(),
                    work_left: (free_at[h] - now).max(0.0),
                };
            }
            let state = SystemState { now, hosts: views.as_slice() };
            let target = policy.dispatch(&jobs[i], &state, &mut rng);
            assert!(
                target < hosts,
                "policy {} returned host {target} of {hosts}",
                // dses-lint: allow(no-alloc-transitive) -- name() formats only on the assert failure path
                policy.name()
            );
            let start = now.max(free_at[target]);
            let completion = start + speeds.service(target, sizes[i]);
            free_at[target] = completion;
            heaps[target].push(Reverse(OrdF64(completion)));
            collector.record_with_inv(
                JobRecord {
                    id: jobs[i].id,
                    arrival: now,
                    size: sizes[i],
                    start,
                    completion,
                    host: target,
                },
                inv_sizes[i],
            );
        }
    } else if needs.needs_queue_len() {
        // Queue-length loop: per-host heaps replaced by FIFO deques. An
        // FCFS run-to-completion host completes jobs in assignment order
        // — each new completion is `max(now, free_at) + service ≥
        // free_at`, the previous one — so the in-system completions of
        // one host form a monotone non-decreasing FIFO: expire off the
        // front, push on the back.
        //
        // Queue lengths update incrementally (+1 on dispatch, −1 on
        // expiry), and a tournament heap over the deque *fronts* — at
        // most one entry per non-empty host — turns the per-arrival
        // expiry check into an O(1) peek instead of an O(hosts) scan.
        // Expiry order across hosts cannot affect results: every entry
        // with `completion ≤ now` is drained before the policy looks,
        // and the later entries keep their exact counts, so queue
        // lengths are bit-identical to the full loop's. `work_left`
        // stays 0 — the policy declared it never reads it.
        for i in 0..jobs.len() {
            let now = arrivals[i];
            while let Some(&Reverse((OrdF64(next), h))) = expiry.peek() {
                if next > now {
                    break;
                }
                expiry.pop();
                let fifo = &mut fifos[h];
                fifo.pop_front();
                views[h].queue_len -= 1;
                while fifo.front().is_some_and(|&c| c <= now) {
                    fifo.pop_front();
                    views[h].queue_len -= 1;
                }
                if let Some(&front) = fifo.front() {
                    expiry.push(Reverse((OrdF64(front), h)));
                }
            }
            let state = SystemState { now, hosts: views.as_slice() };
            let target = policy.dispatch(&jobs[i], &state, &mut rng);
            assert!(
                target < hosts,
                "policy {} returned host {target} of {hosts}",
                policy.name()
            );
            let start = now.max(free_at[target]);
            let completion = start + speeds.service(target, sizes[i]);
            free_at[target] = completion;
            let fifo = &mut fifos[target];
            if fifo.is_empty() {
                expiry.push(Reverse((OrdF64(completion), target)));
            }
            fifo.push_back(completion);
            views[target].queue_len += 1;
            collector.record_with_inv(
                JobRecord {
                    id: jobs[i].id,
                    arrival: now,
                    size: sizes[i],
                    start,
                    completion,
                    host: target,
                },
                inv_sizes[i],
            );
        }
    } else if needs.needs_work_left() {
        // Work-left loop: the Lindley scalar is the whole host state.
        // `queue_len` stays 0 — the policy declared it never reads it.
        for i in 0..jobs.len() {
            let now = arrivals[i];
            for (v, &f) in views.iter_mut().zip(free_at.iter()) {
                v.work_left = (f - now).max(0.0);
            }
            let state = SystemState { now, hosts: views.as_slice() };
            let target = policy.dispatch(&jobs[i], &state, &mut rng);
            assert!(
                target < hosts,
                "policy {} returned host {target} of {hosts}",
                policy.name()
            );
            let start = now.max(free_at[target]);
            let completion = start + speeds.service(target, sizes[i]);
            free_at[target] = completion;
            collector.record_with_inv(
                JobRecord {
                    id: jobs[i].id,
                    arrival: now,
                    size: sizes[i],
                    start,
                    completion,
                    host: target,
                },
                inv_sizes[i],
            );
        }
    } else {
        // Static loop: the policy reads no host state at all, so the
        // views are frozen zeros (correct length, never refreshed).
        for i in 0..jobs.len() {
            let now = arrivals[i];
            let state = SystemState { now, hosts: views.as_slice() };
            let target = policy.dispatch(&jobs[i], &state, &mut rng);
            assert!(
                target < hosts,
                "policy {} returned host {target} of {hosts}",
                policy.name()
            );
            let start = now.max(free_at[target]);
            let completion = start + speeds.service(target, sizes[i]);
            free_at[target] = completion;
            collector.record_with_inv(
                JobRecord {
                    id: jobs[i].id,
                    arrival: now,
                    size: sizes[i],
                    start,
                    completion,
                    host: target,
                },
                inv_sizes[i],
            );
        }
    }
    collector.finish_into(out);
}

/// The inlined static-policy loop: `select` is the policy's closed-form
/// decision rule (capturing any engine-owned cursor or cutoff state),
/// and everything else is the bare Lindley recursion. With the virtual
/// call gone the loop body is straight-line code the compiler can
/// software-pipeline across iterations.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
// dses-lint: mirrors(lindley)
// dses-lint: hoist(service)
// dses-lint: untraced(record_with_inv)
fn run_static_kernel<S: SpeedModel, F: FnMut(f64, &mut Rng64) -> usize>(
    trace: &Trace,
    speeds: &S,
    mut select: F,
    rng: &mut Rng64,
    free_at: &mut [f64],
    collector: &mut Collector,
) {
    let jobs = trace.jobs();
    let arrivals = trace.arrivals();
    let sizes = trace.sizes();
    let inv_sizes = trace.inv_sizes();
    for i in 0..jobs.len() {
        let now = arrivals[i];
        let size = sizes[i];
        let target = select(size, rng);
        debug_assert!(
            target < free_at.len(),
            "kernel selected host {target} of {}",
            free_at.len()
        );
        let start = now.max(free_at[target]);
        let completion = start + speeds.service(target, size);
        free_at[target] = completion;
        collector.record_with_inv(
            JobRecord {
                id: jobs[i].id,
                arrival: now,
                size,
                start,
                completion,
                host: target,
            },
            inv_sizes[i],
        );
    }
}

/// The inlined least-work-left loop: [`argmin_work_left`] directly over
/// the Lindley scalars — no view refresh, no virtual call.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
// dses-lint: mirrors(lindley-work-left)
// dses-lint: hoist(service)
// dses-lint: untraced(record_with_inv)
fn run_work_left_kernel<S: SpeedModel>(
    trace: &Trace,
    speeds: &S,
    free_at: &mut [f64],
    collector: &mut Collector,
) {
    let jobs = trace.jobs();
    let arrivals = trace.arrivals();
    let sizes = trace.sizes();
    let inv_sizes = trace.inv_sizes();
    for i in 0..jobs.len() {
        let now = arrivals[i];
        let target = argmin_work_left(free_at, now);
        let start = now.max(free_at[target]);
        let completion = start + speeds.service(target, sizes[i]);
        free_at[target] = completion;
        collector.record_with_inv(
            JobRecord {
                id: jobs[i].id,
                arrival: now,
                size: sizes[i],
                start,
                completion,
                host: target,
            },
            inv_sizes[i],
        );
    }
}

/// The fused static loop: `lanes` independent replications advance in
/// lockstep by job index. Lane `r` reads `traces[r]`, draws from
/// `rngs[r]`, updates its own host bank `free_at[r*h..(r+1)*h]`, and
/// records into `collectors[r]` — per-lane arithmetic is byte-for-byte
/// the solo kernel's, interleaved only at the instruction level, so the
/// CPU overlaps the lanes' dependent accumulator chains.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
// dses-lint: mirrors(lindley)
// dses-lint: hoist(service)
// dses-lint: untraced(record_with_inv)
fn run_fused_static<S, F>(
    traces: &[&Trace],
    speeds: &S,
    mut select: F,
    rngs: &mut [Rng64],
    free_at: &mut [f64],
    collectors: &mut [Collector],
) where
    S: SpeedModel,
    F: FnMut(usize, f64, &mut Rng64) -> usize,
{
    let hosts = speeds.hosts();
    let n = traces[0].len();
    for i in 0..n {
        for (r, trace) in traces.iter().enumerate() {
            // dses-lint: allow(no-alloc-transitive) -- Trace::arrivals borrows; the allocating name-match is WorkloadBuilder::arrivals
            let now = trace.arrivals()[i];
            let size = trace.sizes()[i];
            let target = select(r, size, &mut rngs[r]);
            let bank = &mut free_at[r * hosts..(r + 1) * hosts];
            let start = now.max(bank[target]);
            let completion = start + speeds.service(target, size);
            bank[target] = completion;
            collectors[r].record_with_inv(
                JobRecord {
                    id: trace.jobs()[i].id,
                    arrival: now,
                    size,
                    start,
                    completion,
                    host: target,
                },
                trace.inv_sizes()[i],
            );
        }
    }
}

/// [`run_fused_static`]'s least-work-left sibling: the per-lane argmin
/// scans only that lane's bank.
// dses-lint: divides(1)
// dses-lint: deny(alloc)
// dses-lint: mirrors(lindley-work-left)
// dses-lint: hoist(service)
// dses-lint: untraced(record_with_inv)
fn run_fused_work_left<S: SpeedModel>(
    traces: &[&Trace],
    speeds: &S,
    free_at: &mut [f64],
    collectors: &mut [Collector],
) {
    let hosts = speeds.hosts();
    let n = traces[0].len();
    for i in 0..n {
        for (r, trace) in traces.iter().enumerate() {
            // dses-lint: allow(no-alloc-transitive) -- Trace::arrivals borrows; the allocating name-match is WorkloadBuilder::arrivals
            let now = trace.arrivals()[i];
            let bank = &mut free_at[r * hosts..(r + 1) * hosts];
            let target = argmin_work_left(bank, now);
            let start = now.max(bank[target]);
            let completion = start + speeds.service(target, trace.sizes()[i]);
            bank[target] = completion;
            collectors[r].record_with_inv(
                JobRecord {
                    id: trace.jobs()[i].id,
                    arrival: now,
                    size: trace.sizes()[i],
                    start,
                    completion,
                    host: target,
                },
                trace.inv_sizes()[i],
            );
        }
    }
}

/// Run `traces.len()` replications — lane `r` simulates `traces[r]`
/// under `policies[r]` with `seeds[r]` and `cfgs[r]` on `hosts`
/// unit-speed hosts — reusing this thread's workspace. See
/// [`simulate_dispatch_fused_into`].
#[must_use]
pub fn simulate_dispatch_fused<P: Dispatcher>(
    traces: &[&Trace],
    hosts: usize,
    policies: &mut [P],
    seeds: &[u64],
    cfgs: &[MetricsConfig],
) -> Vec<SimResult> {
    with_thread_workspace(|ws| {
        // dses-lint: allow(loop-alloc) -- with_thread_workspace invokes the closure exactly once; this Vec is the per-call result buffer, not per-job
        let mut out = Vec::new();
        simulate_dispatch_fused_into(traces, hosts, policies, seeds, cfgs, ws, &mut out);
        out
    })
}

/// Replication fusion: run `traces.len()` independent replications in
/// one pass when every lane declares the same [`DispatchKernel`], and
/// lane-by-lane through [`simulate_dispatch_into`]'s loops otherwise.
///
/// Either way, lane `r`'s schedule and metrics are **bit-identical** to
/// a solo `simulate_dispatch_into(traces[r], hosts, &mut policies[r],
/// seeds[r], cfgs[r], …)` call: the fused pass advances all lanes in
/// lockstep by job index, but each lane owns its host bank
/// (`free_at[r*h..(r+1)*h]`), RNG stream, kernel cursor, and collector,
/// so no arithmetic crosses lanes — only the instruction stream is
/// shared. Fusion is a throughput device: a solo run's critical path is
/// one chain of dependent accumulator updates per job, and interleaving
/// R independent replications gives the out-of-order core R chains to
/// overlap.
///
/// `out` is resized to one [`SimResult`] per lane; after a warm-up call
/// of the same shape the steady state performs zero heap allocations.
///
/// # Panics
/// Panics if the slice lengths disagree, `hosts == 0`, or the traces
/// differ in length.
// dses-lint: deny(alloc)
pub fn simulate_dispatch_fused_into<P: Dispatcher>(
    traces: &[&Trace],
    hosts: usize,
    policies: &mut [P],
    seeds: &[u64],
    cfgs: &[MetricsConfig],
    ws: &mut SimWorkspace,
    out: &mut Vec<SimResult>,
) {
    simulate_dispatch_fused_mode_into(
        traces,
        hosts,
        policies,
        seeds,
        cfgs,
        SegmentedMode::Auto,
        ws,
        out,
    );
}

/// [`simulate_dispatch_fused_into`] with the static-kernel path pinned
/// by `mode`: fused static lanes share the segmented phase-1 buffers
/// and run per-lane segments through [`run_segmented_core`], or stay on
/// the direct lockstep loop under [`SegmentedMode::Never`]. Lane
/// results are bit-identical either way (and to solo runs); the
/// explicit modes exist for the gates in `tests/segmented.rs` and the
/// baselines in `perf_report`.
///
/// # Panics
/// As [`simulate_dispatch_fused_into`].
// dses-lint: deny(alloc)
#[allow(clippy::too_many_arguments)]
pub fn simulate_dispatch_fused_mode_into<P: Dispatcher>(
    traces: &[&Trace],
    hosts: usize,
    policies: &mut [P],
    seeds: &[u64],
    cfgs: &[MetricsConfig],
    mode: SegmentedMode,
    ws: &mut SimWorkspace,
    out: &mut Vec<SimResult>,
) {
    let lanes = traces.len();
    assert_eq!(policies.len(), lanes, "one policy per lane");
    assert_eq!(seeds.len(), lanes, "one seed per lane");
    assert_eq!(cfgs.len(), lanes, "one metrics config per lane");
    assert!(hosts > 0, "need at least one host");
    out.truncate(lanes);
    while out.len() < lanes {
        // dses-lint: allow(no-alloc-transitive) -- grow-once: result slots persist across fused calls
        out.push(SimResult::empty());
    }
    if lanes == 0 {
        return;
    }
    let n = traces[0].len();
    assert!(
        traces.iter().all(|t| t.len() == n),
        "fused lanes need equal-length traces"
    );

    // Classify the lanes' common kernel signature (kind + cutoff
    // stride). Heterogeneous or opaque lanes run sequentially through
    // the same specialized engine — bit-identical, just unfused.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum FusedKind {
        Random,
        RoundRobin,
        Sita,
        WorkLeft,
    }
    fn classify<P: Dispatcher>(p: &P, hosts: usize) -> Option<(FusedKind, usize)> {
        match (p.dispatch_kernel(), p.state_needs()) {
            (DispatchKernel::UniformRandom, n) if n == StateNeeds::NOTHING => {
                Some((FusedKind::Random, 0))
            }
            (DispatchKernel::RoundRobin, n) if n == StateNeeds::NOTHING => {
                Some((FusedKind::RoundRobin, 0))
            }
            (DispatchKernel::SizeInterval(c), n) if n == StateNeeds::NOTHING && c.len() < hosts => {
                Some((FusedKind::Sita, c.len()))
            }
            (DispatchKernel::LeastWorkLeft, n) if n == StateNeeds::WORK_LEFT => {
                Some((FusedKind::WorkLeft, 0))
            }
            _ => None,
        }
    }
    let first = classify(&policies[0], hosts);
    let homogeneous =
        first.is_some_and(|sig| policies.iter().all(|p| classify(p, hosts) == Some(sig)));
    let Some((kind, stride)) = first.filter(|_| homogeneous) else {
        for r in 0..lanes {
            run_specialized(
                traces[r],
                &UnitSpeeds(hosts),
                &mut policies[r],
                seeds[r],
                cfgs[r],
                mode,
                ws,
                &mut out[r],
            );
        }
        return;
    };

    // Fused static lanes compose with the segmented split — and are
    // where Auto actually takes it (the lockstep fused loop is the one
    // direct kernel the split beats; see segmented_pays) — with the
    // lanes sharing one flat set of phase buffers.
    let seg_run = matches!(
        kind,
        FusedKind::Random | FusedKind::RoundRobin | FusedKind::Sita
    ) && match mode {
        SegmentedMode::Force => true,
        SegmentedMode::Never => false,
        SegmentedMode::Auto => {
            segmented_pays(n, lanes, hosts, matches!(kind, FusedKind::Sita))
        }
    };
    if seg_run {
        ws.reset_segmented(lanes, hosts, SEG_BLOCK.min(n.max(1)));
    }

    // Per-lane engine state: reset() for parity with the solo path, then
    // engine-owned banks, RNG streams, cursors, and cutoff copies.
    // dses-lint: allow(no-alloc-transitive) -- grow-once: lane collectors persist in the workspace across fused calls
    ws.reset_fused(lanes, hosts);
    for r in 0..lanes {
        policies[r].reset();
        ws.lane_rngs.push(Rng64::seed_from(seeds[r]).stream(0xD15));
        ws.lane_collectors[r].reset(hosts, cfgs[r], n);
        if kind == FusedKind::Sita {
            let DispatchKernel::SizeInterval(cuts) = policies[r].dispatch_kernel() else {
                unreachable!("lane {r} classified as SITA above")
            };
            ws.lane_cutoffs.extend_from_slice(cuts);
        }
    }

    let SimWorkspace {
        free_at,
        lane_collectors,
        lane_rngs,
        lane_counters,
        lane_cutoffs,
        chosen,
        seg_offsets,
        seg_idx,
        seg_starts,
        seg_departs,
        ..
    } = ws;
    let collectors = &mut lane_collectors[..lanes];
    let speeds = UnitSpeeds(hosts);
    match kind {
        FusedKind::Random => {
            let select = |_, _, rng: &mut Rng64| rng.below(hosts as u64) as usize;
            if seg_run {
                run_segmented_core(
                    traces,
                    &speeds,
                    select,
                    lane_rngs,
                    free_at,
                    collectors,
                    SegScratch {
                        chosen: chosen.as_mut_slice(),
                        offsets: seg_offsets.as_mut_slice(),
                        idx: seg_idx.as_mut_slice(),
                        starts: seg_starts.as_mut_slice(),
                        departs: seg_departs.as_mut_slice(),
                    },
                );
            } else {
                run_fused_static(traces, &speeds, select, lane_rngs, free_at, collectors);
            }
        }
        FusedKind::RoundRobin => {
            let select = |r: usize, _, _: &mut Rng64| {
                // `next % hosts` under the invariant `next < hosts`
                let t = lane_counters[r];
                lane_counters[r] = if t + 1 == hosts { 0 } else { t + 1 };
                t
            };
            if seg_run {
                run_segmented_core(
                    traces,
                    &speeds,
                    select,
                    lane_rngs,
                    free_at,
                    collectors,
                    SegScratch {
                        chosen: chosen.as_mut_slice(),
                        offsets: seg_offsets.as_mut_slice(),
                        idx: seg_idx.as_mut_slice(),
                        starts: seg_starts.as_mut_slice(),
                        departs: seg_departs.as_mut_slice(),
                    },
                );
            } else {
                run_fused_static(traces, &speeds, select, lane_rngs, free_at, collectors);
            }
        }
        FusedKind::Sita => {
            let select = |r: usize, size, _: &mut Rng64| {
                // `sita_pick` ≡ partition_point, per lane
                sita_pick(&lane_cutoffs[r * stride..(r + 1) * stride], size)
            };
            if seg_run {
                run_segmented_core(
                    traces,
                    &speeds,
                    select,
                    lane_rngs,
                    free_at,
                    collectors,
                    SegScratch {
                        chosen: chosen.as_mut_slice(),
                        offsets: seg_offsets.as_mut_slice(),
                        idx: seg_idx.as_mut_slice(),
                        starts: seg_starts.as_mut_slice(),
                        departs: seg_departs.as_mut_slice(),
                    },
                );
            } else {
                run_fused_static(traces, &speeds, select, lane_rngs, free_at, collectors);
            }
        }
        FusedKind::WorkLeft => run_fused_work_left(traces, &speeds, free_at, collectors),
    }
    for (r, slot) in out.iter_mut().enumerate() {
        collectors[r].finish_into(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateNeeds;
    use dses_workload::Job;

    /// Send every job to host 0.
    struct ToZero;
    impl Dispatcher for ToZero {
        fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
            0
        }
        fn name(&self) -> String {
            "to-zero".into()
        }
        fn state_needs(&self) -> StateNeeds {
            StateNeeds::NOTHING
        }
    }

    /// Always pick the least-work host (mini LWL for engine tests).
    struct MiniLwl;
    impl Dispatcher for MiniLwl {
        fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
            s.least_work()
        }
        fn state_needs(&self) -> StateNeeds {
            StateNeeds::WORK_LEFT
        }
    }

    /// Pick the host with the fewest in-system jobs (mini Shortest-Queue
    /// exercising the FIFO-deque kernel).
    struct MiniSq;
    impl Dispatcher for MiniSq {
        fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
            s.hosts
                .iter()
                .enumerate()
                .min_by_key(|(_, v)| v.queue_len)
                .expect("at least one host")
                .0
        }
        fn state_needs(&self) -> StateNeeds {
            StateNeeds::QUEUE_LEN
        }
    }

    /// Forces the full (heap-maintaining) loop for any inner policy by
    /// claiming it reads everything — the pre-specialization engine.
    struct ForceFull<P>(P);
    impl<P: Dispatcher> Dispatcher for ForceFull<P> {
        fn dispatch(&mut self, job: &Job, s: &SystemState<'_>, rng: &mut Rng64) -> usize {
            self.0.dispatch(job, s, rng)
        }
        fn name(&self) -> String {
            self.0.name()
        }
        fn reset(&mut self) {
            self.0.reset();
        }
    }

    fn trace(jobs: &[(f64, f64)]) -> Trace {
        Trace::new(
            jobs.iter()
                .enumerate()
                .map(|(i, &(a, s))| Job::new(i as u64, a, s))
                .collect(),
        )
    }

    #[test]
    fn single_host_fcfs_hand_schedule() {
        // arrivals (0, 10), (1, 5), (12, 2):
        // job0: start 0, done 10; job1: start 10, done 15; job2: start 15, done 17
        let t = trace(&[(0.0, 10.0), (1.0, 5.0), (12.0, 2.0)]);
        let r = simulate_dispatch(&t, 1, &mut ToZero, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[0].completion, 10.0);
        assert_eq!(recs[1].start, 10.0);
        assert_eq!(recs[1].completion, 15.0);
        assert_eq!(recs[2].start, 15.0);
        assert_eq!(recs[2].completion, 17.0);
        // slowdowns: 1, 14/5, 5/2
        assert!((r.slowdown.mean - (1.0 + 2.8 + 2.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_host_serves_immediately() {
        let t = trace(&[(0.0, 5.0), (100.0, 1.0)]);
        let r = simulate_dispatch(&t, 1, &mut ToZero, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[1].start, 100.0);
        assert_eq!(recs[1].slowdown(), 1.0);
    }

    #[test]
    fn least_work_balances_two_hosts() {
        // job0 (size 10) → host 0; job1 at t=1 sees work (9, 0) → host 1
        let t = trace(&[(0.0, 10.0), (1.0, 2.0)]);
        let r = simulate_dispatch(&t, 2, &mut MiniLwl, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[0].host, 0);
        assert_eq!(recs[1].host, 1);
        assert_eq!(recs[1].start, 1.0);
    }

    #[test]
    fn queue_len_view_expires_completed_jobs() {
        // host 0 serves a size-1 job at t=0; at t=5 the queue must be empty
        struct AssertingPolicy {
            calls: usize,
        }
        impl Dispatcher for AssertingPolicy {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                if self.calls == 1 {
                    assert_eq!(s.hosts[0].queue_len, 0, "stale completion retained");
                    assert_eq!(s.hosts[0].work_left, 0.0);
                }
                self.calls += 1;
                0
            }
        }
        let t = trace(&[(0.0, 1.0), (5.0, 1.0)]);
        let _ = simulate_dispatch(&t, 1, &mut AssertingPolicy { calls: 0 }, 0, MetricsConfig::default());
    }

    #[test]
    fn fifo_kernel_expires_completed_jobs() {
        // same expiry semantics through the deque kernel
        struct AssertingSq {
            calls: usize,
        }
        impl Dispatcher for AssertingSq {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                if self.calls == 1 {
                    assert_eq!(s.hosts[0].queue_len, 1, "size-10 job still running");
                }
                if self.calls == 2 {
                    assert_eq!(s.hosts[0].queue_len, 0, "stale completion retained");
                }
                self.calls += 1;
                0
            }
            fn state_needs(&self) -> StateNeeds {
                StateNeeds::QUEUE_LEN
            }
        }
        let t = trace(&[(0.0, 10.0), (5.0, 1.0), (20.0, 1.0)]);
        let _ = simulate_dispatch(&t, 1, &mut AssertingSq { calls: 0 }, 0, MetricsConfig::default());
    }

    #[test]
    fn work_left_view_is_remaining_service() {
        struct Check;
        impl Dispatcher for Check {
            fn dispatch(&mut self, job: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                if job.id == 1 {
                    // size-10 job started at 0; at t = 4, 6 seconds remain
                    assert!((s.hosts[0].work_left - 6.0).abs() < 1e-12);
                }
                0
            }
        }
        let t = trace(&[(0.0, 10.0), (4.0, 1.0)]);
        let _ = simulate_dispatch(&t, 1, &mut Check, 0, MetricsConfig::default());
    }

    #[test]
    fn work_conservation() {
        let t = trace(&[(0.0, 3.0), (0.5, 4.0), (1.0, 5.0), (2.0, 1.0)]);
        let r = simulate_dispatch(&t, 2, &mut MiniLwl, 0, MetricsConfig::default());
        let total: f64 = r.per_host.iter().map(|h| h.work).sum();
        assert!((total - 13.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "returned host")]
    fn out_of_range_dispatch_is_caught() {
        struct Bad;
        impl Dispatcher for Bad {
            fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
                7
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let _ = simulate_dispatch(&t, 2, &mut Bad, 0, MetricsConfig::default());
    }

    #[test]
    fn specialized_loops_match_the_full_loop_bitwise() {
        // A bursty hand trace with ties and idle gaps; every loop must
        // produce the identical schedule to the heap-maintaining one.
        let t = trace(&[
            (0.0, 10.0),
            (0.0, 3.0),
            (1.0, 1.0),
            (1.0, 7.0),
            (4.0, 2.0),
            (30.0, 5.0),
            (30.5, 0.5),
        ]);
        let cfg = MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        };
        // static kernel (RNG-driven, so the stream position matters too)
        struct Flip;
        impl Dispatcher for Flip {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, rng: &mut Rng64) -> usize {
                rng.below(s.num_hosts() as u64) as usize
            }
            fn state_needs(&self) -> StateNeeds {
                StateNeeds::NOTHING
            }
        }
        let fast = simulate_dispatch(&t, 3, &mut Flip, 9, cfg);
        let full = simulate_dispatch(&t, 3, &mut ForceFull(Flip), 9, cfg);
        assert_eq!(fast.records.unwrap(), full.records.unwrap());
        // work-left kernel
        let fast = simulate_dispatch(&t, 3, &mut MiniLwl, 0, cfg);
        let full = simulate_dispatch(&t, 3, &mut ForceFull(MiniLwl), 0, cfg);
        assert_eq!(fast.records.unwrap(), full.records.unwrap());
        // queue-length (FIFO deque) kernel
        let fast = simulate_dispatch(&t, 3, &mut MiniSq, 0, cfg);
        let full = simulate_dispatch(&t, 3, &mut ForceFull(MiniSq), 0, cfg);
        assert_eq!(fast.records.unwrap(), full.records.unwrap());
        // heterogeneous speeds through the kernels
        let speeds = [1.0, 0.5, 2.0];
        let fast = simulate_dispatch_speeds(&t, &speeds, &mut MiniLwl, 0, cfg);
        let full = simulate_dispatch_speeds(&t, &speeds, &mut ForceFull(MiniLwl), 0, cfg);
        assert_eq!(fast.records.unwrap(), full.records.unwrap());
        let fast = simulate_dispatch_speeds(&t, &speeds, &mut MiniSq, 0, cfg);
        let full = simulate_dispatch_speeds(&t, &speeds, &mut ForceFull(MiniSq), 0, cfg);
        assert_eq!(fast.records.unwrap(), full.records.unwrap());
    }

    #[test]
    fn explicit_workspace_matches_thread_local_path() {
        let t = trace(&[(0.0, 4.0), (0.5, 1.0), (1.0, 2.0), (3.0, 6.0)]);
        let cfg = MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        };
        let implicit = simulate_dispatch(&t, 2, &mut MiniSq, 0, cfg);
        let mut ws = SimWorkspace::new();
        let mut out = SimResult::empty();
        simulate_dispatch_into(&t, 2, &mut MiniSq, 0, cfg, &mut ws, &mut out);
        assert_eq!(implicit.records.unwrap(), out.records.unwrap());
        assert_eq!(implicit.slowdown, out.slowdown);
    }

    #[test]
    fn static_loop_still_reports_host_count() {
        // NOTHING-policies may legitimately read `num_hosts()` (SITA's
        // debug bounds check does); the frozen views keep the length.
        struct CountCheck;
        impl Dispatcher for CountCheck {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                assert_eq!(s.num_hosts(), 4);
                3
            }
            fn state_needs(&self) -> StateNeeds {
                StateNeeds::NOTHING
            }
        }
        let t = trace(&[(0.0, 1.0), (1.0, 2.0)]);
        let r = simulate_dispatch(&t, 4, &mut CountCheck, 0, MetricsConfig::default());
        assert_eq!(r.per_host[3].jobs, 2);
    }

    #[test]
    #[should_panic(expected = "returned host")]
    fn out_of_range_dispatch_is_caught_in_static_loop() {
        struct Bad;
        impl Dispatcher for Bad {
            fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
                7
            }
            fn state_needs(&self) -> StateNeeds {
                StateNeeds::NOTHING
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let _ = simulate_dispatch(&t, 2, &mut Bad, 0, MetricsConfig::default());
    }

    #[test]
    fn deterministic_given_seed() {
        struct Coin;
        impl Dispatcher for Coin {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, rng: &mut Rng64) -> usize {
                rng.below(s.num_hosts() as u64) as usize
            }
        }
        let t = trace(&[(0.0, 1.0), (0.1, 2.0), (0.2, 3.0), (0.3, 4.0)]);
        let a = simulate_dispatch(&t, 2, &mut Coin, 5, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let b = simulate_dispatch(&t, 2, &mut Coin, 5, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        assert_eq!(a.records.unwrap(), b.records.unwrap());
    }

    /// Scalar reference for the chunked argmin: `min_by(total_cmp)` over
    /// the clamped backlog keeps the *first* minimum, which is the
    /// leftmost-tie-wins contract the dispatch policies rely on.
    fn argmin_ref(free_at: &[f64], now: f64) -> usize {
        free_at
            .iter()
            .enumerate()
            .map(|(i, &f)| (i, (f - now).max(0.0)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0
    }

    #[test]
    fn argmin_all_equal_picks_host_zero() {
        // every length from 1 to well past several full chunks, with the
        // tie both at a positive backlog and at the clamped-to-zero floor
        for n in 1..=4 * ARGMIN_LANES + 3 {
            let positive = vec![7.5; n];
            assert_eq!(argmin_work_left(&positive, 2.0), 0, "n = {n}, positive tie");
            // free_at entirely in the past: every backlog clamps to +0.0
            let idle = vec![1.0; n];
            assert_eq!(argmin_work_left(&idle, 5.0), 0, "n = {n}, clamped tie");
        }
    }

    #[test]
    fn argmin_ties_at_lane_boundaries() {
        // minimum duplicated exactly at the seams the chunked scan could
        // mishandle: last lane of chunk c vs first lane of chunk c+1
        let n = 3 * ARGMIN_LANES;
        for &(a, b) in &[(7, 8), (15, 16), (0, ARGMIN_LANES), (ARGMIN_LANES - 1, 2 * ARGMIN_LANES - 1)] {
            let mut free_at = vec![100.0; n];
            free_at[a] = 3.0;
            free_at[b] = 3.0;
            assert_eq!(argmin_work_left(&free_at, 1.0), a, "tie at ({a}, {b})");
            assert_eq!(argmin_ref(&free_at, 1.0), a, "reference disagrees at ({a}, {b})");
        }
    }

    #[test]
    fn argmin_ties_straddling_the_chunk_remainder() {
        // length 2·LANES + 3: two full chunks plus a scalar tail
        let n = 2 * ARGMIN_LANES + 3;
        // tie between a chunked index and a tail index: chunk wins
        let mut free_at = vec![50.0; n];
        free_at[ARGMIN_LANES + 2] = 4.0;
        free_at[n - 1] = 4.0;
        assert_eq!(argmin_work_left(&free_at, 0.0), ARGMIN_LANES + 2);
        // tie entirely inside the tail: earlier tail index wins
        let mut free_at = vec![50.0; n];
        free_at[n - 3] = 4.0;
        free_at[n - 2] = 4.0;
        assert_eq!(argmin_work_left(&free_at, 0.0), n - 3);
        // minimum only in the tail must still beat every chunked lane
        let mut free_at = vec![50.0; n];
        free_at[n - 1] = 4.0;
        assert_eq!(argmin_work_left(&free_at, 0.0), n - 1);
    }

    #[test]
    fn argmin_matches_scalar_reference_on_random_tie_heavy_inputs() {
        // Pseudo-random free_at drawn from a tiny value set so ties are
        // dense, swept across now values that clamp none/some/all of the
        // backlog to +0.0. Inputs are NaN-free by construction (the
        // engines only ever store finite arrival + service sums), so this
        // also pins total_cmp ≡ < on the kernel's actual domain.
        let mut rng = Rng64::seed_from(0xA57);
        let values = [0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 40.0];
        for n in 1..=5 * ARGMIN_LANES + 5 {
            for _ in 0..20 {
                let free_at: Vec<f64> = (0..n)
                    .map(|_| values[rng.below(values.len() as u64) as usize])
                    .collect();
                for &now in &[0.0, 1.0, 2.5, 100.0] {
                    assert_eq!(
                        argmin_work_left(&free_at, now),
                        argmin_ref(&free_at, now),
                        "n = {n}, now = {now}, free_at = {free_at:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sita_pick_matches_partition_point_on_tie_dense_and_boundary_inputs() {
        // widths on both sides of SITA_LINEAR_MAX, including the exact
        // threshold and deep binary-search depths
        for len in [1usize, 2, 15, 16, 17, 31, 64, 1023] {
            let cuts: Vec<f64> = (0..len).map(|i| (i + 1) as f64).collect();
            let mut probes = vec![0.25, 0.5, len as f64 + 0.5, f64::MAX];
            for &c in &cuts {
                // exact tie (must stay left), plus both straddles
                probes.extend_from_slice(&[c, c - 0.25, c + 0.25]);
            }
            for &size in &probes {
                assert_eq!(
                    sita_pick(&cuts, size),
                    cuts.partition_point(|&c| size > c),
                    "len = {len}, size = {size}"
                );
            }
        }
        // random tie-dense probes against a random strictly increasing
        // ladder, across both lookup paths
        let mut rng = Rng64::seed_from(0x517A);
        for len in [12usize, 100, 1023] {
            let mut cuts = Vec::with_capacity(len);
            let mut acc = 0.0f64;
            for _ in 0..len {
                acc += 0.5 + rng.below(8) as f64;
                cuts.push(acc);
            }
            for _ in 0..2_000 {
                // half the probes snap exactly onto a cutoff
                let size = if rng.below(2) == 0 {
                    cuts[rng.below(len as u64) as usize]
                } else {
                    acc * (rng.below(1_000) as f64) / 900.0
                };
                assert_eq!(
                    sita_pick(&cuts, size),
                    cuts.partition_point(|&c| size > c),
                    "len = {len}, size = {size}"
                );
            }
        }
    }

    #[test]
    fn fused_heterogeneous_lanes_fall_back_bit_identically() {
        // ToZero exposes no kernel, so a fused call over it must take the
        // sequential fallback and still match solo runs lane-for-lane.
        let t0 = trace(&[(0.0, 3.0), (1.0, 1.0), (1.5, 2.0)]);
        let t1 = trace(&[(0.0, 5.0), (0.5, 0.5), (2.0, 4.0)]);
        let cfg = MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        };
        let mut lanes: Vec<Box<dyn Dispatcher>> = vec![Box::new(ToZero), Box::new(MiniLwl)];
        let fused = simulate_dispatch_fused(&[&t0, &t1], 2, &mut lanes, &[3, 4], &[cfg, cfg]);
        let solo0 = simulate_dispatch(&t0, 2, &mut ToZero, 3, cfg);
        let solo1 = simulate_dispatch(&t1, 2, &mut MiniLwl, 4, cfg);
        assert_eq!(fused[0].records, solo0.records);
        assert_eq!(fused[0].slowdown, solo0.slowdown);
        assert_eq!(fused[1].records, solo1.records);
        assert_eq!(fused[1].slowdown, solo1.slowdown);
    }
}

#[cfg(test)]
mod speed_tests {
    use super::*;
    use crate::state::{Dispatcher, SystemState};
    use dses_workload::{Job, Trace};

    struct ToHost(usize);
    impl Dispatcher for ToHost {
        fn dispatch(&mut self, _: &Job, _: &SystemState<'_>, _: &mut Rng64) -> usize {
            self.0
        }
    }

    fn trace(jobs: &[(f64, f64)]) -> Trace {
        Trace::new(
            jobs.iter()
                .enumerate()
                .map(|(i, &(a, s))| Job::new(i as u64, a, s))
                .collect(),
        )
    }

    #[test]
    fn fast_host_halves_service_time() {
        let t = trace(&[(0.0, 10.0)]);
        let r = simulate_dispatch_speeds(&t, &[2.0], &mut ToHost(0), 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let rec = r.records.unwrap()[0];
        assert_eq!(rec.completion, 5.0);
        assert_eq!(rec.slowdown(), 0.5); // faster than the reference host
    }

    #[test]
    fn slow_host_queues_longer() {
        let t = trace(&[(0.0, 10.0), (1.0, 10.0)]);
        let r = simulate_dispatch_speeds(&t, &[0.5], &mut ToHost(0), 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        assert_eq!(recs[0].completion, 20.0);
        assert_eq!(recs[1].start, 20.0);
        assert_eq!(recs[1].completion, 40.0);
    }

    #[test]
    fn unit_speeds_match_the_homogeneous_engine() {
        let t = trace(&[(0.0, 3.0), (0.5, 4.0), (1.0, 5.0), (2.0, 1.0)]);
        struct MiniLwl;
        impl Dispatcher for MiniLwl {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                s.least_work()
            }
        }
        let cfg = MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        };
        let a = simulate_dispatch(&t, 2, &mut MiniLwl, 0, cfg);
        let b = simulate_dispatch_speeds(&t, &[1.0, 1.0], &mut MiniLwl, 0, cfg);
        assert_eq!(a.records.unwrap(), b.records.unwrap());
    }

    #[test]
    fn lwl_prefers_the_fast_host_under_load() {
        // both hosts busy; the fast host drains sooner, so LWL picks it
        struct MiniLwl;
        impl Dispatcher for MiniLwl {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, _: &mut Rng64) -> usize {
                s.least_work()
            }
        }
        let t = trace(&[(0.0, 10.0), (0.0, 10.0), (1.0, 1.0)]);
        let r = simulate_dispatch_speeds(&t, &[1.0, 4.0], &mut MiniLwl, 0, MetricsConfig {
            collect_records: true,
            ..MetricsConfig::default()
        });
        let recs = r.records.unwrap();
        // job 0 -> host 0 (tie, lowest index); job 1 -> host 1;
        // at t=1: host0 has 9s left, host1 has 10/4-1 = 1.5s left
        let j2 = recs.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(j2.host, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_speed() {
        let t = trace(&[(0.0, 1.0)]);
        let _ = simulate_dispatch_speeds(&t, &[0.0], &mut ToHost(0), 0, MetricsConfig::default());
    }
}
