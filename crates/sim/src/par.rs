//! Deterministic parallel execution of independent simulation runs.
//!
//! Every paper exhibit is a grid — loads × policies × seeds — of runs
//! that share no mutable state: each run is a pure function of its grid
//! index (the trace is regenerated or shared read-only, the policy RNG is
//! derived from a per-index seed via `dses_dist::derive_seed`). That
//! makes parallelism trivial to get right *and* trivial to get
//! deterministic:
//!
//! * workers pull indices from an atomic counter (dynamic load balancing
//!   — grid points vary wildly in cost near saturation), and
//! * each result is written to the slot of its **grid index**, never in
//!   completion order.
//!
//! Consequently [`par_map`] with any worker count — including 1 — returns
//! bit-for-bit the same vector as the sequential loop `items.map(f)`.
//! There is no other source of nondeterminism to control: the engines
//! never consult wall-clock time, thread ids, or a global RNG.
//!
//! The module is dependency-free (`std::thread::scope` only). A worker
//! panic propagates to the caller, as with the sequential loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers the machine supports (`available_parallelism`,
/// falling back to 1 when the platform cannot tell).
#[must_use]
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolve a requested worker count: `None` or `Some(0)` means "use the
/// machine" ([`available_workers`]); anything else is taken literally.
#[must_use]
pub fn effective_workers(requested: Option<usize>) -> usize {
    match requested {
        None | Some(0) => available_workers(),
        Some(n) => n,
    }
}

/// Map `f` over `0..n` on `workers` threads, returning results in index
/// order.
///
/// Deterministic by construction: `f(i)` must be a pure function of `i`
/// (all simulation entry points in this workspace are, given a seed), and
/// the output vector is assembled by index, so any worker count —
/// including 1, which runs the plain sequential loop with no threads
/// spawned — produces identical bits.
pub fn par_map_indexed<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Map `f` over a slice on `workers` threads, preserving input order.
/// See [`par_map_indexed`] for the determinism contract.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed(items.len(), workers, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let sequential: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(2_654_435_761)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let parallel = par_map_indexed(97, workers, |i| (i as u64).wrapping_mul(2_654_435_761));
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_passes_items_and_indices() {
        let items = vec![10.0f64, 20.0, 30.0];
        let out = par_map(&items, 2, |i, &x| x + i as f64);
        assert_eq!(out, vec![10.0, 21.0, 32.0]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = par_map_indexed(0, 8, |i| i as i32);
        assert!(empty.is_empty());
        let one = par_map_indexed(1, 8, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = par_map_indexed(3, 100, |i| i * i);
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn effective_workers_resolves_defaults() {
        assert!(available_workers() >= 1);
        assert_eq!(effective_workers(None), available_workers());
        assert_eq!(effective_workers(Some(0)), available_workers());
        assert_eq!(effective_workers(Some(5)), 5);
    }

    #[test]
    fn simulation_runs_are_identical_across_worker_counts() {
        // end-to-end: real engine runs fanned out per seed must agree
        // bit-for-bit with the sequential loop
        use crate::metrics::MetricsConfig;
        use crate::simulate_dispatch;
        use crate::state::{Dispatcher, SystemState};
        use dses_dist::Rng64;
        use dses_workload::{Job, Trace};

        struct Coin;
        impl Dispatcher for Coin {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, rng: &mut Rng64) -> usize {
                rng.below(s.num_hosts() as u64) as usize
            }
        }

        let trace = Trace::new(
            (0..200)
                .map(|i| Job::new(i, f64::from(i as u32) * 0.5, 1.0 + f64::from(i as u32 % 7)))
                .collect(),
        );
        let run = |seed: usize| {
            let mut p = Coin;
            let r = simulate_dispatch(&trace, 3, &mut p, seed as u64, MetricsConfig::default());
            (r.slowdown.mean.to_bits(), r.response.mean.to_bits(), r.makespan.to_bits())
        };
        let sequential: Vec<_> = (0..16).map(run).collect();
        for workers in [2, 8] {
            let parallel = par_map_indexed(16, workers, run);
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }
}
