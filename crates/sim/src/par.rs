//! Deterministic parallel execution of independent simulation runs.
//!
//! Every paper exhibit is a grid — loads × policies × seeds — of runs
//! that share no mutable state: each run is a pure function of its grid
//! index (the trace is regenerated or shared read-only, the policy RNG is
//! derived from a per-index seed via `dses_dist::derive_seed`). That
//! makes parallelism trivial to get right *and* trivial to get
//! deterministic:
//!
//! * workers pull indices from an atomic counter (dynamic load balancing
//!   — grid points vary wildly in cost near saturation), and
//! * each result is written to the slot of its **grid index**, never in
//!   completion order.
//!
//! Consequently [`par_map`] with any worker count — including 1 — returns
//! bit-for-bit the same vector as the sequential loop `items.map(f)`.
//! There is no other source of nondeterminism to control: the engines
//! never consult wall-clock time, thread ids, or a global RNG.
//!
//! Execution happens on a process-wide, **long-lived** [`WorkerPool`]
//! (std-only: parked threads plus a mutex/condvar batch queue) rather
//! than per-call `std::thread::scope` spawning. Sweeps submit thousands
//! of small batches; spawning and joining OS threads for each one costs
//! more than many of the batches themselves. Pool threads are lazily
//! spawned up to the highest worker count ever requested, park on a
//! condvar when idle, and live until process exit. Batches carry an
//! admission budget so a batch submitted with `workers = w` is never
//! drained by more than `w` threads (the caller plus `w − 1` helpers),
//! and the queue accepts concurrent submitters (independent tests or
//! nested calls), each caller participating in draining its own batch —
//! so progress never depends on a pool thread being free.
//!
//! A worker panic is captured, stops further index claims for that batch,
//! and is re-raised on the submitting thread, as with the sequential
//! loop. The module remains dependency-free.
//!
//! [`par_map_indexed_scoped`] keeps the original scoped-spawn
//! implementation as a benchmark baseline (`perf_report` measures the
//! pool against it).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of workers the machine supports (`available_parallelism`,
/// falling back to 1 when the platform cannot tell).
#[must_use]
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolve a requested worker count: `None` or `Some(0)` means "use the
/// machine" ([`available_workers`]); anything else is taken literally.
#[must_use]
pub fn effective_workers(requested: Option<usize>) -> usize {
    match requested {
        None | Some(0) => available_workers(),
        Some(n) => n,
    }
}

/// One submitted unit of fan-out: `n` indices drained by an atomic
/// claim counter, with results deposited through the type-erased `run`
/// closure (which writes into the submitter's slot vector).
struct Batch {
    /// number of indices in the batch
    n: usize,
    /// next index to claim (≥ `n` ⇒ nothing left to start)
    next: AtomicUsize,
    /// how many more *pool* threads may still join this batch (the
    /// submitting thread always participates on top of these)
    admissions: AtomicUsize,
    /// runs one index and stores its result
    run: Box<dyn Fn(usize) + Send + Sync>,
    /// completion accounting, guarded separately from the pool state
    done: Mutex<BatchDone>,
    /// signalled when the batch completes or a worker panics
    finished: Condvar,
}

struct BatchDone {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    /// Whether a pool thread may start helping on this batch (consumes
    /// one admission on success).
    fn try_admit(&self) -> bool {
        if self.next.load(Ordering::Relaxed) >= self.n {
            return false;
        }
        self.admissions
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| a.checked_sub(1))
            .is_ok()
    }

    /// Nothing left to *start* (claimed ≥ n); in-flight indices may still
    /// be running, which only the `done` accounting tracks.
    fn drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Drain indices until none are left, recording completions. On a
    /// panic inside `run`, capture it (first one wins), stop all further
    /// claims, and wake the submitter.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| (self.run)(i))) {
                Ok(()) => {
                    let mut done = self.done.lock().expect("batch accounting poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
                    done.completed += 1;
                    if done.completed == self.n {
                        self.finished.notify_all();
                    }
                }
                Err(payload) => {
                    // stop other workers from claiming more indices
                    self.next.fetch_max(self.n, Ordering::Relaxed);
                    let mut done = self.done.lock().expect("batch accounting poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
                    if done.panic.is_none() {
                        done.panic = Some(payload);
                    }
                    self.finished.notify_all();
                    break;
                }
            }
        }
    }
}

struct PoolState {
    /// batches with work left, oldest first
    queue: VecDeque<Arc<Batch>>,
    /// pool threads spawned so far (high-water mark)
    spawned: usize,
    /// set by [`WorkerPool::drop`]; workers exit once no work remains
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// signalled when a batch is submitted (or on shutdown)
    work_ready: Condvar,
}

/// A long-lived pool of worker threads draining submitted index batches.
///
/// The process-wide instance behind [`par_map_indexed`] is obtained with
/// [`WorkerPool::global`]; constructing additional pools is possible (the
/// tests do) but rarely useful — threads are only reclaimed when the pool
/// is dropped.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Create an empty pool; threads are spawned lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    spawned: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
            }),
        }
    }

    /// The process-wide pool shared by every sweep entry point.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Pool threads spawned so far (a high-water mark of requested
    /// helper counts — threads persist between calls).
    #[must_use]
    pub fn spawned_workers(&self) -> usize {
        self.shared.state.lock().expect("pool state poisoned").spawned // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
    }

    /// The pool-threaded equivalent of `(0..n).map(f).collect()`.
    ///
    /// `workers` bounds the number of threads draining this batch (the
    /// calling thread plus up to `workers − 1` pool helpers). With
    /// `workers <= 1` (or trivially small `n`) the plain sequential loop
    /// runs — no locks, no queue.
    ///
    /// Deterministic by construction: `f(i)` must be a pure function of
    /// `i` (all simulation entry points in this workspace are, given a
    /// seed), and the output vector is assembled by index, so any worker
    /// count produces identical bits. A panic in `f` is re-raised here.
    pub fn run_indexed<R, F>(&self, n: usize, workers: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let workers = workers.max(1).min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let slots: Arc<Vec<Mutex<Option<R>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let batch = Arc::new(Batch {
            n,
            next: AtomicUsize::new(0),
            admissions: AtomicUsize::new(workers - 1),
            run: {
                let slots = Arc::clone(&slots);
                Box::new(move |i| {
                    let result = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
                })
            },
            done: Mutex::new(BatchDone {
                completed: 0,
                panic: None,
            }),
            finished: Condvar::new(),
        });
        self.submit(Arc::clone(&batch), workers - 1);
        // The submitter drains alongside the pool: progress never waits
        // on a helper thread becoming free.
        batch.work();
        let panic = {
            let mut done = batch.done.lock().expect("batch accounting poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
            while done.completed < n && done.panic.is_none() {
                done = batch
                    .finished
                    .wait(done)
                    .expect("batch accounting poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
            }
            done.panic.take()
        };
        self.retire(&batch);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("result slot poisoned") // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
                    .take()
                    .expect("worker filled every claimed slot") // dses-lint: allow(panic-hygiene) -- run_indexed waits until all n indices completed
            })
            .collect()
    }

    /// Enqueue a batch and make sure at least `helpers` pool threads
    /// exist to serve it.
    fn submit(&self, batch: Arc<Batch>, helpers: usize) {
        let mut state = self.shared.state.lock().expect("pool state poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
        while state.spawned < helpers {
            let shared = Arc::clone(&self.shared);
            let id = state.spawned;
            std::thread::Builder::new()
                // dses-lint: allow(loop-alloc) -- names the pool threads; this loop runs once per worker at pool growth, never per job
                .name(format!("dses-pool-{id}"))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker"); // dses-lint: allow(panic-hygiene) -- cannot run a sweep without threads; abort is the only option
            state.spawned += 1;
        }
        state.queue.push_back(batch);
        drop(state);
        self.shared.work_ready.notify_all();
    }

    /// Remove a finished batch from the queue (workers also prune drained
    /// batches opportunistically; this handles the fully-idle case).
    fn retire(&self, batch: &Arc<Batch>) {
        let mut state = self.shared.state.lock().expect("pool state poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
        state.queue.retain(|b| !Arc::ptr_eq(b, batch));
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("pool state poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
        state.shutdown = true;
        drop(state);
        self.shared.work_ready.notify_all();
    }
}

/// A pool thread: admit onto the oldest batch with work and budget,
/// drain it, repeat; park when the queue is empty.
fn worker_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("pool state poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
            loop {
                state.queue.retain(|b| !b.drained());
                if let Some(b) = state.queue.iter().find(|b| b.try_admit()) {
                    break Arc::clone(b);
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("pool state poisoned"); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
            }
        };
        batch.work();
    }
}

/// Map `f` over `0..n` on up to `workers` threads of the global
/// [`WorkerPool`], returning results in index order. See
/// [`WorkerPool::run_indexed`] for the determinism contract.
pub fn par_map_indexed<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    WorkerPool::global().run_indexed(n, workers, f)
}

/// Map `f` over a slice on up to `workers` pool threads, preserving
/// input order. The items are copied once into shared storage (the pool's
/// task closures outlive the call frame, so they cannot borrow the
/// slice); simulation grids pass small spec/load vectors where one copy
/// is noise.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    let items: Arc<Vec<T>> = Arc::new(items.to_vec());
    par_map_indexed(items.len(), workers, move |i| f(i, &items[i]))
}

/// Map a *group* closure over `0..n` in contiguous blocks of `group`
/// indices, flattening the per-group vectors back into index order.
///
/// This is the batch shape replication fusion wants: the fused engine
/// runs one block of `group` replications as a single pass, so the unit
/// of parallel work must be the block, not the index. `f` receives the
/// half-open index range of its block and must return exactly one result
/// per index; blocks are distributed over the pool like any other batch,
/// and the flattened output equals the sequential `(0..n).map(…)` order
/// regardless of worker count or group size.
///
/// # Panics
/// Panics if `group == 0`, or re-raises a panic from `f` (including the
/// built-in check that a block returned the wrong number of results).
pub fn par_map_grouped<R, F>(n: usize, group: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Send + Sync + 'static,
{
    assert!(group > 0, "group size must be positive");
    let blocks = n.div_ceil(group);
    par_map_indexed(blocks, workers, move |b| {
        let lo = b * group;
        let hi = ((b + 1) * group).min(n);
        let out = f(lo..hi);
        assert_eq!(
            out.len(),
            hi - lo,
            "group closure must return one result per index"
        );
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The original per-call `std::thread::scope` implementation, kept as
/// the benchmark baseline the persistent pool is measured against
/// (`perf_report --smoke`). Semantics are identical to
/// [`par_map_indexed`]; the only difference is that every call spawns
/// and joins `workers` fresh OS threads.
pub fn par_map_indexed_scoped<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result); // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned") // dses-lint: allow(panic-hygiene) -- poisoned lock means a worker panicked; that panic is already propagating
                .expect("worker filled every claimed slot") // dses-lint: allow(panic-hygiene) -- run_indexed waits until all n indices completed
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let sequential: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(2_654_435_761)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let parallel = par_map_indexed(97, workers, |i| (i as u64).wrapping_mul(2_654_435_761));
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn scoped_baseline_matches_the_pool() {
        let pooled = par_map_indexed(53, 4, |i| i * 3 + 1);
        let scoped = par_map_indexed_scoped(53, 4, |i| i * 3 + 1);
        assert_eq!(pooled, scoped);
    }

    #[test]
    fn par_map_passes_items_and_indices() {
        let items = vec![10.0f64, 20.0, 30.0];
        let out = par_map(&items, 2, |i, &x| x + i as f64);
        assert_eq!(out, vec![10.0, 21.0, 32.0]);
    }

    #[test]
    fn grouped_map_flattens_in_index_order() {
        let sequential: Vec<usize> = (0..23).map(|i| i * 7).collect();
        for group in [1, 3, 8, 23, 40] {
            for workers in [1, 4] {
                let got = par_map_grouped(23, group, workers, |range| {
                    range.map(|i| i * 7).collect()
                });
                assert_eq!(got, sequential, "group = {group}, workers = {workers}");
            }
        }
        let empty: Vec<usize> = par_map_grouped(0, 8, 4, |range| range.collect());
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "one result per index")]
    fn grouped_map_rejects_short_blocks() {
        let _ = par_map_grouped(10, 4, 1, |_range| vec![0usize]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = par_map_indexed(0, 8, |i| i as i32);
        assert!(empty.is_empty());
        let one = par_map_indexed(1, 8, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = par_map_indexed(3, 100, |i| i * i);
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn effective_workers_resolves_defaults() {
        assert!(available_workers() >= 1);
        assert_eq!(effective_workers(None), available_workers());
        assert_eq!(effective_workers(Some(0)), available_workers());
        assert_eq!(effective_workers(Some(5)), 5);
    }

    #[test]
    fn pool_threads_persist_between_batches() {
        let pool = WorkerPool::new();
        let a = pool.run_indexed(40, 3, |i| i as u64);
        let spawned_after_first = pool.spawned_workers();
        assert_eq!(spawned_after_first, 2, "workers − 1 helpers");
        for _ in 0..5 {
            let b = pool.run_indexed(40, 3, |i| i as u64);
            assert_eq!(a, b);
        }
        assert_eq!(
            pool.spawned_workers(),
            spawned_after_first,
            "repeat batches must reuse, not respawn, threads"
        );
    }

    #[test]
    fn pool_grows_to_the_largest_request_only() {
        let pool = WorkerPool::new();
        let _ = pool.run_indexed(64, 5, |i| i);
        assert_eq!(pool.spawned_workers(), 4);
        let _ = pool.run_indexed(64, 2, |i| i);
        assert_eq!(pool.spawned_workers(), 4, "smaller batches respawn nothing");
        let _ = pool.run_indexed(64, 7, |i| i);
        assert_eq!(pool.spawned_workers(), 6, "larger requests top the pool up");
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(WorkerPool::new());
        let expected: Vec<usize> = (0..60).map(|i| i * i).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let expected = expected.clone();
                scope.spawn(move || {
                    for _ in 0..10 {
                        let got = pool.run_indexed(60, 3, |i| i * i);
                        assert_eq!(got, expected);
                    }
                });
            }
        });
    }

    #[test]
    fn worker_panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(32, 4, |i| {
                assert!(i != 17, "boom at 17");
                i
            })
        }));
        assert!(result.is_err(), "panic must cross the pool boundary");
        // the pool survives a panicked batch
        let ok = pool.run_indexed(8, 4, |i| i + 1);
        assert_eq!(ok, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn simulation_runs_are_identical_across_worker_counts() {
        // end-to-end: real engine runs fanned out per seed must agree
        // bit-for-bit with the sequential loop
        use crate::metrics::MetricsConfig;
        use crate::simulate_dispatch;
        use crate::state::{Dispatcher, SystemState};
        use dses_dist::Rng64;
        use dses_workload::{Job, Trace};

        struct Coin;
        impl Dispatcher for Coin {
            fn dispatch(&mut self, _: &Job, s: &SystemState<'_>, rng: &mut Rng64) -> usize {
                rng.below(s.num_hosts() as u64) as usize
            }
        }

        let trace = Arc::new(Trace::new(
            (0..200)
                .map(|i| Job::new(i, f64::from(i as u32) * 0.5, 1.0 + f64::from(i as u32 % 7)))
                .collect(),
        ));
        let run = move |trace: Arc<Trace>| {
            move |seed: usize| {
                let mut p = Coin;
                let r = simulate_dispatch(&trace, 3, &mut p, seed as u64, MetricsConfig::default());
                (r.slowdown.mean.to_bits(), r.response.mean.to_bits(), r.makespan.to_bits())
            }
        };
        let sequential: Vec<_> = (0..16).map(run(Arc::clone(&trace))).collect();
        for workers in [2, 8] {
            let parallel = par_map_indexed(16, workers, run(Arc::clone(&trace)));
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }
}
