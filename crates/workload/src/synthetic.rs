//! Synthetic trace generation: size distribution × arrival process → trace.

use crate::arrivals::{ArrivalProcess, Poisson};
use crate::job::Job;
use crate::trace::Trace;
use dses_dist::prelude::*;

/// Builder for synthetic job traces.
///
/// ```
/// use dses_workload::WorkloadBuilder;
/// use dses_dist::prelude::*;
///
/// let sizes = BoundedPareto::new(1.0, 1.0e6, 1.1).unwrap();
/// // 10_000 jobs at system load 0.7 on 2 hosts, Poisson arrivals:
/// let trace = WorkloadBuilder::new(sizes)
///     .jobs(10_000)
///     .poisson_load(0.7, 2)
///     .seed(42)
///     .build();
/// assert_eq!(trace.len(), 10_000);
/// // The realized load fluctuates around 0.7 (heavy-tailed sample means
/// // converge slowly); it is positive and roughly in range:
/// let rho = trace.system_load(2);
/// assert!(rho > 0.3 && rho < 1.5, "load = {rho}");
/// ```
#[derive(Debug)]
pub struct WorkloadBuilder<D: Distribution> {
    size_dist: D,
    n_jobs: usize,
    seed: u64,
    load_spec: LoadSpec,
}

#[derive(Debug)]
enum LoadSpec {
    /// Poisson arrivals at system load ρ for h hosts.
    PoissonLoad { rho: f64, hosts: usize },
    /// Explicit arrival process (rates taken as given).
    Process(Box<dyn ArrivalProcessObj>),
}

/// Object-safe wrapper so the builder can hold any arrival process.
trait ArrivalProcessObj: std::fmt::Debug {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64;
    fn reset(&mut self);
}

impl<A: ArrivalProcess> ArrivalProcessObj for A {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        ArrivalProcess::next_gap(self, rng)
    }
    fn reset(&mut self) {
        ArrivalProcess::reset(self);
    }
}

impl<D: Distribution> WorkloadBuilder<D> {
    /// Start a builder with the given job-size distribution.
    #[must_use]
    pub fn new(size_dist: D) -> Self {
        Self {
            size_dist,
            n_jobs: 10_000,
            seed: 0,
            load_spec: LoadSpec::PoissonLoad { rho: 0.5, hosts: 2 },
        }
    }

    /// Number of jobs to generate (default 10 000).
    #[must_use]
    pub fn jobs(mut self, n: usize) -> Self {
        self.n_jobs = n;
        self
    }

    /// RNG seed (default 0). Sizes and arrivals use independent streams
    /// derived from this seed, so regenerating with a different load
    /// keeps the *same* job-size sequence — the paper's methodology of
    /// sweeping load while holding the trace fixed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Poisson arrivals with rate chosen so the system load on `hosts`
    /// hosts is `rho`: `λ = ρ·h / E[X]`.
    #[must_use]
    pub fn poisson_load(mut self, rho: f64, hosts: usize) -> Self {
        assert!(rho > 0.0 && rho.is_finite(), "load must be positive");
        assert!(hosts > 0, "need at least one host");
        self.load_spec = LoadSpec::PoissonLoad { rho, hosts };
        self
    }

    /// Use an explicit arrival process (its own rates apply).
    #[must_use]
    pub fn arrivals<A: ArrivalProcess + 'static>(mut self, process: A) -> Self {
        self.load_spec = LoadSpec::Process(Box::new(process));
        self
    }

    /// Generate the trace.
    #[must_use]
    pub fn build(self) -> Trace {
        let root = Rng64::seed_from(self.seed);
        let mut size_rng = root.stream(1);
        let mut gap_rng = root.stream(2);
        let mut process: Box<dyn ArrivalProcessObj> = match self.load_spec {
            LoadSpec::PoissonLoad { rho, hosts } => {
                let rate = rho * hosts as f64 / self.size_dist.mean();
                Box::new(Poisson::new(rate))
            }
            LoadSpec::Process(p) => p,
        };
        process.reset();
        let mut jobs = Vec::with_capacity(self.n_jobs);
        let mut t = 0.0;
        for id in 0..self.n_jobs {
            t += process.next_gap(&mut gap_rng);
            let size = self.size_dist.sample(&mut size_rng);
            jobs.push(Job::new(id as u64, t, size));
        }
        Trace::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Mmpp2;

    #[test]
    fn builds_requested_number_of_jobs() {
        let t = WorkloadBuilder::new(Exponential::with_mean(1.0).unwrap())
            .jobs(500)
            .build();
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn poisson_load_hits_target() {
        let t = WorkloadBuilder::new(Exponential::with_mean(10.0).unwrap())
            .jobs(50_000)
            .poisson_load(0.6, 4)
            .seed(9)
            .build();
        let rho = t.system_load(4);
        assert!((rho - 0.6).abs() < 0.03, "load = {rho}");
    }

    #[test]
    fn same_seed_same_trace() {
        let make = || {
            WorkloadBuilder::new(BoundedPareto::new(1.0, 1e5, 1.2).unwrap())
                .jobs(100)
                .seed(33)
                .build()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn size_sequence_is_invariant_to_load() {
        let make = |rho: f64| {
            WorkloadBuilder::new(BoundedPareto::new(1.0, 1e5, 1.2).unwrap())
                .jobs(1000)
                .poisson_load(rho, 2)
                .seed(77)
                .build()
        };
        let low = make(0.3);
        let high = make(0.9);
        assert_eq!(low.sizes(), high.sizes());
        assert!(low.duration() > high.duration());
    }

    #[test]
    fn explicit_arrival_process_is_used() {
        let t = WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
            .jobs(20_000)
            .arrivals(Mmpp2::bursty(2.0, 10.0, 20.0))
            .seed(5)
            .build();
        // MMPP-2 at mean rate 2 → ~10k seconds for 20k jobs
        let rate = t.arrival_rate();
        assert!((rate - 2.0).abs() < 0.2, "rate = {rate}");
        // bursty gaps: interarrival scv well above Poisson's 1
        assert!(t.interarrival_summary().scv() > 1.5);
    }

    #[test]
    fn arrivals_are_strictly_ordered() {
        let t = WorkloadBuilder::new(Exponential::with_mean(1.0).unwrap())
            .jobs(1000)
            .seed(3)
            .build();
        for w in t.jobs().windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }
}
