//! Arrival processes.
//!
//! The paper's main experiments use Poisson arrivals so load can be set
//! freely (§2.2); §6 repeats the key comparison with the traces' own —
//! much burstier — interarrival sequence. We provide:
//!
//! * [`Poisson`] — the memoryless baseline;
//! * [`Renewal`] — i.i.d. interarrivals from any `dses-dist`
//!   distribution (e.g. a high-`C²` lognormal for mild burstiness);
//! * [`Mmpp2`] — a 2-state Markov-modulated Poisson process, the standard
//!   model of *correlated* burstiness (visits alternate between a calm
//!   state and a bursty state). This is our stand-in for the paper's
//!   trace-scaled arrival sequence.

use dses_dist::prelude::*;

/// A stateful generator of interarrival gaps.
pub trait ArrivalProcess: std::fmt::Debug {
    /// The time until the next arrival.
    fn next_gap(&mut self, rng: &mut Rng64) -> f64;

    /// The long-run mean arrival rate (arrivals per second).
    fn mean_rate(&self) -> f64;

    /// Reset internal state (e.g. the MMPP phase) to the initial state.
    fn reset(&mut self);
}

/// Poisson arrivals: i.i.d. exponential gaps with the given rate.
#[derive(Debug, Clone)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// Create a Poisson process with arrival rate `rate` (> 0).
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Self { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        rng.standard_exponential() / self.rate
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self) {}
}

/// Renewal arrivals: i.i.d. gaps from an arbitrary distribution.
#[derive(Debug)]
pub struct Renewal<D: Distribution> {
    gap_dist: D,
}

impl<D: Distribution> Renewal<D> {
    /// Create a renewal process with the given interarrival distribution.
    #[must_use]
    pub fn new(gap_dist: D) -> Self {
        assert!(
            gap_dist.mean() > 0.0,
            "interarrival distribution needs positive mean"
        );
        Self { gap_dist }
    }
}

impl<D: Distribution> ArrivalProcess for Renewal<D> {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        self.gap_dist.sample(rng)
    }

    fn mean_rate(&self) -> f64 {
        1.0 / self.gap_dist.mean()
    }

    fn reset(&mut self) {}
}

/// A 2-state Markov-modulated Poisson process.
///
/// The process alternates between state 0 and state 1; in state `i`
/// arrivals occur at Poisson rate `lambda[i]` and the state flips at rate
/// `switch[i]`. With `lambda[burst] ≫ lambda[calm]` and slow switching,
/// interarrival times are both highly variable *and* positively
/// correlated — the two properties §6 identifies in real trace arrivals.
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    lambda: [f64; 2],
    switch: [f64; 2],
    state: usize,
}

impl Mmpp2 {
    /// Create an MMPP-2 from per-state arrival rates and switching rates.
    #[must_use]
    pub fn new(lambda: [f64; 2], switch: [f64; 2]) -> Self {
        assert!(
            lambda.iter().all(|&l| l >= 0.0 && l.is_finite()),
            "arrival rates must be nonnegative"
        );
        assert!(
            lambda.iter().any(|&l| l > 0.0),
            "at least one state must produce arrivals"
        );
        assert!(
            switch.iter().all(|&r| r > 0.0 && r.is_finite()),
            "switching rates must be positive"
        );
        Self {
            lambda,
            switch,
            state: 0,
        }
    }

    /// A convenient bursty preset: overall mean rate `rate`, with the
    /// bursty state `burstiness` times faster than the calm state, and
    /// mean state-visit length of `visit_arrivals` arrivals in the bursty
    /// state.
    ///
    /// `burstiness = 1` degenerates to Poisson-like behaviour;
    /// `burstiness ≈ 10–50` with long visits reproduces the "many jobs
    /// with similar arrival times" effect the paper describes.
    #[must_use]
    pub fn bursty(rate: f64, burstiness: f64, visit_arrivals: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burstiness >= 1.0, "burstiness must be >= 1");
        assert!(visit_arrivals > 0.0, "visit length must be positive");
        // Spend half the time in each state; calm rate c, bursty rate B·c.
        // Mean rate = (c + B·c)/2 = rate  ⇒  c = 2·rate/(1+B).
        let calm = 2.0 * rate / (1.0 + burstiness);
        let burst = burstiness * calm;
        // switching rate chosen so a bursty visit emits ~visit_arrivals
        let r = burst / visit_arrivals;
        Self::new([burst, calm], [r, r])
    }

    /// Stationary probability of being in state 0.
    fn pi0(&self) -> f64 {
        self.switch[1] / (self.switch[0] + self.switch[1])
    }
}

impl ArrivalProcess for Mmpp2 {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        // Competing exponentials: in state i the next event is an arrival
        // with rate lambda[i] or a switch with rate switch[i].
        let mut gap = 0.0;
        loop {
            let l = self.lambda[self.state];
            let r = self.switch[self.state];
            let total = l + r;
            gap += rng.standard_exponential() / total;
            if rng.uniform() * total < l {
                return gap;
            }
            self.state ^= 1;
        }
    }

    fn mean_rate(&self) -> f64 {
        let p0 = self.pi0();
        p0 * self.lambda[0] + (1.0 - p0) * self.lambda[1]
    }

    fn reset(&mut self) {
        self.state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate(p: &mut dyn ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = Rng64::seed_from(seed);
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        n as f64 / total
    }

    fn empirical_gap_scv(p: &mut dyn ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = Rng64::seed_from(seed);
        let om: OnlineMoments = (0..n).map(|_| p.next_gap(&mut rng)).collect();
        om.scv()
    }

    #[test]
    fn poisson_rate_and_scv() {
        let mut p = Poisson::new(2.0);
        assert_eq!(p.mean_rate(), 2.0);
        let r = empirical_rate(&mut p, 200_000, 1);
        assert!((r - 2.0).abs() < 0.02, "rate = {r}");
        let scv = empirical_gap_scv(&mut p, 200_000, 2);
        assert!((scv - 1.0).abs() < 0.03, "scv = {scv}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_rate() {
        let _ = Poisson::new(0.0);
    }

    #[test]
    fn renewal_with_lognormal_is_bursty_but_uncorrelated() {
        let d = LogNormal::fit_mean_scv(0.5, 9.0).unwrap();
        let mut p = Renewal::new(d);
        assert!((p.mean_rate() - 2.0).abs() < 1e-9);
        let scv = empirical_gap_scv(&mut p, 300_000, 3);
        assert!(scv > 5.0, "scv = {scv}");
    }

    #[test]
    fn mmpp_mean_rate_formula_matches_sampling() {
        let mut p = Mmpp2::new([4.0, 0.5], [0.1, 0.2]);
        let analytic = p.mean_rate();
        // pi0 = 0.2/0.3 = 2/3 → rate = 2/3·4 + 1/3·0.5 = 2.8333
        assert!((analytic - (2.0 / 3.0 * 4.0 + 1.0 / 3.0 * 0.5)).abs() < 1e-12);
        let r = empirical_rate(&mut p, 400_000, 4);
        assert!((r - analytic).abs() / analytic < 0.02, "rate {r} vs {analytic}");
    }

    #[test]
    fn bursty_preset_hits_target_rate() {
        let mut p = Mmpp2::bursty(1.0, 20.0, 50.0);
        assert!((p.mean_rate() - 1.0).abs() < 1e-9);
        let r = empirical_rate(&mut p, 400_000, 5);
        assert!((r - 1.0).abs() < 0.05, "rate = {r}");
    }

    #[test]
    fn bursty_gaps_have_high_variability() {
        let mut bursty = Mmpp2::bursty(1.0, 30.0, 100.0);
        let scv = empirical_gap_scv(&mut bursty, 400_000, 6);
        assert!(scv > 2.0, "bursty scv = {scv}");
        // and positive autocorrelation: consecutive gaps in the same state
        let mut rng = Rng64::seed_from(7);
        let gaps: Vec<f64> = (0..200_000).map(|_| bursty.next_gap(&mut rng)).collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
        let cov = gaps
            .windows(2)
            .map(|w| (w[0] - m) * (w[1] - m))
            .sum::<f64>()
            / (gaps.len() - 1) as f64;
        let rho1 = cov / var;
        assert!(rho1 > 0.05, "lag-1 autocorrelation = {rho1}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = Mmpp2::new([5.0, 0.1], [1.0, 1.0]);
        let mut rng = Rng64::seed_from(8);
        for _ in 0..100 {
            let _ = p.next_gap(&mut rng);
        }
        p.reset();
        assert_eq!(p.state, 0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn mmpp_rejects_all_silent_states() {
        let _ = Mmpp2::new([0.0, 0.0], [1.0, 1.0]);
    }
}

/// Replay a recorded interarrival sequence — either in its original
/// order (preserving burst *correlation*) or deterministically shuffled
/// (preserving only the marginal gap distribution).
///
/// This is the instrument for decomposing §6's burstiness effect: pair
/// an ordered replay against a shuffled one and any performance
/// difference is attributable purely to arrival *correlation*, not
/// variability. Replay cycles if more gaps are requested than recorded.
#[derive(Debug, Clone)]
pub struct ReplayArrivals {
    gaps: Vec<f64>,
    next: usize,
}

impl ReplayArrivals {
    /// Replay `gaps` in order.
    ///
    /// # Panics
    /// Panics on an empty or non-positive-mean gap list.
    #[must_use]
    pub fn ordered(gaps: Vec<f64>) -> Self {
        assert!(!gaps.is_empty(), "need at least one gap");
        assert!(
            gaps.iter().all(|&g| g >= 0.0 && g.is_finite()),
            "gaps must be nonnegative and finite"
        );
        assert!(gaps.iter().sum::<f64>() > 0.0, "gaps must have positive mean");
        Self { gaps, next: 0 }
    }

    /// Replay `gaps` after a deterministic Fisher–Yates shuffle seeded by
    /// `seed` — same marginal distribution, correlation destroyed.
    #[must_use]
    pub fn shuffled(mut gaps: Vec<f64>, seed: u64) -> Self {
        assert!(!gaps.is_empty(), "need at least one gap");
        let mut rng = Rng64::seed_from(seed).stream(0x5817);
        for i in (1..gaps.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            gaps.swap(i, j);
        }
        Self::ordered(gaps)
    }

    /// Extract the gap sequence of an existing trace.
    #[must_use]
    pub fn gaps_of(trace: &crate::trace::Trace) -> Vec<f64> {
        trace
            .jobs()
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect()
    }
}

impl ArrivalProcess for ReplayArrivals {
    fn next_gap(&mut self, _rng: &mut Rng64) -> f64 {
        let g = self.gaps[self.next];
        self.next = (self.next + 1) % self.gaps.len();
        g
    }

    fn mean_rate(&self) -> f64 {
        self.gaps.len() as f64 / self.gaps.iter().sum::<f64>()
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::synthetic::WorkloadBuilder;
    use crate::trace::Trace;
    use dses_dist::Deterministic;

    #[test]
    fn ordered_replay_reproduces_the_sequence() {
        let mut p = ReplayArrivals::ordered(vec![1.0, 2.0, 3.0]);
        let mut rng = Rng64::seed_from(0);
        let got: Vec<f64> = (0..5).map(|_| p.next_gap(&mut rng)).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 1.0, 2.0]); // cycles
        p.reset();
        assert_eq!(p.next_gap(&mut rng), 1.0);
    }

    #[test]
    fn shuffle_preserves_the_multiset() {
        let gaps = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut p = ReplayArrivals::shuffled(gaps.clone(), 7);
        let mut rng = Rng64::seed_from(0);
        let mut got: Vec<f64> = (0..5).map(|_| p.next_gap(&mut rng)).collect();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, gaps);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let gaps: Vec<f64> = (1..100).map(f64::from).collect();
        let a = ReplayArrivals::shuffled(gaps.clone(), 3);
        let b = ReplayArrivals::shuffled(gaps.clone(), 3);
        assert_eq!(a.gaps, b.gaps);
        let c = ReplayArrivals::shuffled(gaps, 4);
        assert_ne!(a.gaps, c.gaps);
    }

    #[test]
    fn mean_rate_matches_gap_mean() {
        let p = ReplayArrivals::ordered(vec![1.0, 3.0]);
        assert!((p.mean_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shuffle_destroys_correlation_but_keeps_scv() {
        // build a bursty trace, replay ordered vs shuffled, compare
        let bursty = WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
            .jobs(40_000)
            .arrivals(Mmpp2::bursty(1.0, 30.0, 100.0))
            .seed(3)
            .build();
        let gaps = ReplayArrivals::gaps_of(&bursty);
        let n = gaps.len();
        let rebuild = |p: ReplayArrivals| -> Trace {
            WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
                .jobs(n)
                .arrivals(p)
                .seed(3)
                .build()
        };
        let ordered = rebuild(ReplayArrivals::ordered(gaps.clone()));
        let shuffled = rebuild(ReplayArrivals::shuffled(gaps, 9));
        let ro = crate::burstiness::burstiness_report(&ordered, 1, 2);
        let rs = crate::burstiness::burstiness_report(&shuffled, 1, 2);
        // same marginal variability…
        assert!((ro.interarrival_scv - rs.interarrival_scv).abs() / ro.interarrival_scv < 0.05);
        // …but the correlation is gone
        assert!(ro.gap_autocorrelation[0] > 0.05);
        assert!(rs.gap_autocorrelation[0].abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one gap")]
    fn rejects_empty_gaps() {
        let _ = ReplayArrivals::ordered(vec![]);
    }
}

/// A non-homogeneous Poisson process with sinusoidal (diurnal) rate:
/// `λ(t) = rate · (1 + amplitude·sin(2πt/period))`, generated by
/// Lewis–Shedler thinning.
///
/// Real supercomputing centers see day/night submission cycles; this is
/// the standard deterministic-modulation complement to the MMPP's random
/// bursts when probing §6-style arrival effects.
#[derive(Debug, Clone)]
pub struct DiurnalPoisson {
    rate: f64,
    amplitude: f64,
    period: f64,
    now: f64,
}

impl DiurnalPoisson {
    /// Create a diurnal Poisson process with mean rate `rate`, relative
    /// amplitude `amplitude ∈ [0, 1)` and cycle length `period`.
    #[must_use]
    pub fn new(rate: f64, amplitude: f64, period: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1) so the rate stays positive"
        );
        assert!(period > 0.0 && period.is_finite(), "period must be positive");
        Self {
            rate,
            amplitude,
            period,
            now: 0.0,
        }
    }

    fn rate_at(&self, t: f64) -> f64 {
        self.rate
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period).sin())
    }
}

impl ArrivalProcess for DiurnalPoisson {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        // Lewis–Shedler thinning against the envelope rate·(1+amplitude)
        let envelope = self.rate * (1.0 + self.amplitude);
        let start = self.now;
        loop {
            self.now += rng.standard_exponential() / envelope;
            if rng.uniform() * envelope < self.rate_at(self.now) {
                return self.now - start;
            }
        }
    }

    fn mean_rate(&self) -> f64 {
        self.rate // the sinusoid averages out over a period
    }

    fn reset(&mut self) {
        self.now = 0.0;
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;
    use crate::synthetic::WorkloadBuilder;
    use dses_dist::Deterministic;

    #[test]
    fn mean_rate_is_preserved() {
        let mut p = DiurnalPoisson::new(2.0, 0.8, 100.0);
        let mut rng = Rng64::seed_from(1);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let rate = n as f64 / total;
        assert!((rate - 2.0).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn zero_amplitude_is_plain_poisson() {
        let mut p = DiurnalPoisson::new(1.0, 0.0, 10.0);
        let mut rng = Rng64::seed_from(2);
        let om: dses_dist::OnlineMoments = (0..200_000).map(|_| p.next_gap(&mut rng)).collect();
        assert!((om.scv() - 1.0).abs() < 0.03, "scv = {}", om.scv());
    }

    #[test]
    fn modulation_raises_dispersion_at_the_period_scale() {
        // counts over windows comparable to the period are over-dispersed
        let t = WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
            .jobs(100_000)
            .arrivals(DiurnalPoisson::new(1.0, 0.9, 1_000.0))
            .seed(3)
            .build();
        // Deterministic rate modulation over-disperses counts at windows
        // below the period (different windows catch different phases),
        // but at a window of exactly one period every window sees the
        // same average rate and the dispersion collapses back toward
        // Poisson — the signature that distinguishes cyclic modulation
        // from MMPP-style random bursts.
        let idc_small = crate::burstiness::index_of_dispersion(&t, 1.0);
        let idc_mid = crate::burstiness::index_of_dispersion(&t, 100.0);
        let idc_period = crate::burstiness::index_of_dispersion(&t, 1_000.0);
        assert!(idc_small < idc_mid, "sub-period growth: {idc_small} vs {idc_mid}");
        assert!(idc_mid > 10.0, "mid-window IDC = {idc_mid}");
        assert!(idc_period < idc_mid / 5.0,
            "full-period windows should collapse: {idc_period} vs {idc_mid}");
    }

    #[test]
    fn density_peaks_follow_the_sinusoid() {
        let p = DiurnalPoisson::new(1.0, 0.5, 100.0);
        assert!((p.rate_at(25.0) - 1.5).abs() < 1e-9); // peak at quarter period
        assert!((p.rate_at(75.0) - 0.5).abs() < 1e-9); // trough
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn rejects_full_amplitude() {
        let _ = DiurnalPoisson::new(1.0, 1.0, 10.0);
    }
}
