//! Calibrated workload presets standing in for the paper's traces.
//!
//! The paper evaluates on three traces (Table 1):
//!
//! | system      | duration            | jobs    | character                      |
//! |-------------|---------------------|---------|--------------------------------|
//! | PSC Cray C90| Jan–Dec 1997        | ~55 000 | very heavy tail, `C² = 43`     |
//! | PSC Cray J90| Jan–Dec 1997        | ~3 600  | similar shape, fewer jobs      |
//! | CTC IBM SP2 | Jul 1996 – May 1997 | ~79 000 | 12-hour runtime cap ⇒ low `C²` |
//!
//! The raw logs are not redistributable, so each preset is a **body–tail
//! Bounded-Pareto mixture** calibrated (via
//! [`dses_dist::fit::fit_body_tail`]) to the published statistics that,
//! per the paper's own analysis, drive policy performance:
//!
//! * the mean service requirement and the squared coefficient of
//!   variation `C²` (Table 1);
//! * the support (smallest and largest job); and
//! * the **tail-load concentration** — for the Cray traces, "half the
//!   total load is made up by only the biggest 1.3 % of all the jobs"
//!   (§4.3).
//!
//! No single Bounded Pareto can satisfy all of these at once, which is
//! why the stand-in is a two-piece mixture; see `DESIGN.md` for the full
//! substitution argument. Real SWF traces can replace the presets through
//! [`crate::swf`].

use crate::synthetic::WorkloadBuilder;
use crate::trace::Trace;
use dses_dist::fit::{fit_body_tail, BodyTailTargets};
use dses_dist::{Distribution, Mixture};

/// A named, calibrated workload.
#[derive(Debug, Clone)]
pub struct WorkloadPreset {
    /// short name, e.g. `"PSC-C90"`
    pub name: &'static str,
    /// what this preset stands in for
    pub description: &'static str,
    /// calibrated job-size distribution (body–tail mixture)
    pub size_dist: Mixture,
    /// the calibration targets the mixture was solved against
    pub targets: BodyTailTargets,
    /// number of jobs in the original trace (used as the default sample
    /// size when generating)
    pub trace_jobs: usize,
}

impl WorkloadPreset {
    fn calibrate(
        name: &'static str,
        description: &'static str,
        targets: BodyTailTargets,
        trace_jobs: usize,
    ) -> Self {
        let size_dist = fit_body_tail(targets)
            // dses-lint: allow(panic-hygiene) -- shipped preset targets are known-calibratable (exercised by tests)
            .unwrap_or_else(|e| panic!("preset {name} failed to calibrate: {e}"));
        Self {
            name,
            description,
            size_dist,
            targets,
            trace_jobs,
        }
    }

    /// Generate a synthetic trace: `n` jobs at Poisson system load `rho`
    /// on `hosts` hosts.
    #[must_use]
    pub fn trace(&self, n: usize, rho: f64, hosts: usize, seed: u64) -> Trace {
        WorkloadBuilder::new(self.size_dist.clone())
            .jobs(n)
            .poisson_load(rho, hosts)
            .seed(seed)
            .build()
    }

    /// Table-1-style description of the calibrated distribution.
    #[must_use]
    pub fn table1_row(&self) -> String {
        let (lo, hi) = self.size_dist.support();
        format!(
            "{:<10} mean={:<10.1} min={:<8.1} max={:<12.0} C^2={:<8.2} E[1/X]={:.5}",
            self.name,
            self.size_dist.mean(),
            lo,
            hi,
            self.size_dist.scv(),
            self.size_dist.raw_moment(-1),
        )
    }
}

/// The PSC Cray C90 workload — the paper's primary trace.
///
/// Calibration targets: mean ≈ 4 562 s, `C² = 43`, support
/// `[60 s, 2.22 × 10⁶ s]` (~26 days), and the §4.3 property that the
/// biggest 1.3 % of jobs carry half the load. ~55 000 jobs over a year.
#[must_use]
pub fn psc_c90() -> WorkloadPreset {
    WorkloadPreset::calibrate(
        "PSC-C90",
        "Pittsburgh Supercomputing Center Cray C90 batch jobs, Jan-Dec 1997",
        BodyTailTargets {
            mean: 4_562.0,
            scv: 43.0,
            min: 60.0,
            max: 2.22e6,
            tail_jobs: 0.013,
            tail_load: 0.5,
        },
        55_000,
    )
}

/// The PSC Cray J90 workload.
///
/// Same system family and year as the C90 trace; the paper reports the
/// policy comparison is "virtually identical" (appendix B). Calibration:
/// mean ≈ 3 010 s, `C² = 38`, max ≈ 1.8 × 10⁶ s, same tail-load shape.
#[must_use]
pub fn psc_j90() -> WorkloadPreset {
    WorkloadPreset::calibrate(
        "PSC-J90",
        "Pittsburgh Supercomputing Center Cray J90 batch jobs, Jan-Dec 1997",
        BodyTailTargets {
            mean: 3_010.0,
            scv: 38.0,
            min: 60.0,
            max: 1.8e6,
            tail_jobs: 0.013,
            tail_load: 0.5,
        },
        3_600,
    )
}

/// The CTC IBM SP2 workload (8-processor jobs).
///
/// Users were told jobs would be killed after 12 hours, so the support is
/// capped at 43 200 s and the variance is far lower than the Cray traces
/// — yet the paper finds the comparative policy performance unchanged
/// (appendix C). Calibration: mean ≈ 2 900 s, `C² = 2.2`, max = 43 200 s.
/// With the cap, load concentration is milder: the top quarter of jobs
/// carries three quarters of the load.
#[must_use]
pub fn ctc_sp2() -> WorkloadPreset {
    WorkloadPreset::calibrate(
        "CTC-SP2",
        "Cornell Theory Center IBM SP2 8-processor jobs, Jul 1996 - May 1997 (12h cap)",
        BodyTailTargets {
            mean: 2_900.0,
            scv: 2.2,
            min: 60.0,
            max: 43_200.0,
            tail_jobs: 0.25,
            tail_load: 0.75,
        },
        79_000,
    )
}

/// All three presets, C90 first (the paper's default).
#[must_use]
pub fn all_presets() -> Vec<WorkloadPreset> {
    vec![psc_c90(), psc_j90(), ctc_sp2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c90_matches_published_statistics() {
        let p = psc_c90();
        assert!((p.size_dist.mean() - 4_562.0).abs() / 4_562.0 < 1e-4);
        assert!((p.size_dist.scv() - 43.0).abs() / 43.0 < 1e-3);
        let (lo, hi) = p.size_dist.support();
        assert!((lo - 60.0).abs() < 1e-6);
        assert!((hi - 2.22e6).abs() < 1.0);
    }

    #[test]
    fn c90_heavy_tail_property_is_exact() {
        // §4.3: "half the total load is made up by only the biggest 1.3%
        // of all the jobs" — exact by construction of the mixture
        let p = psc_c90();
        let split = p.size_dist.components()[1].support().0;
        let (_, hi) = p.size_dist.support();
        assert!((p.size_dist.prob_in(split, hi) - 0.013).abs() < 1e-9);
        assert!((p.size_dist.tail_load_fraction(split) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ctc_is_much_less_variable_than_c90() {
        let c90 = psc_c90();
        let ctc = ctc_sp2();
        assert!(c90.size_dist.scv() > 10.0 * ctc.size_dist.scv());
        let (_, max) = ctc.size_dist.support();
        assert!((max - 43_200.0).abs() < 1.0, "CTC cap is 12 hours");
    }

    #[test]
    fn j90_matches_targets() {
        let p = psc_j90();
        assert!((p.size_dist.mean() - 3_010.0).abs() / 3_010.0 < 1e-4);
        assert!((p.size_dist.scv() - 38.0).abs() / 38.0 < 1e-3);
    }

    #[test]
    fn trace_generation_hits_load() {
        let p = psc_c90();
        let t = p.trace(30_000, 0.5, 2, 11);
        assert_eq!(t.len(), 30_000);
        let rho = t.system_load(2);
        // heavy-tailed sample means converge slowly; generous band
        assert!((rho - 0.5).abs() < 0.15, "load = {rho}");
    }

    #[test]
    fn sampled_trace_reflects_calibration() {
        let p = psc_c90();
        let t = p.trace(120_000, 0.7, 2, 19);
        let s = t.size_summary();
        assert!(
            (s.mean() - 4_562.0).abs() / 4_562.0 < 0.12,
            "sample mean = {}",
            s.mean()
        );
        assert!(s.scv() > 15.0, "sample C^2 = {}", s.scv());
    }

    #[test]
    fn most_jobs_are_small_but_load_is_in_the_tail() {
        // the defining supercomputing-workload shape
        let p = psc_c90();
        let d = &p.size_dist;
        let median = d.quantile(0.5);
        assert!(median < d.mean() / 2.0, "median {median} vs mean {}", d.mean());
    }

    #[test]
    fn table1_rows_render() {
        for p in all_presets() {
            let row = p.table1_row();
            assert!(row.contains(p.name));
            assert!(row.contains("C^2="));
        }
    }
}
