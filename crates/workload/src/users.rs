//! User-correlated workloads.
//!
//! The paper's §7 points at a way around user-supplied estimates:
//! "Recent work shows that in an MPP setting it is possible to predict
//! runtimes based on historical information of previous similar runs."
//! Prediction only works if a user's jobs *are* similar — so this module
//! generates traces with that structure: each job belongs to a user,
//! user activity follows a Zipf law (a few heavy users dominate, as in
//! real center logs), and a user's job sizes cluster around a personal
//! scale with tunable within-user variability.
//!
//! The companion predictor and prediction-driven SITA policy live in
//! `dses-core::prediction`.

use crate::job::Job;
use crate::trace::Trace;
use dses_dist::prelude::*;

/// A trace whose jobs carry user identities (parallel array indexed by
/// job id).
#[derive(Debug, Clone, PartialEq)]
pub struct UserTrace {
    /// the job trace
    pub trace: Trace,
    /// `user_of_job[job.id]` is the submitting user
    pub user_of_job: Vec<u32>,
}

impl UserTrace {
    /// The user of a given job id.
    #[must_use]
    pub fn user(&self, job_id: u64) -> u32 {
        self.user_of_job[job_id as usize]
    }

    /// Number of distinct users that actually submitted jobs.
    #[must_use]
    pub fn active_users(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for &u in &self.user_of_job {
            seen.insert(u);
        }
        seen.len()
    }
}

/// Builder for user-correlated synthetic traces.
#[derive(Debug, Clone)]
pub struct UserWorkloadBuilder<D: Distribution + Clone> {
    scale_dist: D,
    users: usize,
    zipf_exponent: f64,
    within_scv: f64,
    jobs: usize,
    rho: f64,
    hosts: usize,
    seed: u64,
}

impl<D: Distribution + Clone> UserWorkloadBuilder<D> {
    /// Start a builder. `scale_dist` supplies each user's personal size
    /// scale (e.g. the C90 preset mixture), so the marginal size
    /// distribution stays close to the target workload.
    #[must_use]
    pub fn new(scale_dist: D) -> Self {
        Self {
            scale_dist,
            users: 100,
            zipf_exponent: 1.0,
            within_scv: 0.25,
            jobs: 10_000,
            rho: 0.5,
            hosts: 2,
            seed: 0,
        }
    }

    /// Number of users in the population (default 100).
    #[must_use]
    pub fn users(mut self, users: usize) -> Self {
        assert!(users > 0, "need at least one user");
        self.users = users;
        self
    }

    /// Zipf activity exponent (default 1.0; 0 = uniform activity).
    #[must_use]
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        assert!(s >= 0.0, "zipf exponent must be nonnegative");
        self.zipf_exponent = s;
        self
    }

    /// Within-user size variability as a squared coefficient of variation
    /// (default 0.25 — a user's jobs vary by ±50 % around their scale;
    /// 0 makes every job of a user identical).
    #[must_use]
    pub fn within_scv(mut self, scv: f64) -> Self {
        assert!(scv >= 0.0, "within-user scv must be nonnegative");
        self.within_scv = scv;
        self
    }

    /// Number of jobs (default 10 000).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Poisson arrivals at system load `rho` for `hosts` hosts.
    #[must_use]
    pub fn poisson_load(mut self, rho: f64, hosts: usize) -> Self {
        assert!(rho > 0.0, "load must be positive");
        assert!(hosts > 0, "need at least one host");
        self.rho = rho;
        self.hosts = hosts;
        self
    }

    /// RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the user-attributed trace.
    #[must_use]
    pub fn build(&self) -> UserTrace {
        let root = Rng64::seed_from(self.seed);
        let mut scale_rng = root.stream(11);
        let mut pick_rng = root.stream(12);
        let mut size_rng = root.stream(13);
        let mut gap_rng = root.stream(14);
        // per-user scales from the target workload distribution
        let scales: Vec<f64> = (0..self.users)
            .map(|_| self.scale_dist.sample(&mut scale_rng))
            .collect();
        // Zipf activity weights
        let weights: Vec<f64> = (1..=self.users)
            .map(|k| 1.0 / (k as f64).powf(self.zipf_exponent))
            .collect();
        let total_w: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total_w;
                Some(*acc)
            })
            .collect();
        // within-user multiplicative jitter with mean 1
        let jitter = (self.within_scv > 0.0)
            // dses-lint: allow(panic-hygiene) -- scv > 0 guarded above; mean-one lognormals always fit
            .then(|| LogNormal::fit_mean_scv(1.0, self.within_scv).expect("valid scv"));
        // arrival rate for the target load, based on the *scale* mean
        // (the jitter is mean-one, so the marginal mean matches)
        let rate = self.rho * self.hosts as f64 / self.scale_dist.mean();
        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(self.jobs);
        let mut user_of_job = Vec::with_capacity(self.jobs);
        for id in 0..self.jobs {
            t += gap_rng.standard_exponential() / rate;
            let draw = pick_rng.uniform();
            let u = cumulative.partition_point(|&c| c < draw).min(self.users - 1);
            let mut size = scales[u];
            if let Some(j) = &jitter {
                size *= j.sample(&mut size_rng);
            }
            jobs.push(Job::new(id as u64, t, size.max(1e-9)));
            user_of_job.push(u as u32);
        }
        UserTrace {
            trace: Trace::new(jobs),
            user_of_job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::psc_c90;

    fn builder() -> UserWorkloadBuilder<Mixture> {
        UserWorkloadBuilder::new(psc_c90().size_dist)
            .users(50)
            .jobs(20_000)
            .poisson_load(0.6, 2)
            .seed(7)
    }

    #[test]
    fn produces_attributed_jobs() {
        let ut = builder().build();
        assert_eq!(ut.trace.len(), 20_000);
        assert_eq!(ut.user_of_job.len(), 20_000);
        assert!(ut.active_users() > 10);
        assert!(ut.user_of_job.iter().all(|&u| (u as usize) < 50));
    }

    #[test]
    fn zipf_concentrates_activity() {
        let ut = builder().zipf_exponent(1.5).build();
        let mut counts = vec![0usize; 50];
        for &u in &ut.user_of_job {
            counts[u as usize] += 1;
        }
        // user 0 (heaviest) should dominate user 49 (lightest)
        assert!(counts[0] > 20 * counts[49].max(1));
        // and uniform activity should not
        let flat = builder().zipf_exponent(0.0).build();
        let mut fcounts = vec![0usize; 50];
        for &u in &flat.user_of_job {
            fcounts[u as usize] += 1;
        }
        let (max, min) = (
            *fcounts.iter().max().unwrap(),
            *fcounts.iter().min().unwrap(),
        );
        assert!(max < 3 * min.max(1), "uniform activity spread: {max} vs {min}");
    }

    #[test]
    fn within_user_sizes_cluster() {
        let ut = builder().within_scv(0.05).build();
        // pick the busiest user and check its size spread is tight
        let mut by_user: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for job in ut.trace.jobs() {
            by_user
                .entry(ut.user(job.id))
                .or_default()
                .push(job.size);
        }
        let (_, sizes) = by_user
            .iter()
            .max_by_key(|(_, v)| v.len())
            .map(|(u, v)| (*u, v.clone()))
            .unwrap();
        let s = dses_dist::Summary::from_values(&sizes);
        assert!(
            s.scv() < 0.2,
            "within-user C^2 should be small: {}",
            s.scv()
        );
    }

    #[test]
    fn zero_within_variability_makes_users_deterministic() {
        let ut = builder().within_scv(0.0).jobs(2_000).build();
        let mut first: std::collections::HashMap<u32, f64> = Default::default();
        for job in ut.trace.jobs() {
            let u = ut.user(job.id);
            let entry = first.entry(u).or_insert(job.size);
            assert_eq!(*entry, job.size, "user {u} sizes should be constant");
        }
    }

    #[test]
    fn marginal_mean_tracks_the_scale_distribution() {
        // Uniform activity over many users so the marginal mean is an
        // honest average of many iid scale draws (Zipf weighting makes
        // the marginal hostage to a handful of users — by design).
        let ut = builder()
            .users(400)
            .zipf_exponent(0.0)
            .jobs(60_000)
            .within_scv(0.25)
            .seed(9)
            .build();
        let mean = ut.trace.size_summary().mean();
        let want = psc_c90().size_dist.mean();
        assert!(
            mean > want / 4.0 && mean < want * 4.0,
            "marginal mean {mean} vs scale mean {want}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = builder().build();
        let b = builder().build();
        assert_eq!(a, b);
    }
}
