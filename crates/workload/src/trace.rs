//! The [`Trace`] container: an arrival-ordered sequence of jobs plus the
//! statistics the paper reports about it.

use crate::job::Job;
use dses_dist::Summary;

/// An arrival-ordered job trace.
///
/// Alongside the array-of-structs job list, the trace keeps
/// structure-of-arrays copies of the arrival times, sizes, and reciprocal
/// sizes: the simulation hot loops stream through those contiguous `f64`
/// slices (one cache line holds 8 jobs' worth of each) instead of
/// striding across 24-byte [`Job`] records. The reciprocals turn the
/// per-job `1/size` slowdown divide in the metrics path into a load —
/// `1.0 / size` is one IEEE operation, so computing it once here is
/// bit-identical to computing it per record. Every constructor funnels
/// through [`Trace::new`], so the views can never fall out of sync.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    jobs: Vec<Job>,
    arrivals: Vec<f64>,
    sizes: Vec<f64>,
    inv_sizes: Vec<f64>,
}

impl Trace {
    /// Build a trace from jobs, sorting by arrival time and renumbering
    /// ids in arrival order (stable for ties).
    #[must_use]
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as u64;
        }
        let arrivals = jobs.iter().map(|j| j.arrival).collect();
        let sizes: Vec<f64> = jobs.iter().map(|j| j.size).collect();
        let inv_sizes = sizes.iter().map(|&s| 1.0 / s).collect();
        Self { jobs, arrivals, sizes, inv_sizes }
    }

    /// The jobs, in arrival order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The arrival times in arrival order, as a contiguous slice
    /// (structure-of-arrays view for the simulation hot loops).
    #[must_use]
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Trace duration: last arrival time minus first (0 for < 2 jobs).
    #[must_use]
    pub fn duration(&self) -> f64 {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(first), Some(last)) => last.arrival - first.arrival,
            _ => 0.0,
        }
    }

    /// Mean arrival rate λ = (n − 1) / duration (jobs per second).
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 || self.jobs.len() < 2 {
            0.0
        } else {
            (self.jobs.len() - 1) as f64 / d
        }
    }

    /// Offered *system* load for a server with `hosts` identical hosts:
    /// `ρ = λ · E[X] / h`. The system is stable iff ρ < 1 (assuming the
    /// policy can use all hosts).
    #[must_use]
    pub fn system_load(&self, hosts: usize) -> f64 {
        assert!(hosts > 0, "need at least one host");
        let mean_size = self.size_summary().mean();
        self.arrival_rate() * mean_size / hosts as f64
    }

    /// Summary statistics of the job sizes (the paper's Table 1 row).
    #[must_use]
    pub fn size_summary(&self) -> Summary {
        Summary::from_values(self.sizes())
    }

    /// Summary statistics of the interarrival times.
    #[must_use]
    pub fn interarrival_summary(&self) -> Summary {
        let gaps: Vec<f64> = self
            .jobs
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        Summary::from_values(&gaps)
    }

    /// The job sizes in arrival order, as a contiguous slice
    /// (structure-of-arrays view for the simulation hot loops).
    #[must_use]
    pub fn sizes(&self) -> &[f64] {
        &self.sizes
    }

    /// The reciprocal job sizes (`1.0 / size`) in arrival order,
    /// precomputed once at construction so the metrics hot path replaces
    /// its per-job slowdown divide with a load. Bitwise equal to
    /// `1.0 / sizes()[i]` by construction.
    #[must_use]
    pub fn inv_sizes(&self) -> &[f64] {
        &self.inv_sizes
    }

    /// Split into (first half, second half) by arrival order — the paper
    /// fits cutoffs on one half of the trace and evaluates on the other
    /// (§4.1).
    #[must_use]
    pub fn split_half(&self) -> (Trace, Trace) {
        let mid = self.jobs.len() / 2;
        let first = Trace::new(self.jobs[..mid].to_vec());
        // re-zero the second half's clock so both halves start at t ≈ 0
        let offset = self.jobs.get(mid).map_or(0.0, |j| j.arrival);
        let second = Trace::new(
            self.jobs[mid..]
                .iter()
                .map(|j| Job::new(j.id, j.arrival - offset, j.size))
                .collect(),
        );
        (first, second)
    }

    /// Return a copy with every interarrival time multiplied by `factor`
    /// (> 0). This is the paper's §6 operation: take the (bursty)
    /// empirical arrival sequence and scale it to produce a target load,
    /// preserving its correlation structure.
    #[must_use]
    pub fn scale_interarrivals(&self, factor: f64) -> Trace {
        assert!(factor > 0.0 && factor.is_finite(), "factor must be positive");
        let base = self.jobs.first().map_or(0.0, |j| j.arrival);
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job::new(j.id, base + (j.arrival - base) * factor, j.size))
            .collect();
        Trace::new(jobs)
    }

    /// Return a copy scaled so the *system* load on `hosts` hosts equals
    /// `target_load`.
    #[must_use]
    pub fn scale_to_load(&self, hosts: usize, target_load: f64) -> Trace {
        assert!(target_load > 0.0, "target load must be positive");
        let current = self.system_load(hosts);
        assert!(current > 0.0, "cannot scale an empty or instantaneous trace");
        self.scale_interarrivals(current / target_load)
    }

    /// Keep only the first `n` jobs.
    #[must_use]
    pub fn truncate(&self, n: usize) -> Trace {
        Trace::new(self.jobs.iter().take(n).copied().collect())
    }

    /// A per-host backlog capacity hint for simulation buffers (completion
    /// heaps / departure deques): how many in-system jobs one of `hosts`
    /// hosts should expect to hold at once. Scales with the trace's share
    /// per host — stable systems keep backlogs far below `n/h`, so an
    /// eighth of the share absorbs even near-saturation bursts — clamped
    /// to `[32, 4096]` so tiny traces stay tiny and giant traces don't
    /// pre-commit O(n) memory per host.
    #[must_use]
    pub fn backlog_hint(&self, hosts: usize) -> usize {
        ((self.jobs.len() / hosts.max(1)) / 8).clamp(32, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Trace {
        Trace::new(vec![
            Job::new(9, 4.0, 2.0),
            Job::new(7, 0.0, 1.0),
            Job::new(8, 2.0, 4.0),
            Job::new(6, 6.0, 1.0),
        ])
    }

    #[test]
    fn sorts_and_renumbers() {
        let t = toy();
        let arrivals: Vec<f64> = t.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![0.0, 2.0, 4.0, 6.0]);
        let ids: Vec<u64> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn duration_and_rate() {
        let t = toy();
        assert_eq!(t.duration(), 6.0);
        assert!((t.arrival_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn system_load_definition() {
        let t = toy();
        // mean size 2.0, λ = 0.5 → 1-host load 1.0, 2-host load 0.5
        assert!((t.system_load(1) - 1.0).abs() < 1e-12);
        assert!((t.system_load(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn size_summary_matches_table1_fields() {
        let t = toy();
        let s = t.size_summary();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn split_half_preserves_jobs_and_rezeros() {
        let t = toy();
        let (a, b) = t.split_half();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.jobs()[0].arrival, 0.0);
        assert_eq!(b.jobs()[1].arrival, 2.0);
    }

    #[test]
    fn scaling_interarrivals_scales_load() {
        let t = toy();
        let slow = t.scale_interarrivals(2.0);
        assert!((slow.system_load(1) - 0.5).abs() < 1e-12);
        let fast = t.scale_to_load(1, 0.8);
        assert!((fast.system_load(1) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn scale_preserves_sizes_and_order() {
        let t = toy();
        let s = t.scale_interarrivals(3.0);
        assert_eq!(s.sizes(), t.sizes());
    }

    #[test]
    fn interarrival_summary() {
        let t = toy();
        let s = t.interarrival_summary();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!(s.scv().abs() < 1e-12); // perfectly regular
    }

    #[test]
    fn inv_sizes_are_bitwise_reciprocals() {
        let t = toy();
        assert_eq!(t.inv_sizes().len(), t.len());
        for (&s, &inv) in t.sizes().iter().zip(t.inv_sizes()) {
            assert_eq!(inv.to_bits(), (1.0 / s).to_bits());
        }
    }

    #[test]
    fn truncate_keeps_prefix() {
        let t = toy().truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs()[1].arrival, 2.0);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.arrival_rate(), 0.0);
    }
}

impl Trace {
    /// Keep only jobs whose size lies in `(lo, hi]` — e.g. to study one
    /// SITA band of a real trace in isolation.
    #[must_use]
    pub fn filter_sizes(&self, lo: f64, hi: f64) -> Trace {
        Trace::new(
            self.jobs
                .iter()
                .filter(|j| j.size > lo && j.size <= hi)
                .copied()
                .collect(),
        )
    }

    /// Keep only jobs arriving in `[t0, t1)`, re-zeroing the clock — e.g.
    /// to cut a month out of a year-long SWF log.
    #[must_use]
    pub fn window(&self, t0: f64, t1: f64) -> Trace {
        assert!(t1 > t0, "window must be non-empty");
        Trace::new(
            self.jobs
                .iter()
                .filter(|j| j.arrival >= t0 && j.arrival < t1)
                .map(|j| Job::new(j.id, j.arrival - t0, j.size))
                .collect(),
        )
    }

    /// Interleave two traces into one arrival-ordered stream — e.g. to
    /// model two submission sources sharing a server bank.
    #[must_use]
    pub fn merge(&self, other: &Trace) -> Trace {
        let mut jobs = self.jobs.clone();
        jobs.extend(other.jobs.iter().copied());
        Trace::new(jobs)
    }
}

#[cfg(test)]
mod manipulation_tests {
    use super::*;

    fn toy() -> Trace {
        Trace::new(vec![
            Job::new(0, 0.0, 1.0),
            Job::new(1, 2.0, 10.0),
            Job::new(2, 4.0, 3.0),
            Job::new(3, 6.0, 10.0),
        ])
    }

    #[test]
    fn filter_sizes_is_half_open() {
        let t = toy().filter_sizes(1.0, 10.0);
        // keeps sizes in (1, 10]: 10, 3, 10
        assert_eq!(t.len(), 3);
        assert!(t.sizes().iter().all(|&s| s > 1.0 && s <= 10.0));
    }

    #[test]
    fn window_rezeros_clock() {
        let t = toy().window(2.0, 6.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs()[0].arrival, 0.0);
        assert_eq!(t.jobs()[1].arrival, 2.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn window_rejects_empty_range() {
        let _ = toy().window(5.0, 5.0);
    }

    #[test]
    fn merge_interleaves_and_renumbers() {
        let a = Trace::new(vec![Job::new(0, 1.0, 1.0), Job::new(1, 5.0, 1.0)]);
        let b = Trace::new(vec![Job::new(0, 3.0, 2.0)]);
        let m = a.merge(&b);
        assert_eq!(m.len(), 3);
        let arrivals: Vec<f64> = m.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![1.0, 3.0, 5.0]);
        let ids: Vec<u64> = m.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn band_of_trace_matches_sita_routing() {
        // filtering at a cutoff reproduces what a SITA host would see
        let t = toy();
        let short = t.filter_sizes(0.0, 3.0);
        let long = t.filter_sizes(3.0, f64::INFINITY);
        assert_eq!(short.len() + long.len(), t.len());
        assert!(short.sizes().iter().all(|&s| s <= 3.0));
        assert!(long.sizes().iter().all(|&s| s > 3.0));
    }
}
