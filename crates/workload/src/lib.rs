//! # dses-workload — supercomputing workloads for the dses simulator
//!
//! This crate produces the job streams that drive the trace-driven
//! simulations of Schroeder & Harchol-Balter (HPDC 2000): batch jobs with
//! an arrival time and a service requirement (CPU seconds), destined for a
//! distributed server of identical multiprocessor hosts.
//!
//! * [`Job`] / [`Trace`] — the job record and the trace container, with
//!   the Table-1 summary statistics, load computation and the half-split
//!   used to fit SITA cutoffs on training data and evaluate on held-out
//!   data (paper §4.1).
//! * [`arrivals`] — arrival processes: Poisson (the paper's default,
//!   §2.2), general renewal, and a bursty Markov-modulated Poisson process
//!   standing in for the paper's trace-scaled arrivals (§6).
//! * [`synthetic`] — turn any `dses-dist` size distribution plus an
//!   arrival process into a [`Trace`] at a chosen system load.
//! * [`presets`] — calibrated stand-ins for the PSC C90, PSC J90 and CTC
//!   SP2 traces (the real logs are proprietary; the presets match the
//!   published mean, `C²` and tail-load statistics — see DESIGN.md).
//! * [`swf`] — a Standard Workload Format parser, so genuine traces from
//!   the Feitelson Parallel Workloads Archive can be dropped in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)`-style validation is intentional: it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod arrivals;
pub mod burstiness;
pub mod job;
pub mod presets;
pub mod swf;
pub mod synthetic;
pub mod trace;
pub mod users;

pub use arrivals::{ArrivalProcess, DiurnalPoisson, Mmpp2, Poisson, Renewal, ReplayArrivals};
pub use burstiness::{burstiness_report, BurstinessReport};
pub use job::Job;
pub use presets::{ctc_sp2, psc_c90, psc_j90, WorkloadPreset};
pub use synthetic::WorkloadBuilder;
pub use trace::Trace;
pub use users::{UserTrace, UserWorkloadBuilder};
