//! Quantifying arrival-process burstiness.
//!
//! §6's whole argument turns on two properties of the traces' arrival
//! sequences: high interarrival variability and positive correlation
//! ("many jobs with similar runtimes arrive simultaneously", §3.3). This
//! module measures both on any [`Trace`]:
//!
//! * interarrival `C²` (1 for Poisson, ≫ 1 for bursty);
//! * lag-k autocorrelation of interarrival gaps (0 for any renewal
//!   process, > 0 when bursts cluster);
//! * the **index of dispersion for counts** `IDC(t) = Var[N(t)]/E[N(t)]`
//!   (1 for Poisson at every window; grows with the window for
//!   positively correlated arrivals — the standard teletraffic burstiness
//!   curve).

use crate::trace::Trace;

/// Burstiness report for a trace's arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstinessReport {
    /// squared coefficient of variation of interarrival gaps
    pub interarrival_scv: f64,
    /// lag-1..=`lags` autocorrelation of the gaps
    pub gap_autocorrelation: Vec<f64>,
    /// `(window, IDC(window))` samples, geometrically spaced
    pub idc: Vec<(f64, f64)>,
}

/// Lag-`k` sample autocorrelation of `xs`.
#[must_use]
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return 0.0;
    }
    let cov = xs[..n - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum::<f64>()
        / (n - lag) as f64;
    cov / var
}

/// Index of dispersion for counts at a given window length: split the
/// trace's span into windows of `window` seconds, count arrivals per
/// window, return `Var[N]/E[N]`.
#[must_use]
pub fn index_of_dispersion(trace: &Trace, window: f64) -> f64 {
    assert!(window > 0.0, "window must be positive");
    let jobs = trace.jobs();
    if jobs.len() < 2 {
        return 0.0;
    }
    let start = jobs[0].arrival;
    let span = trace.duration();
    let bins = (span / window).floor() as usize;
    if bins < 2 {
        return 0.0;
    }
    let mut counts = vec![0u64; bins];
    for j in jobs {
        let idx = ((j.arrival - start) / window) as usize;
        if idx < bins {
            counts[idx] += 1;
        }
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var / mean
}

/// Produce the full burstiness report. `lags` autocorrelation lags and
/// IDC at `idc_points` windows spanning 1×–1000× the mean gap.
#[must_use]
pub fn burstiness_report(trace: &Trace, lags: usize, idc_points: usize) -> BurstinessReport {
    let gaps: Vec<f64> = trace
        .jobs()
        .windows(2)
        .map(|w| w[1].arrival - w[0].arrival)
        .collect();
    let scv = if gaps.is_empty() {
        0.0
    } else {
        trace.interarrival_summary().scv()
    };
    let gap_autocorrelation = (1..=lags).map(|k| autocorrelation(&gaps, k)).collect();
    let mean_gap = if gaps.is_empty() {
        1.0
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };
    let idc = (0..idc_points)
        .map(|i| {
            let w = mean_gap * 10f64.powf(3.0 * i as f64 / (idc_points.max(2) - 1) as f64);
            (w, index_of_dispersion(trace, w))
        })
        .collect();
    BurstinessReport {
        interarrival_scv: scv,
        gap_autocorrelation,
        idc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Mmpp2;
    use crate::synthetic::WorkloadBuilder;
    use dses_dist::prelude::*;

    fn poisson_trace() -> Trace {
        WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
            .jobs(60_000)
            .poisson_load(0.5, 1)
            .seed(3)
            .build()
    }

    fn bursty_trace() -> Trace {
        WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
            .jobs(60_000)
            .arrivals(Mmpp2::bursty(0.5, 30.0, 100.0))
            .seed(3)
            .build()
    }

    #[test]
    fn poisson_is_the_unit_baseline() {
        let r = burstiness_report(&poisson_trace(), 3, 4);
        assert!((r.interarrival_scv - 1.0).abs() < 0.05, "scv = {}", r.interarrival_scv);
        for &rho in &r.gap_autocorrelation {
            assert!(rho.abs() < 0.02, "autocorrelation {rho}");
        }
        for &(w, idc) in &r.idc {
            assert!((idc - 1.0).abs() < 0.25, "IDC({w}) = {idc}");
        }
    }

    #[test]
    fn mmpp_is_bursty_on_every_axis() {
        let r = burstiness_report(&bursty_trace(), 3, 4);
        assert!(r.interarrival_scv > 1.5, "scv = {}", r.interarrival_scv);
        assert!(
            r.gap_autocorrelation[0] > 0.05,
            "lag-1 autocorrelation = {}",
            r.gap_autocorrelation[0]
        );
        // IDC grows with the window for correlated arrivals
        let first = r.idc.first().unwrap().1;
        let last = r.idc.last().unwrap().1;
        assert!(last > 3.0 * first.max(0.5), "IDC curve flat: {:?}", r.idc);
    }

    #[test]
    fn autocorrelation_of_alternating_sequence_is_negative() {
        let xs: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { 2.0 }).collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[5.0; 100], 1), 0.0); // zero variance
    }

    #[test]
    fn idc_handles_short_traces() {
        let t = WorkloadBuilder::new(Deterministic::new(1.0).unwrap())
            .jobs(3)
            .poisson_load(0.5, 1)
            .seed(1)
            .build();
        // too few windows: defined as 0 rather than noise
        assert_eq!(index_of_dispersion(&t, t.duration() * 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn idc_rejects_nonpositive_window() {
        let _ = index_of_dispersion(&poisson_trace(), 0.0);
    }
}
