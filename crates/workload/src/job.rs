//! The job record.

/// A batch job: the unit of work dispatched to exactly one host.
///
/// In the paper's architectural model a job occupies a whole
/// multiprocessor host, runs to completion, and is never preempted; its
/// only scheduling-relevant attribute is its service requirement (CPU
/// time on a dedicated host). Memory is *not* modelled because each job
/// has exclusive access to its host's memory (paper §1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Sequence number in arrival order (0-based).
    pub id: u64,
    /// Arrival time at the dispatcher, in seconds from trace start.
    pub arrival: f64,
    /// Service requirement in seconds on a dedicated host.
    pub size: f64,
}

impl Job {
    /// Create a job. `arrival` must be nonnegative and `size` positive.
    ///
    /// # Panics
    /// Panics on NaN/negative arrival or non-positive size — job streams
    /// are internal data and malformed ones are programming errors.
    #[must_use]
    pub fn new(id: u64, arrival: f64, size: f64) -> Self {
        assert!(
            arrival >= 0.0 && arrival.is_finite(),
            "job {id}: arrival {arrival} must be finite and nonnegative"
        );
        assert!(
            size > 0.0 && size.is_finite(),
            "job {id}: size {size} must be finite and positive"
        );
        Self { id, arrival, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_valid_job() {
        let j = Job::new(3, 10.0, 2.5);
        assert_eq!(j.id, 3);
        assert_eq!(j.arrival, 10.0);
        assert_eq!(j.size, 2.5);
    }

    #[test]
    #[should_panic(expected = "arrival")]
    fn rejects_negative_arrival() {
        let _ = Job::new(0, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "size")]
    fn rejects_zero_size() {
        let _ = Job::new(0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "size")]
    fn rejects_nan_size() {
        let _ = Job::new(0, 0.0, f64::NAN);
    }
}
