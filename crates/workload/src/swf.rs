//! Standard Workload Format (SWF) support.
//!
//! The CTC trace in the paper comes from Feitelson's Parallel Workloads
//! Archive, which distributes logs in SWF: one job per line, 18
//! whitespace-separated fields, `;`-prefixed comment headers. Users who
//! have real logs (PSC, CTC, or any archive trace) can load them here and
//! run every experiment in this workspace against genuine data; the rest
//! of the workspace falls back to the calibrated presets.
//!
//! Field reference (0-based index → meaning): 0 job number, 1 submit
//! time, 2 wait time, 3 run time, 4 allocated processors, 5 average CPU
//! time, 6 used memory, 7 requested processors, 8 requested time,
//! 9 requested memory, 10 status, 11 user, 12 group, 13 executable,
//! 14 queue, 15 partition, 16 preceding job, 17 think time.

use crate::job::Job;
use crate::trace::Trace;

/// Error from SWF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number where parsing failed
    pub line: usize,
    /// what went wrong
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Filtering options applied while reading an SWF log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfFilter {
    /// keep only jobs requesting exactly this many processors
    /// (the paper keeps only 8-processor CTC jobs — footnote 2)
    pub exact_processors: Option<u32>,
    /// drop jobs with non-positive runtime (cancelled / missing data)
    pub require_positive_runtime: bool,
    /// keep only jobs with SWF status 1 ("completed")
    pub completed_only: bool,
}

impl Default for SwfFilter {
    fn default() -> Self {
        Self {
            exact_processors: None,
            require_positive_runtime: true,
            completed_only: false,
        }
    }
}

/// One parsed SWF record (the subset of fields this workspace uses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfRecord {
    /// SWF job number
    pub job_number: i64,
    /// submit time, seconds from log start
    pub submit: f64,
    /// measured run time, seconds
    pub run_time: f64,
    /// number of allocated processors (−1 if unknown)
    pub processors: i64,
    /// requested processors (−1 if unknown)
    pub requested_processors: i64,
    /// completion status (1 = completed)
    pub status: i64,
}

/// Parse SWF text into records (no filtering).
pub fn parse_records(text: &str) -> Result<Vec<SwfRecord>, SwfError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 11 {
            return Err(SwfError {
                line: line_no,
                message: format!("expected at least 11 fields, found {}", fields.len()),
            });
        }
        let get_i64 = |i: usize| -> Result<i64, SwfError> {
            fields[i].parse::<i64>().map_err(|e| SwfError {
                line: line_no,
                message: format!("field {i} ({:?}) is not an integer: {e}", fields[i]),
            })
        };
        let get_f64 = |i: usize| -> Result<f64, SwfError> {
            fields[i].parse::<f64>().map_err(|e| SwfError {
                line: line_no,
                message: format!("field {i} ({:?}) is not a number: {e}", fields[i]),
            })
        };
        out.push(SwfRecord {
            job_number: get_i64(0)?,
            submit: get_f64(1)?,
            run_time: get_f64(3)?,
            processors: get_i64(4)?,
            requested_processors: get_i64(7)?,
            status: get_i64(10)?,
        });
    }
    Ok(out)
}

/// Parse SWF text directly into a [`Trace`], applying `filter`.
///
/// The job *size* is the SWF run time and the arrival is the submit time
/// — exactly the trace-driven-simulation inputs of the paper.
pub fn parse_trace(text: &str, filter: SwfFilter) -> Result<Trace, SwfError> {
    let records = parse_records(text)?;
    let jobs: Vec<Job> = records
        .into_iter()
        .filter(|r| {
            if filter.require_positive_runtime && !(r.run_time > 0.0) {
                return false;
            }
            if filter.completed_only && r.status != 1 {
                return false;
            }
            if let Some(p) = filter.exact_processors {
                let procs = if r.requested_processors > 0 {
                    r.requested_processors
                } else {
                    r.processors
                };
                if procs != i64::from(p) {
                    return false;
                }
            }
            r.submit >= 0.0
        })
        .enumerate()
        .map(|(i, r)| Job::new(i as u64, r.submit, r.run_time))
        .collect();
    Ok(Trace::new(jobs))
}

/// Render a trace back out as minimal SWF (unknown fields written as −1).
#[must_use]
pub fn write_swf(trace: &Trace, processors_per_job: u32) -> String {
    let mut out = String::with_capacity(trace.len() * 64);
    out.push_str("; generated by dses-workload\n");
    out.push_str("; UnixStartTime: 0\n");
    for j in trace.jobs() {
        // job submit wait run procs cpu mem reqp reqt reqm status ...
        out.push_str(&format!(
            "{} {:.0} -1 {:.0} {} -1 -1 {} -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            j.id + 1,
            j.arrival,
            j.size,
            processors_per_job,
            processors_per_job,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: test machine
1 0 5 100 8 -1 -1 8 120 -1 1 1 1 -1 1 -1 -1 -1
2 10 0 50 4 -1 -1 4 60 -1 1 2 1 -1 1 -1 -1 -1
3 20 2 0 8 -1 -1 8 30 -1 5 3 1 -1 1 -1 -1 -1
4 30 1 200 8 -1 -1 8 240 -1 0 4 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_records_skipping_comments() {
        let recs = parse_records(SAMPLE).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].job_number, 1);
        assert_eq!(recs[1].run_time, 50.0);
        assert_eq!(recs[3].status, 0);
    }

    #[test]
    fn default_filter_drops_zero_runtime() {
        let t = parse_trace(SAMPLE, SwfFilter::default()).unwrap();
        assert_eq!(t.len(), 3); // job 3 has run_time 0
    }

    #[test]
    fn processor_filter_mimics_paper_footnote() {
        // the paper used only the 8-processor CTC jobs
        let t = parse_trace(
            SAMPLE,
            SwfFilter {
                exact_processors: Some(8),
                ..SwfFilter::default()
            },
        )
        .unwrap();
        assert_eq!(t.len(), 2); // jobs 1 and 4 (job 3 dropped: runtime 0)
    }

    #[test]
    fn completed_only_filter() {
        let t = parse_trace(
            SAMPLE,
            SwfFilter {
                completed_only: true,
                ..SwfFilter::default()
            },
        )
        .unwrap();
        assert_eq!(t.len(), 2); // jobs 1 and 2 have status 1
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_records("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("at least 11 fields"));
        let err = parse_records("a 0 0 1 1 1 1 1 1 1 1\n").unwrap_err();
        assert!(err.message.contains("not an integer"));
    }

    #[test]
    fn round_trip_through_writer() {
        let t = parse_trace(SAMPLE, SwfFilter::default()).unwrap();
        let text = write_swf(&t, 8);
        let t2 = parse_trace(&text, SwfFilter::default()).unwrap();
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.jobs().iter().zip(t2.jobs()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.size, b.size);
        }
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let t = parse_trace("; nothing here\n", SwfFilter::default()).unwrap();
        assert!(t.is_empty());
    }
}
