//! Findings and their rendering — human text and machine `--json`.

use std::fmt::Write as _;

/// Severity of a finding. Today every rule is `Deny` (the binary exits
/// nonzero); `Warn` exists so informational diagnostics — unused
/// waivers — can ride the same pipeline without failing the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run unless waived.
    Deny,
    /// Reported, never fails the run.
    Warn,
}

/// One diagnostic: a rule fired at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`determinism`, `no-alloc`, …).
    pub rule: &'static str,
    /// Human explanation, including the offending construct.
    pub message: String,
    /// Whether an inline waiver suppressed it.
    pub waived: bool,
    /// Deny (gates the build) or Warn (informational).
    pub severity: Severity,
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived ones included (so `--json` consumers can see
    /// the full waiver surface).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that should fail the run: unwaived and `Deny`.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| !f.waived && f.severity == Severity::Deny)
    }

    /// Does the run pass?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Sort by file, then line, then rule — deterministic output order
    /// regardless of scan order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Human-readable rendering: one `file:line: [rule] message` per
    /// finding, waived findings summarised, final verdict line.
    #[must_use]
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.waived && !verbose {
                continue;
            }
            let tag = match (f.waived, f.severity) {
                (true, _) => "waived",
                (false, Severity::Warn) => "warning",
                (false, Severity::Deny) => "error",
            };
            let _ = writeln!(out, "{}:{}: {tag}[{}] {}", f.file, f.line, f.rule, f.message);
        }
        let errors = self.unwaived().count();
        let waived = self.findings.iter().filter(|f| f.waived).count();
        let warnings = self
            .findings
            .iter()
            .filter(|f| !f.waived && f.severity == Severity::Warn)
            .count();
        let _ = writeln!(
            out,
            "dses-lint: {} file(s), {errors} error(s), {warnings} warning(s), {waived} waiver(s) honoured",
            self.files_scanned
        );
        out
    }

    /// GitHub Actions workflow annotations: one
    /// `::error file=…,line=…::message` per unwaived finding (warnings
    /// use `::warning`), followed by the text summary line as a
    /// `::notice`. Message data is escaped per the workflow-command
    /// rules: `%` → `%25`, `\r` → `%0D`, `\n` → `%0A`.
    #[must_use]
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.waived {
                continue;
            }
            let cmd = match f.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
            };
            let _ = writeln!(
                out,
                "::{cmd} file={},line={},title=dses-lint {}::{}",
                f.file,
                f.line,
                f.rule,
                gh_escape(&f.message)
            );
        }
        let _ = writeln!(
            out,
            "::notice::dses-lint: {} file(s), {} error(s), {} warning(s)",
            self.files_scanned,
            self.unwaived().count(),
            self.findings
                .iter()
                .filter(|f| !f.waived && f.severity == Severity::Warn)
                .count()
        );
        out
    }

    /// Machine-readable rendering: a single JSON object. Hand-rolled —
    /// the only escaping needed is for path/message strings.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i + 1 == self.findings.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"tier\": {}, \"severity\": {}, \"waived\": {}, \"message\": {}}}{sep}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(crate::rules::tier_of(f.rule)),
                json_str(match f.severity {
                    Severity::Deny => "deny",
                    Severity::Warn => "warn",
                }),
                f.waived,
                json_str(&f.message),
            );
        }
        let _ = writeln!(
            out,
            "  ],\n  \"files_scanned\": {},\n  \"errors\": {},\n  \"clean\": {}\n}}",
            self.files_scanned,
            self.unwaived().count(),
            self.clean()
        );
        out
    }
}

/// Escape message data for a GitHub workflow command.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, line: u32, waived: bool) -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line,
            rule,
            message: "a \"message\" with quotes".into(),
            waived,
            severity: Severity::Deny,
        }
    }

    #[test]
    fn clean_accounts_for_waivers_and_warnings() {
        let mut r = Report::default();
        r.findings.push(finding("determinism", 3, true));
        assert!(r.clean());
        r.findings.push(Finding {
            severity: Severity::Warn,
            ..finding("unused-waiver", 9, false)
        });
        assert!(r.clean());
        r.findings.push(finding("no-alloc", 5, false));
        assert!(!r.clean());
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.findings.push(finding("determinism", 3, false));
        let json = r.render_json();
        assert!(json.contains("\\\"message\\\""));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn text_hides_waived_unless_verbose() {
        let mut r = Report::default();
        r.findings.push(finding("determinism", 3, true));
        assert!(!r.render_text(false).contains("waived["));
        assert!(r.render_text(true).contains("waived[determinism]"));
    }

    #[test]
    fn github_annotations_escape_and_skip_waived() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.findings.push(Finding {
            message: "path a → b\nwith 100% detail".into(),
            ..finding("no-alloc-transitive", 7, false)
        });
        r.findings.push(finding("determinism", 3, true));
        let gh = r.render_github();
        assert!(gh.contains(
            "::error file=crates/x/src/lib.rs,line=7,title=dses-lint no-alloc-transitive::"
        ));
        assert!(gh.contains("path a → b%0Awith 100%25 detail"));
        assert!(!gh.contains("line=3"), "waived findings are not annotated");
        assert!(gh.contains("::notice::dses-lint: 1 file(s), 1 error(s)"));
    }

    #[test]
    fn sort_is_by_file_line_rule() {
        let mut r = Report::default();
        r.findings.push(finding("no-alloc", 9, false));
        r.findings.push(finding("determinism", 3, false));
        r.sort();
        assert_eq!(r.findings[0].line, 3);
    }
}
