//! A raw-token scanner for Rust source.
//!
//! `dses-lint` needs far less than a parse tree: every rule works on the
//! *token* level — identifiers, punctuation, literals, and comments with
//! accurate line numbers — plus a little bracket matching done by the
//! rule engine. What the lexer must get exactly right is the places
//! where naive text search lies:
//!
//! * comments (`//`, `///`, `//!`, nested `/* */`) — doc-comment code
//!   examples must not trip code rules, and waiver directives live here;
//! * string-ish literals (`"…"`, `r#"…"#`, `b"…"`, `'c'`) — an
//!   `"unwrap()"` inside a message is not a panic site;
//! * lifetimes vs char literals (`'a` vs `'a'`);
//! * float literals vs field access and ranges (`1.0` vs `tuple.0`
//!   vs `0..n`) — the float-totality rule keys on real float tokens.
//!
//! Tokens borrow the source as byte ranges; nothing is copied.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'_`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, with maximal munch for multi-char operators
    /// (`==`, `::`, `->`, …). `text()` is the full operator.
    Punct,
    /// `// …` comment (doc or plain), text includes the slashes.
    LineComment,
    /// `/* … */` comment (nesting handled), may span lines.
    BlockComment,
}

/// One lexeme: kind, 1-based line of its first byte, byte range.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text, borrowed from the source it was lexed from.
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into raw tokens. Whitespace is dropped; comments are kept
/// (the waiver scanner reads them). The lexer never fails: bytes it
/// cannot classify become single-char [`TokenKind::Punct`] tokens, which
/// at worst makes a rule miss — never crash.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' if self.is_literal_prefix() => self.prefixed_literal(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: u32) {
        self.tokens.push(Token {
            kind,
            line: start_line,
            start,
            end: self.pos,
        });
    }

    /// Advance one byte, keeping the line counter honest.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// Ordinary (escaped, possibly multi-line) string literal; `pos` is
    /// on the opening quote.
    fn string(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Is the `r`/`b`/`c` at `pos` the start of a literal (`r"`, `r#"`,
    /// `b"`, `b'`, `br"`, `rb` does not exist, `r#ident` is a raw ident)?
    fn is_literal_prefix(&self) -> bool {
        let mut i = 1;
        // allow one more prefix letter (br", cr", …)
        if matches!(self.peek(i), Some(b'r' | b'b')) {
            i += 1;
        }
        match self.peek(i) {
            Some(b'"') => true,
            Some(b'\'') => self.src[self.pos] == b'b', // b'x'
            Some(b'#') => {
                // raw string r#"…"# — but r#ident is a raw identifier
                let mut j = i;
                while self.peek(j) == Some(b'#') {
                    j += 1;
                }
                self.peek(j) == Some(b'"')
            }
            _ => false,
        }
    }

    /// Raw/byte/C string or byte-char literal, `pos` on the prefix.
    fn prefixed_literal(&mut self) {
        let (start, line) = (self.pos, self.line);
        let mut raw = self.src[self.pos] == b'r';
        self.pos += 1;
        if matches!(self.src.get(self.pos), Some(b'r')) {
            raw = true;
            self.pos += 1;
        } else if matches!(self.src.get(self.pos), Some(b'b')) {
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'\'') {
            // byte char b'x', b'\n', b'\xff'
            self.pos += 1;
            if self.src.get(self.pos) == Some(&b'\\') {
                self.scan_escaped_char_tail();
            } else {
                if self.pos < self.src.len() {
                    self.bump();
                }
                if self.src.get(self.pos) == Some(&b'\'') {
                    self.pos += 1;
                }
            }
            self.push(TokenKind::Char, start, line);
            return;
        }
        let mut hashes = 0usize;
        while raw && self.src.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            if raw {
                // scan to `"` followed by `hashes` hashes, no escapes
                while self.pos < self.src.len() {
                    if self.src[self.pos] == b'"'
                        && self.src[self.pos + 1..]
                            .iter()
                            .take_while(|&&c| c == b'#')
                            .count()
                            >= hashes
                    {
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.bump();
                }
                self.push(TokenKind::Str, start, line);
            } else {
                // rewind to reuse the escaped-string scanner
                self.pos -= 1;
                let quote = self.pos;
                self.string();
                // widen the token to include the prefix
                if let Some(t) = self.tokens.last_mut() {
                    if t.start == quote {
                        t.start = start;
                    }
                }
            }
        }
    }

    /// `pos` is on the backslash inside a char/byte literal. Consume the
    /// backslash plus the escaped character — which may itself be `'`,
    /// as in `'\''` — then scan to the closing quote. Handles multi-byte
    /// escapes (`\xff`, `\u{1F600}`) that a fixed-width skip would split.
    fn scan_escaped_char_tail(&mut self) {
        self.pos += 1;
        if self.pos < self.src.len() {
            self.bump();
        }
        while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
            self.bump();
        }
        self.pos = (self.pos + 1).min(self.src.len());
    }

    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1;
        match self.src.get(self.pos) {
            Some(b'\\') => {
                // escaped char literal '\n', '\u{…}', '\''
                self.scan_escaped_char_tail();
                self.push(TokenKind::Char, start, line);
            }
            Some(&b) if is_ident_start(b) => {
                // 'a could be a lifetime or a char literal 'a'
                let mut j = self.pos;
                while j < self.src.len() && is_ident_continue(self.src[j]) {
                    j += 1;
                }
                if self.src.get(j) == Some(&b'\'') {
                    self.pos = j + 1;
                    self.push(TokenKind::Char, start, line);
                } else {
                    self.pos = j;
                    self.push(TokenKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                // char literal with a non-ident char: '+', '0', ' '
                self.bump();
                if self.src.get(self.pos) == Some(&b'\'') {
                    self.pos += 1;
                }
                self.push(TokenKind::Char, start, line);
            }
            None => self.push(TokenKind::Punct, start, line),
        }
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        // raw identifier r#type: the `r` path only reaches here when the
        // `#` is not followed by `"`, so consume `#ident`.
        if self.src.get(self.pos) == Some(&b'#')
            && self.pos - start == 1
            && self.src[start] == b'r'
            && self.peek(1).is_some_and(is_ident_start)
        {
            self.pos += 1;
            while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                self.pos += 1;
            }
        }
        self.push(TokenKind::Ident, start, line);
    }

    /// Number literal. Float iff it consumes a decimal point or an
    /// exponent, or carries an `f32`/`f64` suffix. `1..n` and `x.0`
    /// stay integers; `tuple.0` never reaches here with the dot.
    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        let mut float = false;
        if self.src[self.pos] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while self
                .src
                .get(self.pos)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.push(TokenKind::Int, start, line);
            return;
        }
        let digits = |l: &mut Self| {
            while l
                .src
                .get(l.pos)
                .is_some_and(|&b| b.is_ascii_digit() || b == b'_')
            {
                l.pos += 1;
            }
        };
        digits(self);
        // decimal point: only if not `..` (range) and not `.ident`
        // (method call / field access on a literal)
        if self.src.get(self.pos) == Some(&b'.')
            && self.peek(1) != Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            float = true;
            self.pos += 1;
            digits(self);
        }
        if matches!(self.src.get(self.pos), Some(b'e' | b'E')) {
            let mut j = self.pos + 1;
            if matches!(self.src.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if self.src.get(j).is_some_and(u8::is_ascii_digit) {
                float = true;
                self.pos = j;
                digits(self);
            }
        }
        // suffix (u32, f64, …)
        let suffix_start = self.pos;
        while self.src.get(self.pos).is_some_and(|&b| is_ident_continue(b)) {
            self.pos += 1;
        }
        if matches!(&self.src[suffix_start..self.pos], b"f32" | b"f64") {
            float = true;
        }
        self.push(
            if float { TokenKind::Float } else { TokenKind::Int },
            start,
            line,
        );
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.push(TokenKind::Punct, start, line);
                return;
            }
        }
        self.pos += 1;
        self.push(TokenKind::Punct, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r#"let s = "unwrap()"; // unwrap() here too
/* and /* nested */ unwrap() */ call();"#;
        let toks = kinds(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "call"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let toks = kinds(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let src = "let a = 1.0; let b = 1..5; let c = 2e-3; let d = 0x1f; let e = 1f64; let f = 7;";
        let toks = kinds(src);
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "2e-3", "1f64"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["1", "5", "0x1f", "7"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let x = r#"has "quotes" and unwrap()"#; let r#type = 1;"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quotes")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn operators_munch_maximally() {
        let src = "a == b; c <= d; e != f; g::h; i -> j; k..=l";
        let ops: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t)
            .collect();
        assert!(ops.contains(&"==".to_string()));
        assert!(ops.contains(&"<=".to_string()));
        assert!(ops.contains(&"!=".to_string()));
        assert!(ops.contains(&"::".to_string()));
        assert!(ops.contains(&"->".to_string()));
        assert!(ops.contains(&"..=".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "line1();\n/* spans\ntwo lines */\nline4();";
        let toks = lex(src);
        let l4 = toks
            .iter()
            .find(|t| t.text(src) == "line4")
            .map(|t| t.line);
        assert_eq!(l4, Some(4));
    }

    #[test]
    fn byte_strings_are_strings() {
        let src = r#"let b = b"bytes"; let c = b'x';"#;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == "b\"bytes\""));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "b'x'"));
    }

    #[test]
    fn byte_string_variants_are_single_opaque_tokens() {
        // escaped byte string, raw byte string, C string: the payload
        // must not leak idents (an `unwrap` inside is not a panic site)
        let src = r###"let a = b"esc\"unwrap()"; let b = br#"raw unwrap()"#; let c = c"cstr unwrap()";"###;
        let toks = kinds(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "a", "let", "b", "let", "c"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let src = "fn r#fn(r#type: u32) -> u32 { r#type }";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Ident && t == "r#type")
                .count(),
            2
        );
        // no stray `#` puncts from mis-lexed raw idents
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "#"));
    }

    #[test]
    fn multibyte_escapes_in_char_literals() {
        // b'\xff' used to shatter into Char "b'\x" + Ident "ff" + a bogus
        // Char swallowing the `;`; same for '\'' terminating early.
        let src = r"let a = b'\xff'; let b = '\u{1F600}'; let c = '\''; done();";
        let toks = kinds(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, [r"b'\xff'", r"'\u{1F600}'", r"'\''"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }
}
