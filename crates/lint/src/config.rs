//! `lint.toml` — per-crate rule scoping, hand-rolled parser.
//!
//! The workspace commits one `lint.toml` at its root; the driver reads
//! it to decide which crates each rule applies to and which files are
//! blessed. The format is a deliberately tiny TOML subset — sections,
//! and `key = value` where value is a string, a bool, or an array of
//! strings — parsed here without any dependency:
//!
//! ```toml
//! # which crates' results the paper's numbers depend on
//! [workspace]
//! result_affecting = ["sim", "core", "queueing", "dist", "workload"]
//!
//! [rules.determinism]
//! enabled = true
//! crates = ["sim", "core", "queueing", "dist", "workload"]
//!
//! [rules.float-totality]
//! blessed = ["crates/sim/src/fast.rs", "crates/dist/src/numeric.rs"]
//! ```
//!
//! Unknown sections and keys are errors: a typo in the config silently
//! disabling a rule is exactly the kind of bug this crate exists to
//! prevent.

use std::collections::BTreeMap;

/// Scoping for one rule, from a `[rules.<id>]` section.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `enabled = false` turns the rule off entirely.
    pub enabled: Option<bool>,
    /// If set, the rule only applies inside these crates (directory
    /// names under `crates/`).
    pub crates: Option<Vec<String>>,
    /// Crates exempt from the rule.
    pub exclude_crates: Vec<String>,
    /// Workspace-relative file paths exempt from the rule (the
    /// "blessed" total-order helpers for `float-totality`).
    pub blessed: Vec<String>,
    /// `budget = N` — rule-specific integer budget. For `divide-budget`
    /// it caps the budget any single `divides(N)` annotation may
    /// declare, keeping per-function budgets honest.
    pub budget: Option<u32>,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates whose outputs feed the paper's exhibits.
    pub result_affecting: Vec<String>,
    /// Per-rule scoping, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Declared crate-layering DAG: each crate maps to the crates it may
    /// depend on (`[layering]` section, `crate = ["dep", …]`). Empty
    /// when undeclared — the layering analysis is then skipped.
    pub layering: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// The committed workspace configuration, used when no `lint.toml`
    /// is found (so `dses-lint <file>` works from anywhere).
    #[must_use]
    pub fn default_workspace() -> Self {
        let text = include_str!("../../../lint.toml");
        // The committed config must parse; this is covered by tests, and
        // a broken embedded default should fail loudly, not lint with
        // half a config.
        match Self::parse(text) {
            Ok(c) => c,
            // dses-lint: allow(panic-hygiene) -- embedded lint.toml is
            // validated by the crate's own test suite at commit time
            Err(e) => panic!("embedded lint.toml is invalid: {e}"),
        }
    }

    /// Is `rule` enabled for `crate_id` under this config?
    #[must_use]
    pub fn rule_applies(&self, rule: &str, crate_id: &str) -> bool {
        let Some(rc) = self.rules.get(rule) else {
            return true;
        };
        if rc.enabled == Some(false) {
            return false;
        }
        if rc.exclude_crates.iter().any(|c| c == crate_id) {
            return false;
        }
        match &rc.crates {
            Some(list) => list.iter().any(|c| c == crate_id),
            None => true,
        }
    }

    /// Is `path` (workspace-relative, `/`-separated) blessed for `rule`?
    #[must_use]
    pub fn is_blessed(&self, rule: &str, path: &str) -> bool {
        self.rules
            .get(rule)
            .is_some_and(|rc| rc.blessed.iter().any(|b| b == path))
    }

    /// Parse the TOML subset. Errors carry a line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                let known = section == "workspace"
                    || section == "layering"
                    || section.starts_with("rules.");
                if !known {
                    return Err(format!("line {lineno}: unknown section [{section}]"));
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = line[..eq].trim();
            let value = parse_value(line[eq + 1..].trim())
                .map_err(|e| format!("line {lineno}: {e}"))?;
            match (section.as_str(), key) {
                ("workspace", "result_affecting") => {
                    cfg.result_affecting = value.into_array()?;
                }
                ("workspace", k) => {
                    return Err(format!("line {lineno}: unknown workspace key `{k}`"));
                }
                ("layering", k) => {
                    cfg.layering.insert(k.to_string(), value.into_array()?);
                }
                (s, k) => {
                    let Some(rule) = s.strip_prefix("rules.") else {
                        return Err(format!("line {lineno}: `{k}` outside any section"));
                    };
                    let rc = cfg.rules.entry(rule.to_string()).or_default();
                    match k {
                        "enabled" => rc.enabled = Some(value.into_bool()?),
                        "crates" => rc.crates = Some(value.into_array()?),
                        "exclude_crates" => rc.exclude_crates = value.into_array()?,
                        "blessed" => rc.blessed = value.into_array()?,
                        "budget" => rc.budget = Some(value.into_int()?),
                        other => {
                            return Err(format!(
                                "line {lineno}: unknown key `{other}` in [rules.{rule}]"
                            ));
                        }
                    }
                }
            }
        }
        Ok(cfg)
    }
}

/// Drop a `#`-comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

enum Value {
    Str(String),
    Bool(bool),
    Int(u32),
    Array(Vec<String>),
}

impl Value {
    fn into_array(self) -> Result<Vec<String>, String> {
        match self {
            Value::Array(a) => Ok(a),
            Value::Str(s) => Ok(vec![s]),
            Value::Bool(_) | Value::Int(_) => Err("expected an array of strings".into()),
        }
    }
    fn into_bool(self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err("expected true or false".into()),
        }
    }
    fn into_int(self) -> Result<u32, String> {
        match self {
            Value::Int(n) => Ok(n),
            _ => Err("expected a non-negative integer".into()),
        }
    }
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.bytes().all(|b| b.is_ascii_digit()) && !text.is_empty() {
        return text
            .parse::<u32>()
            .map(Value::Int)
            .map_err(|_| format!("integer out of range `{text}`"));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only contain strings".into()),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        if inner.contains('"') {
            return Err("nested quote in string".into());
        }
        return Ok(Value::Str(inner.to_string()));
    }
    Err(format!("cannot parse value `{text}`"))
}

/// Split on commas outside quotes (single-line arrays only).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_values_and_comments() {
        let cfg = Config::parse(
            r#"
# workspace config
[workspace]
result_affecting = ["sim", "core"] # trailing comment

[rules.determinism]
enabled = true
crates = ["sim", "core"]

[rules.panic-hygiene]
exclude_crates = ["cli"]

[rules.float-totality]
blessed = ["crates/sim/src/fast.rs"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.result_affecting, ["sim", "core"]);
        assert!(cfg.rule_applies("determinism", "sim"));
        assert!(!cfg.rule_applies("determinism", "bench"));
        assert!(!cfg.rule_applies("panic-hygiene", "cli"));
        assert!(cfg.rule_applies("panic-hygiene", "sim"));
        assert!(cfg.is_blessed("float-totality", "crates/sim/src/fast.rs"));
        assert!(!cfg.is_blessed("float-totality", "crates/sim/src/event.rs"));
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[workspace]\ntypo = true\n").is_err());
        assert!(Config::parse("[rules.determinism]\ncrate = [\"sim\"]\n").is_err());
        assert!(Config::parse("[rules.x]\nenabled = \"yes\"\n").is_err());
    }

    #[test]
    fn integer_budget_keys_parse() {
        let cfg = Config::parse("[rules.divide-budget]\nbudget = 0\ncrates = [\"sim\"]\n").unwrap();
        assert_eq!(cfg.rules["divide-budget"].budget, Some(0));
        let cfg = Config::parse("[rules.divide-budget]\nbudget = 2 # cap\n").unwrap();
        assert_eq!(cfg.rules["divide-budget"].budget, Some(2));
        // integers keep the strict-grammar discipline: wrong type, wrong
        // key, and malformed numbers stay hard errors
        assert!(Config::parse("[rules.divide-budget]\nbudget = \"0\"\n").is_err());
        assert!(Config::parse("[rules.divide-budget]\nbudget = -1\n").is_err());
        assert!(Config::parse("[rules.divide-budget]\nbudgets = 0\n").is_err());
        assert!(Config::parse("[rules.divide-budget]\nenabled = 1\n").is_err());
        assert!(Config::parse("[workspace]\nresult_affecting = 3\n").is_err());
    }

    #[test]
    fn disabled_rule_applies_nowhere() {
        let cfg = Config::parse("[rules.determinism]\nenabled = false\n").unwrap();
        assert!(!cfg.rule_applies("determinism", "sim"));
    }

    #[test]
    fn unconfigured_rule_applies_everywhere() {
        let cfg = Config::parse("").unwrap();
        assert!(cfg.rule_applies("header-conformance", "anything"));
    }

    #[test]
    fn embedded_default_config_parses() {
        let cfg = Config::default_workspace();
        assert!(!cfg.result_affecting.is_empty());
        assert!(cfg.rules.contains_key("determinism"));
        assert!(
            !cfg.layering.is_empty(),
            "committed lint.toml declares the layering DAG"
        );
    }

    #[test]
    fn layering_section_parses() {
        let cfg = Config::parse(
            "[layering]\ndist = []\nsim = [\"dist\", \"workload\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.layering["dist"], Vec::<String>::new());
        assert_eq!(cfg.layering["sim"], ["dist", "workload"]);
    }
}
