//! The dataflow tier (`--dataflow`): hot-loop performance contracts
//! checked statically over per-function CFGs and the workspace call
//! graph (DESIGN.md §10.6).
//!
//! PRs 6–8 bought the engine's throughput with hand-audited invariants:
//! zero float divides per steady-state job, zero allocations per grid
//! point, grow-once workspace buffers, and demand decisions compiled
//! into const generics. Each was guarded only by runtime gates in
//! `perf_report` — this tier proves them at lint time:
//!
//! | rule | contract |
//! |------|----------|
//! | `divide-budget` | `// dses-lint: divides(N)` caps the loop-weighted float `/`/`%` sites reachable from a kernel |
//! | `loop-alloc` | no allocating or growing construct inside a loop of a result-affecting crate |
//! | `grow-once` | workspace buffers grow only on reset/new paths, never on the record/dispatch path |
//! | `demand-monomorphism` | const-generic record paths never read the `Demand` bitset at runtime |
//!
//! **Budget semantics.** A divide site counts against a `divides(N)`
//! root when it can execute once per loop iteration (per job): it sits
//! on a CFG cycle or inside a closure, or it is reached through a call
//! edge that does. A reciprocal hoisted above the loop costs nothing;
//! the same divide inside it counts. Budgets compose: a call to another
//! annotated function contributes that function's declared budget
//! instead of being traversed (its own annotation is verified
//! separately), and call edges into once-per-run functions (`new`,
//! `reset*`, `with_*`, `warmup*`, `finish*`) are not followed — the
//! warmup/reset/finalize paths run once per run, not per job. The token stream has no types, so `/`
//! and `%` are assumed floating unless an operand is an integer
//! literal; integer index arithmetic inside an annotated kernel is
//! waived with a reason, which keeps it visible.
//!
//! All four rules honour `allow(<rule>)` waivers at the flagged line
//! (and, for path findings, at the root's own edge into the chain),
//! with the usual mandatory reasons.

use crate::cfg::Cfg;
use crate::config::Config;
use crate::driver::SourceFile;
use crate::graph::{FnId, Graph};
use crate::items::Code;
use crate::lexer::TokenKind;
use crate::report::{Finding, Severity};
use crate::rules::FileKind;
use crate::semantic::{layering_closure, root_edge_line, waived};
use std::collections::BTreeMap;

/// Functions treated as the once-per-run boundary: setup/warmup on the
/// way in (`new`, `default`, `reset*`, `with_*`, `warmup*`) and
/// finalization on the way out (`finish*`). Growth is legal in them,
/// and divide-budget traversal stops at their door — they run once per
/// run, not once per job, so their arithmetic never multiplies by the
/// trace length.
fn is_setup(name: &str) -> bool {
    name == "new"
        || name == "default"
        || name.starts_with("reset")
        || name.starts_with("with_")
        || name.starts_with("warmup")
        || name.starts_with("finish")
}

/// Workspace-owned buffer holders whose fields must only grow on
/// reset/new paths (the `grow-once` rule).
const WORKSPACE_TYPES: &[&str] = &[
    "SimWorkspace",
    "EventWorkspace",
    "Collector",
    "BlockCollector",
];

/// Buffer-growing method names (on `self.<field>`) the `grow-once`
/// rule polices, and that `loop-alloc` counts as allocation sites.
const GROW_VERBS: &[&str] = &[
    "resize",
    "resize_with",
    "reserve",
    "reserve_exact",
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "append",
    "insert",
];

/// Run every dataflow analysis over the collected workspace.
#[must_use]
pub fn check_workspace(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let g = Graph::build_scoped(files, layering_closure(cfg));
    check_graph(&g, cfg)
}

/// Run every dataflow analysis over a prebuilt item graph — the driver
/// builds one graph and shares it across the workspace tiers' threads.
#[must_use]
pub fn check_graph(g: &Graph<'_>, cfg: &Config) -> Vec<Finding> {
    let flows = Flows::build(g);
    let mut out = Vec::new();
    divide_budget(g, &flows, cfg, &mut out);
    loop_alloc(g, &flows, cfg, &mut out);
    grow_once(g, &flows, cfg, &mut out);
    demand_monomorphism(g, cfg, &mut out);
    out
}

/// One float-divide site inside a function body.
#[derive(Debug)]
struct DivSite {
    line: u32,
    /// Reachable from the function entry.
    live: bool,
    /// On a CFG cycle or inside a closure: executes per iteration.
    hot: bool,
    /// `a / b` — the operator with its immediate operands.
    what: String,
}

/// A `self.<field>.<verb>(…)` growth site inside a workspace impl.
#[derive(Debug)]
struct GrowSite {
    line: u32,
    live: bool,
    hot: bool,
    /// `self.records.push` — for the message.
    what: String,
}

/// Per-function CFG facts, reduced to what the rules consume: per-line
/// liveness/hotness, the divide sites, and the growth sites.
#[derive(Debug, Default)]
struct Flow {
    /// line → (any position live, any position hot).
    lines: BTreeMap<u32, (bool, bool)>,
    /// (line, identifier) → (live, hot) — finer than `lines`, so an
    /// allocation fact maps to *its own* token's hotness, not to a
    /// closure that happens to share the line (`.map(|x| …).collect()`
    /// must not paint `collect` hot).
    idents: BTreeMap<(u32, String), (bool, bool)>,
    divides: Vec<DivSite>,
    grows: Vec<GrowSite>,
}

impl Flow {
    /// (live, hot) for a source line; unknown lines are conservatively
    /// live and cold.
    fn line(&self, line: u32) -> (bool, bool) {
        self.lines.get(&line).copied().unwrap_or((true, false))
    }

    /// (live, hot) of the named identifier on `line`, falling back to
    /// line granularity when the token is not found.
    fn ident(&self, line: u32, name: &str) -> (bool, bool) {
        self.idents
            .get(&(line, name.to_string()))
            .copied()
            .unwrap_or_else(|| self.line(line))
    }
}

/// Flow facts for every non-test function body in the workspace.
struct Flows(Vec<Option<Flow>>);

impl Flows {
    fn build(g: &Graph<'_>) -> Self {
        let codes: Vec<Code<'_>> = g
            .files
            .iter()
            .map(|pf| Code::new(&pf.file.src))
            .collect();
        let flows = g
            .ids()
            .map(|id| {
                let item = g.item(id);
                if item.in_test {
                    return None;
                }
                let (open, close) = item.body?;
                let code = &codes[g.fns_file(id)];
                if close >= code.len() || code.text(open) != "{" {
                    return None; // stale span: refuse to guess
                }
                Some(flow_of(code, open, close))
            })
            .collect();
        Flows(flows)
    }

    fn of(&self, id: FnId) -> Option<&Flow> {
        self.0[id].as_ref()
    }
}

/// Build the CFG for one body and reduce it to [`Flow`] facts.
fn flow_of(code: &Code<'_>, open: usize, close: usize) -> Flow {
    let cfg = Cfg::build(code, open, close);
    let reach = cfg.reachable();
    let iters = cfg.iterating();
    let mut flow = Flow::default();
    let at = |p: usize| -> (bool, bool) {
        match cfg.node_at(p) {
            Some(n) => (reach[n], iters[n] || cfg.closure_depth(p) > 0),
            None => (true, false),
        }
    };
    for p in open + 1..close {
        let (live, hot) = at(p);
        let e = flow.lines.entry(code.line(p)).or_insert((false, false));
        e.0 |= live;
        e.1 |= hot;
        if code.kind(p) == TokenKind::Ident {
            let e = flow
                .idents
                .entry((code.line(p), code.text(p).to_string()))
                .or_insert((false, false));
            e.0 |= live;
            e.1 |= hot;
        }
        // ----- divide sites -----
        if code.kind(p) == TokenKind::Punct && matches!(code.text(p), "/" | "%" | "/=" | "%=") {
            // no type info in a token stream: treat as floating unless
            // an immediate operand is an integer literal
            let int_ctx = (p > open + 1 && code.kind(p - 1) == TokenKind::Int)
                || (p + 1 < close && code.kind(p + 1) == TokenKind::Int);
            if !int_ctx {
                let prev = if p > open + 1 { code.text(p - 1) } else { "" };
                let next = if p + 1 < close { code.text(p + 1) } else { "" };
                flow.divides.push(DivSite {
                    line: code.line(p),
                    live,
                    hot,
                    what: format!("`{prev} {} {next}`", code.text(p)),
                });
            }
        }
        // ----- growth sites: self.field[…].verb( -----
        if code.text(p) == "self" && code.get(p + 1) == Some(".") {
            let mut q = p + 1;
            let mut chain = String::from("self");
            while code.get(q) == Some(".") && q + 1 < close {
                let name = code.text(q + 1);
                if code.kind(q + 1) != TokenKind::Ident {
                    break;
                }
                if GROW_VERBS.contains(&name) && code.get(q + 2) == Some("(") && chain != "self" {
                    let (vlive, vhot) = at(q + 1);
                    flow.grows.push(GrowSite {
                        line: code.line(q + 1),
                        live: vlive,
                        hot: vhot,
                        what: format!("{chain}.{name}"),
                    });
                    break;
                }
                chain.push('.');
                chain.push_str(name);
                q += 2;
                while code.get(q) == Some("[") {
                    match code.match_bracket(q, "[", "]") {
                        Some(c) => q = c + 1,
                        None => break,
                    }
                }
            }
        }
    }
    flow
}

/// Does `rule` apply to the crate the function lives in, and is the
/// function ordinary library code?
fn in_scope(g: &Graph<'_>, cfg: &Config, rule: &str, id: FnId) -> bool {
    let pf = &g.files[g.fns_file(id)];
    pf.file.kind == FileKind::Lib
        && !g.item(id).in_test
        && cfg.rule_applies(rule, &pf.file.crate_id)
}

// ---------------------------------------------------------------------
// divide-budget
// ---------------------------------------------------------------------

/// One counted contribution toward a root's divide budget.
struct Contribution {
    cost: u32,
    /// Rendered site: what + file:line (+ path for indirect sites).
    desc: String,
}

fn divide_budget(g: &Graph<'_>, flows: &Flows, cfg: &Config, out: &mut Vec<Finding>) {
    const RULE: &str = "divide-budget";
    let cap = cfg.rules.get(RULE).and_then(|rc| rc.budget);
    let roots: Vec<FnId> = g
        .ids()
        .filter(|&id| g.item(id).divides.is_some() && in_scope(g, cfg, RULE, id))
        .collect();
    for &root in &roots {
        let (budget, dline) = g.item(root).divides.unwrap_or((0, g.item(root).line));
        let root_file = g.fns_file(root);
        // keep declared budgets honest against the workspace cap
        if let Some(cap) = cap {
            if budget > cap {
                out.push(Finding {
                    file: g.files[root_file].file.rel.clone(),
                    line: dline,
                    rule: RULE,
                    message: format!(
                        "fn `{}` declares divides({budget}) but [rules.divide-budget] caps \
                         per-function budgets at {cap}",
                        g.label(root)
                    ),
                    waived: waived(g, root_file, RULE, dline),
                    severity: Severity::Deny,
                });
            }
        }
        // worklist over (fn, reached-through-a-loop) states
        let mut contributions: Vec<Contribution> = Vec::new();
        let mut seen: BTreeMap<FnId, u8> = BTreeMap::new(); // bit 1: cold, bit 2: hot
        let mut parents: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
        parents.insert(root, None);
        let mut work: Vec<(FnId, bool)> = vec![(root, false)];
        seen.insert(root, 1);
        while let Some((f, hot)) = work.pop() {
            let Some(flow) = flows.of(f) else { continue };
            let f_file = g.fns_file(f);
            for site in &flow.divides {
                if !site.live || !(hot || site.hot) {
                    continue;
                }
                if waived(g, f_file, RULE, site.line) {
                    continue; // the waiver's reason carries the proof
                }
                let via = if f == root {
                    String::new()
                } else {
                    format!(", via {}", g.path_to(&parents, f).join(" → "))
                };
                contributions.push(Contribution {
                    cost: 1,
                    desc: format!(
                        "{} ({}:{}{via})",
                        site.what, g.files[f_file].file.rel, site.line
                    ),
                });
            }
            for &(callee, cline) in &g.edges[f] {
                let (clive, csite_hot) = flow.line(cline);
                if !clive {
                    continue;
                }
                let chot = hot || csite_hot;
                let citem = g.item(callee);
                if is_setup(&citem.name) {
                    continue; // warmup/reset path: once per run, not per job
                }
                if callee != root {
                    if let Some((cbudget, _)) = citem.divides {
                        // annotated callee: trust its declared budget
                        // (verified from its own root) instead of
                        // traversing into it
                        if cbudget > 0 && !waived(g, f_file, RULE, cline) {
                            contributions.push(Contribution {
                                cost: cbudget,
                                desc: format!(
                                    "call to `{}` (declared divides({cbudget})) ({}:{})",
                                    g.label(callee),
                                    g.files[f_file].file.rel,
                                    cline
                                ),
                            });
                        }
                        continue;
                    }
                }
                let bit = if chot { 2 } else { 1 };
                let mask = seen.entry(callee).or_insert(0);
                if *mask & bit == 0 {
                    *mask |= bit;
                    parents.entry(callee).or_insert(Some((f, cline)));
                    work.push((callee, chot));
                }
            }
        }
        let total: u32 = contributions.iter().map(|c| c.cost).sum();
        if total > budget {
            let mut shown: Vec<&str> = contributions.iter().map(|c| c.desc.as_str()).collect();
            let extra = shown.len().saturating_sub(4);
            shown.truncate(4);
            let more = if extra > 0 {
                format!("; and {extra} more")
            } else {
                String::new()
            };
            out.push(Finding {
                file: g.files[root_file].file.rel.clone(),
                line: dline,
                rule: RULE,
                message: format!(
                    "fn `{}` declares divides({budget}) but {total} loop-weighted divide \
                     site(s) are reachable: {}{more}",
                    g.label(root),
                    shown.join("; ")
                ),
                waived: waived(g, root_file, RULE, dline),
                severity: Severity::Deny,
            });
        }
    }
}

// ---------------------------------------------------------------------
// loop-alloc
// ---------------------------------------------------------------------

/// Allocating constructs (the per-file `no-alloc` facts) and buffer
/// growth whose CFG node sits inside a loop — in *any* function of the
/// configured crates, not just `deny(alloc)` roots. Setup functions
/// (`new`, `reset*`, `with_*`) are exempt: growth in a reset loop is
/// exactly where the finding message tells you to put it. Files doing
/// once-per-run work (report rendering, trace parsing) are blessed in
/// `lint.toml` rather than waived line by line.
fn loop_alloc(g: &Graph<'_>, flows: &Flows, cfg: &Config, out: &mut Vec<Finding>) {
    const RULE: &str = "loop-alloc";
    for id in g.ids() {
        if !in_scope(g, cfg, RULE, id) {
            continue;
        }
        if is_setup(&g.item(id).name) {
            continue;
        }
        if cfg.is_blessed(RULE, &g.files[g.fns_file(id)].file.rel) {
            continue;
        }
        let Some(flow) = flows.of(id) else { continue };
        let file_idx = g.fns_file(id);
        let item = g.item(id);
        let sites = item
            .allocs
            .iter()
            .map(|f| {
                // the fact only carries a line; anchor hotness to the
                // fact's own identifier (`Vec::with_capacity` →
                // `with_capacity`, `.collect` → `collect`, `vec!` →
                // `vec`), not to whatever else shares the line
                let needle = f
                    .what
                    .rsplit("::")
                    .next()
                    .unwrap_or(&f.what)
                    .trim_start_matches('.')
                    .trim_end_matches('!');
                let (live, hot) = flow.ident(f.line, needle);
                (f.line, f.what.clone(), live, hot)
            })
            .chain(
                flow.grows
                    .iter()
                    .map(|s| (s.line, s.what.clone(), s.live, s.hot)),
            );
        let mut last: Option<u32> = None;
        for (line, what, live, hot) in sites {
            if !live || !hot {
                continue;
            }
            if last == Some(line) {
                continue; // one finding per line is enough to act on
            }
            last = Some(line);
            out.push(Finding {
                file: g.files[file_idx].file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    "`{what}` inside a loop in fn `{}` — per-iteration allocation/growth \
                     belongs in reset/setup",
                    g.label(id)
                ),
                waived: waived(g, file_idx, RULE, line),
                severity: Severity::Deny,
            });
        }
    }
}

// ---------------------------------------------------------------------
// grow-once
// ---------------------------------------------------------------------

/// Workspace buffers may grow in reset/new/constructor paths only. The
/// record/dispatch path is the set of `divides(N)` / `deny(alloc)`
/// roots; traversal stops at setup-named functions, so growth behind a
/// `reset` call is sanctioned while growth reachable without passing a
/// reset boundary is flagged.
fn grow_once(g: &Graph<'_>, flows: &Flows, cfg: &Config, out: &mut Vec<Finding>) {
    const RULE: &str = "grow-once";
    let roots: Vec<FnId> = g
        .ids()
        .filter(|&id| {
            let it = g.item(id);
            (it.divides.is_some() || it.deny_alloc)
                && !is_setup(&it.name)
                && in_scope(g, cfg, RULE, id)
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = g.bfs(&roots, |id| !is_setup(&g.item(id).name));
    for &n in parents.keys() {
        let item = g.item(n);
        if is_setup(&item.name) {
            continue;
        }
        let Some(ty) = item.impl_ty.as_deref() else { continue };
        if !WORKSPACE_TYPES.contains(&ty) {
            continue;
        }
        let Some(flow) = flows.of(n) else { continue };
        let n_file = g.fns_file(n);
        for site in &flow.grows {
            if !site.live {
                continue;
            }
            let path = g.path_to(&parents, n).join(" → ");
            let is_waived = waived(g, n_file, RULE, site.line)
                || roots.iter().any(|&r| {
                    root_edge_line(&parents, n, r)
                        .is_some_and(|l| waived(g, g.fns_file(r), RULE, l))
                });
            out.push(Finding {
                file: g.files[n_file].file.rel.clone(),
                line: site.line,
                rule: RULE,
                message: format!(
                    "`{ty}` buffer grows on the record/dispatch path: `{}` in `{}` \
                     (reached via {path}) — growth belongs behind reset/new",
                    site.what,
                    g.label(n)
                ),
                waived: is_waived,
                severity: Severity::Deny,
            });
        }
    }
}

// ---------------------------------------------------------------------
// demand-monomorphism
// ---------------------------------------------------------------------

/// Inside a function monomorphized over const-generic parameters, the
/// demand decision has already been compiled out — any runtime read of
/// the `Demand` bitset re-introduces the branch the const split exists
/// to remove (the metrics-layer sibling of PR 5's StateNeeds check).
fn demand_monomorphism(g: &Graph<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    const RULE: &str = "demand-monomorphism";
    for id in g.ids() {
        let item = g.item(id);
        if item.const_params.is_empty() || !in_scope(g, cfg, RULE, id) {
            continue;
        }
        let Some((open, close)) = item.body else { continue };
        let file_idx = g.fns_file(id);
        let code = Code::new(&g.files[file_idx].file.src);
        if close >= code.len() || code.text(open) != "{" {
            continue;
        }
        let mut last = 0u32;
        for p in open + 1..close {
            if code.kind(p) != TokenKind::Ident {
                continue;
            }
            let t = code.text(p);
            if t != "demand" && t != "Demand" {
                continue;
            }
            let line = code.line(p);
            if line == last {
                continue;
            }
            last = line;
            out.push(Finding {
                file: g.files[file_idx].file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    "fn `{}` is monomorphized over const params [{}] but reads `{t}` at \
                     runtime — the demand split must be compiled out",
                    g.label(id),
                    item.const_params.join(", ")
                ),
                waived: waived(g, file_idx, RULE, line),
                severity: Severity::Deny,
            });
        }
    }
}
