//! # dses-lint — source-level invariant enforcement for the dses workspace
//!
//! The workspace's correctness story rests on invariants no compiler
//! checks: simulation results must be **bit-deterministic** (no
//! iteration-order-dependent containers, no clocks, no environment
//! reads in result-affecting crates), steady-state loops must be
//! **allocation-free** (the PR 3 sweep engine), library code must have
//! **panic hygiene** (every `unwrap` carries a stated invariant), and
//! float comparisons must go through **total-order helpers**. The
//! runtime gates in `perf_report` verify these after the fact; this
//! crate enforces them *at the source level*, before a violation can
//! corrupt a number.
//!
//! It is a deliberately small static-analysis pass: a raw-token lexer
//! ([`lexer`]), a rule engine ([`rules`]), a hand-rolled `lint.toml`
//! config ([`config`]), text/JSON/GitHub reporting ([`report`]), and a
//! workspace walker ([`driver`]). No dependencies, no `syn`, no full
//! parse — every per-file rule needs only tokens, comments, and bracket
//! matching, which keeps the tool trivially auditable and fast enough
//! to run in CI on every build.
//!
//! On top of the per-file tier sits a **semantic tier** (`--semantic`):
//! a lightweight item parser ([`items`]) feeds a workspace-wide item
//! graph ([`graph`]) — per-crate symbol tables, name resolution good
//! enough for workspace-local paths, and a conservative call graph —
//! on which [`semantic`] runs four interprocedural analyses:
//! transitive no-alloc, transitive determinism, crate-layering
//! enforcement, and `StateNeeds`-vs-usage verification.
//!
//! The third tier (`--dataflow`) recovers a per-function control-flow
//! graph from the token stream ([`cfg`]) and runs hot-loop dataflow
//! analyses ([`dataflow`]): divide budgets (`// dses-lint: divides(N)`),
//! loop-allocation freedom, grow-once workspace buffers, and
//! demand-monomorphism of const-generic record paths.
//!
//! The fourth tier (`--mirrors`) proves the workspace's bit-identity
//! contract structurally: functions annotated
//! `// dses-lint: mirrors(group)` must share a normalized float-op
//! skeleton ([`mirrors`]) — same ops, same order, same operand
//! provenance — with declared hoists substituted, so a reordered float
//! expression in one of the paired kernel copies is a lint error, not
//! a bench-time bit diff.
//!
//! ## Waivers
//!
//! Violations are suppressed inline, never globally:
//!
//! ```text
//! // dses-lint: allow(determinism) -- memo keyed by bit patterns, never iterated
//! use std::collections::HashMap;
//! ```
//!
//! A missing reason is itself a finding. Functions opt *into* the
//! allocation rule with `// dses-lint: deny(alloc)`. See [`rules`] for
//! the catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod driver;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod mirrors;
pub mod report;
pub mod rules;
pub mod semantic;

pub use config::Config;
pub use report::{Finding, Report, Severity};
pub use rules::{check_file, FileInput, FileKind, RootKind};
