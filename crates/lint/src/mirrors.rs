//! Mirror-equivalence tier (`--mirrors`) — DESIGN.md §10.7.
//!
//! The repo's load-bearing invariant is that paired kernel
//! implementations (direct / segmented / fused / event-engine Lindley
//! updates, the `push` / `push_with_inv` accumulators, the `record_core`
//! monomorphizations) produce bit-identical floating-point results.
//! Until now that contract was enforced only by runtime gates; this
//! pass proves it structurally at lint time.
//!
//! Each member of an equivalence group carries a
//! `// dses-lint: mirrors(group)` directive. The pass extracts each
//! member's *normalized float-op skeleton* — the ordered sequence of
//! traced float operations (`+ - * / %`, `min`/`max`/`mul_add`,
//! comparisons, opaque calls with float arguments) in Rust evaluation
//! order — and rejects any group whose members differ in op kind, op
//! order, or operand provenance, reporting the exact diverging op with
//! both source spans.
//!
//! Normalizations applied before comparison (§10.7 documents each):
//!
//! * **Hoist substitution** — `// dses-lint: hoist(name)` declares that
//!   a parameter holds a precomputed reciprocal, or that a call stands
//!   for a hoisted-table divide. Reads of a hoisted parameter become a
//!   wildcard operand; calls to a hoisted name become a literal
//!   `div(arg, <hoisted>)` op so they line up with the real divide in
//!   the mirror.
//! * **Reciprocal folding** — `1.0 / x` folds into a `recip(x)`
//!   *operand* rather than a divide *op*, so `record`'s live
//!   `1.0 / rec.size` matches `record_with_inv`'s hoisted `inv_size`
//!   parameter.
//! * **Same-group / declared inlining** — calls to other members of the
//!   same group, or to names listed in `// dses-lint: inline(…)`, are
//!   inlined (arguments substituted positionally, `self.x` descriptors
//!   rewritten against the receiver) so wrapper members compare against
//!   the op stream they actually execute.
//! * **Operand α-equivalence** — leaf descriptors are matched by a
//!   lockstep bijection built during comparison, not by name: members
//!   may use different local names for the same value, but once a
//!   descriptor on one side binds to a descriptor on the other, every
//!   later co-occurrence must agree.
//!
//! Group modes: plain `mirrors(g)` groups are compared op-by-op;
//! `mirrors(g, ulp)` groups (the block collector) check the arithmetic
//! op *set* (with `/` canonicalized to `*`) and exempt order;
//! single-member groups whose fn has `const bool` parameters are
//! *specialization* groups — every monomorphization's op sequence must
//! be a subsequence of the all-demands-on path. Mixed `f32`/`f64`
//! arithmetic inside any annotated kernel is a hard error.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::graph::{FnId, Graph};
use crate::items::Code;
use crate::lexer::TokenKind;
use crate::report::{Finding, Severity};
use crate::semantic::waived;

// ---------------------------------------------------------------------
// Type classification
// ---------------------------------------------------------------------

/// Coarse scalar classification: the extractor traces an op iff at
/// least one operand is a scalar `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Scalar `f64`.
    Float,
    /// `[f64]` / `Vec<f64>` / `[f64; N]` — becomes `Float` when indexed
    /// by a scalar.
    FloatSlice,
    /// Integer or bool scalar.
    Int,
    /// Anything else (structs, refs, unknown).
    Other,
}

/// Classify a type from its token texts (`&`, `mut`, idents, brackets).
fn classify_type(toks: &[&str]) -> Class {
    let slice = toks.iter().any(|t| *t == "[" || *t == "Vec");
    if toks.contains(&"f64") {
        return if slice { Class::FloatSlice } else { Class::Float };
    }
    const INTS: &[&str] = &[
        "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8", "bool",
    ];
    if !slice && toks.iter().any(|t| INTS.contains(t)) {
        return Class::Int;
    }
    Class::Other
}

/// Workspace-wide field/return classifications, recovered by a direct
/// token scan. The item parser's `leading_type_ident` drops slice types
/// (`&mut [f64]` has no leading ident), so the mirror tier scans struct
/// declarations and fn signatures itself.
struct TypeFacts {
    /// Struct field name → class. Conflicting declarations across the
    /// workspace demote to `Other` (never guess).
    fields: BTreeMap<String, Class>,
    /// Fn name → return class, same conflict rule.
    returns: BTreeMap<String, Class>,
}

impl TypeFacts {
    fn build(codes: &BTreeMap<usize, Code<'_>>) -> Self {
        let mut fields: BTreeMap<String, Class> = BTreeMap::new();
        let mut returns: BTreeMap<String, Class> = BTreeMap::new();
        let put = |map: &mut BTreeMap<String, Class>, name: &str, c: Class| {
            match map.get(name) {
                Some(&prev) if prev != c => {
                    map.insert(name.to_string(), Class::Other);
                }
                Some(_) => {}
                None => {
                    map.insert(name.to_string(), c);
                }
            }
        };
        for code in codes.values() {
            let mut p = 0usize;
            while p < code.len() {
                match code.text(p) {
                    "struct" if p + 1 < code.len() && code.kind(p + 1) == TokenKind::Ident => {
                        // find the body `{` before any `;` / `(` (unit and
                        // tuple structs carry no named fields)
                        let mut q = p + 1;
                        let mut body = None;
                        while q < code.len() {
                            match code.text(q) {
                                "{" => {
                                    body = Some(q);
                                    break;
                                }
                                ";" | "(" => break,
                                _ => q += 1,
                            }
                        }
                        if let Some(open) = body {
                            if let Some(close) = code.match_bracket(open, "{", "}") {
                                scan_fields(code, open, close, |name, c| put(&mut fields, name, c));
                                p = close + 1;
                                continue;
                            }
                        }
                        p = q + 1;
                    }
                    "fn" if p + 1 < code.len() && code.kind(p + 1) == TokenKind::Ident => {
                        let name = code.text(p + 1).to_string();
                        if let Some((c, next)) = scan_return(code, p + 2) {
                            put(&mut returns, &name, c);
                            p = next;
                            continue;
                        }
                        p += 2;
                    }
                    _ => p += 1,
                }
            }
        }
        TypeFacts { fields, returns }
    }
}

/// Scan named fields inside a struct body: depth-0 `ident : TYPE`
/// entries, attributes skipped.
fn scan_fields(code: &Code<'_>, open: usize, close: usize, mut put: impl FnMut(&str, Class)) {
    let mut p = open + 1;
    while p < close {
        match code.text(p) {
            "#" if code.get(p + 1) == Some("[") => {
                p = code.match_bracket(p + 1, "[", "]").map_or(close, |e| e + 1);
            }
            "pub" => {
                p += 1;
                if code.get(p) == Some("(") {
                    p = code.match_bracket(p, "(", ")").map_or(close, |e| e + 1);
                }
            }
            _ if code.kind(p) == TokenKind::Ident && code.get(p + 1) == Some(":") => {
                let name = code.text(p).to_string();
                let (toks, next) = type_tokens(code, p + 2, close);
                put(&name, classify_type(&toks));
                p = next;
            }
            _ => p += 1,
        }
    }
}

/// Collect the token texts of a type starting at `p`, stopping at a
/// depth-0 `,` or at `end`. Returns the tokens and the position after
/// the terminator.
fn type_tokens<'c>(code: &'c Code<'_>, mut p: usize, end: usize) -> (Vec<&'c str>, usize) {
    let mut toks = Vec::new();
    let mut depth = 0i32;
    while p < end {
        let t = code.text(p);
        match t {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ">>" => depth -= 2,
            "," if depth == 0 => {
                p += 1;
                break;
            }
            "{" | ";" | "=" if depth == 0 => break,
            _ => {}
        }
        toks.push(t);
        p += 1;
    }
    (toks, p)
}

/// Starting just after a `fn name`, skip generics and the parameter
/// list, then classify the `-> TYPE` return (unit when absent).
/// Returns `None` when the signature is malformed (e.g. `fn` pointer
/// types misrecognized).
fn scan_return(code: &Code<'_>, mut p: usize) -> Option<(Class, usize)> {
    if code.get(p) == Some("<") {
        p = skip_angles(code, p)?;
    }
    if code.get(p) != Some("(") {
        return None;
    }
    p = code.match_bracket(p, "(", ")")? + 1;
    if code.get(p) != Some("->") {
        return Some((Class::Other, p));
    }
    p += 1;
    let mut toks = Vec::new();
    let mut depth = 0i32;
    while p < code.len() {
        let t = code.text(p);
        match t {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "{" | ";" | "where" if depth == 0 => break,
            _ => {}
        }
        toks.push(t);
        p += 1;
    }
    Some((classify_type(&toks), p))
}

/// Skip a `<…>` generics span starting at the `<`; returns the position
/// just after the matching `>`.
fn skip_angles(code: &Code<'_>, mut p: usize) -> Option<usize> {
    let mut depth = 0i32;
    while p < code.len() {
        match code.text(p) {
            "<" | "<<" => depth += if code.text(p) == "<<" { 2 } else { 1 },
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(p + 1);
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return Some(p + 1);
                }
            }
            _ => {}
        }
        p += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Skeleton model
// ---------------------------------------------------------------------

/// A traced float operation kind. `Call` carries the callee name so
/// opaque calls with float arguments must match by name.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    Min,
    Max,
    MulAdd,
    Abs,
    Sqrt,
    Cmp(&'static str),
    Call(String),
}

impl OpKind {
    fn name(&self) -> String {
        match self {
            OpKind::Add => "add".into(),
            OpKind::Sub => "sub".into(),
            OpKind::Mul => "mul".into(),
            OpKind::Div => "div".into(),
            OpKind::Rem => "rem".into(),
            OpKind::Neg => "neg".into(),
            OpKind::Min => "min".into(),
            OpKind::Max => "max".into(),
            OpKind::MulAdd => "mul_add".into(),
            OpKind::Abs => "abs".into(),
            OpKind::Sqrt => "sqrt".into(),
            OpKind::Cmp(s) => format!("cmp`{s}`"),
            OpKind::Call(n) => format!("call`{n}`"),
        }
    }

    /// Whether min/max — commutative pair ops whose operand *order* is
    /// still compared (the bijection legalizes consistent renamings,
    /// not swaps; see §10.7 on the first-op caveat).
    fn is_arith(&self) -> bool {
        !matches!(self, OpKind::Cmp(_) | OpKind::Call(_) | OpKind::Min | OpKind::Max)
    }
}

/// Operand provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    /// A named place (canonical descriptor: `self.mean`,
    /// `arrivals[#]`, `<opq#3>` for opaque sites).
    Leaf(String),
    /// Result of an earlier op in this skeleton (index).
    Res(usize),
    /// A float literal (bit pattern — must match exactly).
    Lit(u64),
    /// Folded reciprocal: `1.0 / x` as an operand.
    Recip(Box<Val>),
    /// Wildcard from a `hoist(…)` declaration.
    Hoisted,
}

/// A value flowing through extraction: provenance + class + the
/// descriptor chain (kept separate so postfix `.field` / `[idx]`
/// accesses can extend it).
#[derive(Debug, Clone)]
struct Operand {
    val: Val,
    class: Class,
}

impl Operand {
    fn leaf(desc: String, class: Class) -> Self {
        Operand { val: Val::Leaf(desc), class }
    }
    fn other(desc: String) -> Self {
        Operand::leaf(desc, Class::Other)
    }
}

/// One traced op.
#[derive(Debug, Clone)]
struct Op {
    kind: OpKind,
    args: Vec<Val>,
    line: u32,
    /// Enclosing const-bool-parameter guards (`(name, polarity)`), for
    /// specialization groups.
    guards: Vec<(String, bool)>,
}

/// A member's extracted skeleton.
struct Skeleton {
    ops: Vec<Op>,
    /// First line with `f32` arithmetic, if any.
    f32_line: Option<u32>,
    /// Const params that actually guarded ops.
    guard_consts: BTreeSet<String>,
    /// Fn declaration line (fallback span).
    line: u32,
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

/// Per-function walk context (one per inline frame).
struct Frame<'c> {
    file: usize,
    code: &'c Code<'c>,
    locals: BTreeMap<String, Operand>,
    /// Names whose calls are dropped without tracing: declared
    /// `untraced(…)`, plus closure/param-named callees.
    dropped: BTreeSet<String>,
    hoists: BTreeSet<String>,
    inlines: BTreeSet<String>,
    consts: BTreeSet<String>,
    /// Descriptor that replaces `self` when this frame was inlined
    /// through a method call.
    recv: Option<String>,
}

struct Extractor<'g, 'a> {
    g: &'g Graph<'a>,
    facts: &'g TypeFacts,
    codes: &'g BTreeMap<usize, Code<'g>>,
    /// Fn name → id for members of the group being extracted
    /// (same-group calls auto-inline).
    group_fns: BTreeMap<String, FnId>,
    ops: Vec<Op>,
    guards: Vec<(String, bool)>,
    opaque: usize,
    f32_line: Option<u32>,
    guard_consts: BTreeSet<String>,
    /// `(fn id, hoist name)` pairs consumed — drives `mirror-stale-hoist`.
    hoists_used: BTreeSet<(FnId, String)>,
    /// Inline stack (recursion guard).
    stack: Vec<FnId>,
}

impl<'g, 'a> Extractor<'g, 'a> {
    fn fresh(&mut self) -> Operand {
        self.opaque += 1;
        Operand::leaf(format!("<opq#{}>", self.opaque), Class::Float)
    }

    /// Push a traced op; returns its result operand.
    fn emit(&mut self, kind: OpKind, args: Vec<Operand>, line: u32, class: Class) -> Operand {
        self.ops.push(Op {
            kind,
            args: args.into_iter().map(|a| a.val).collect(),
            line,
            guards: self.guards.clone(),
        });
        Operand { val: Val::Res(self.ops.len() - 1), class }
    }

    /// Extract `id` into `self.ops`. `args` carries positional operands
    /// when inlining (receiver excluded); `recv` the receiver
    /// descriptor for method inlines.
    fn extract_fn(&mut self, id: FnId, args: Option<Vec<Operand>>, recv: Option<String>) {
        if self.stack.contains(&id) {
            return;
        }
        self.stack.push(id);
        let file = self.g.fns_file(id);
        let code = &self.codes[&file];
        let item = self.g.item(id);
        let mut fr = Frame {
            file,
            code,
            locals: BTreeMap::new(),
            dropped: item.mirror_untraced.iter().cloned().collect(),
            hoists: item.mirror_hoists.iter().map(|(n, _)| n.clone()).collect(),
            inlines: item.mirror_inlines.iter().cloned().collect(),
            consts: item.const_params.iter().cloned().collect(),
            recv,
        };
        // locate `fn <name>` on the item's line, then its param list
        let mut sig = None;
        for p in 0..code.len() {
            if code.line(p) == item.line && code.text(p) == "fn" && code.get(p + 1) == Some(item.name.as_str()) {
                sig = Some(p + 2);
                break;
            }
            if code.line(p) > item.line {
                break;
            }
        }
        let (Some(mut p), Some((open, close))) = (sig, item.body) else {
            self.stack.pop();
            return;
        };
        if code.get(p) == Some("<") {
            p = skip_angles(code, p).unwrap_or(p + 1);
        }
        if code.get(p) == Some("(") {
            if let Some(cp) = code.match_bracket(p, "(", ")") {
                self.bind_params(&mut fr, id, p, cp, args);
            }
        }
        // mixed-precision scan over the whole item (signature + body)
        if self.f32_line.is_none() {
            for q in p..=close {
                let t = code.text(q);
                let is_f32 = (code.kind(q) == TokenKind::Ident && t == "f32")
                    || (code.kind(q) == TokenKind::Float && t.ends_with("f32"));
                if is_f32 {
                    self.f32_line = Some(code.line(q));
                    break;
                }
            }
        }
        self.walk_block(&mut fr, open, close);
        self.stack.pop();
    }

    /// Bind the parameter list: depth-0 `name : TYPE` entries between
    /// `open`/`close`, positionally zipped with inline `args` when
    /// present. Hoisted params become wildcards.
    fn bind_params(&mut self, fr: &mut Frame<'_>, id: FnId, open: usize, close: usize, args: Option<Vec<Operand>>) {
        let code = fr.code;
        let mut names = Vec::new();
        let mut p = open + 1;
        let mut depth = 0i32;
        while p < close {
            match code.text(p) {
                "(" | "[" | "<" | "{" => depth += 1,
                ")" | "]" | ">" | "}" => depth -= 1,
                ">>" => depth -= 2,
                "mut" | "&" => {}
                t if depth == 0
                    && code.kind(p) == TokenKind::Ident
                    && code.get(p + 1) == Some(":")
                    && (p == open + 1 || matches!(code.text(p - 1), "," | "mut")) =>
                {
                    let (toks, next) = type_tokens(code, p + 2, close);
                    names.push((t.to_string(), classify_type(&toks)));
                    p = next;
                    continue;
                }
                _ => {}
            }
            p += 1;
        }
        let mut supplied = args.map(Vec::into_iter);
        for (name, class) in names {
            let op = if fr.hoists.contains(&name) {
                self.hoists_used.insert((id, name.clone()));
                // consume the positional arg anyway to stay aligned
                if let Some(it) = supplied.as_mut() {
                    let _ = it.next();
                }
                Operand { val: Val::Hoisted, class: Class::Float }
            } else if let Some(it) = supplied.as_mut() {
                it.next().unwrap_or_else(|| Operand::other(name.clone()))
            } else {
                Operand::leaf(name.clone(), class)
            };
            fr.locals.insert(name, op);
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    /// Walk the statements of a brace block (`open`/`close` are the
    /// positions of `{` / `}`).
    fn walk_block(&mut self, fr: &mut Frame<'_>, open: usize, close: usize) {
        let mut p = open + 1;
        while p < close {
            p = self.stmt(fr, p, close);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, fr: &mut Frame<'_>, p: usize, end: usize) -> usize {
        let code = fr.code;
        match code.text(p) {
            ";" => p + 1,
            "#" if code.get(p + 1) == Some("[") => {
                code.match_bracket(p + 1, "[", "]").map_or(end, |e| e + 1)
            }
            "{" => {
                let close = code.match_bracket(p, "{", "}").unwrap_or(end);
                self.walk_block(fr, p, close);
                close + 1
            }
            "let" => self.stmt_let(fr, p, end),
            "if" => self.stmt_if(fr, p, end),
            "match" => {
                let (_, next) = self.expr(fr, p, 0);
                next
            }
            "while" => {
                let mut q = p + 1;
                if code.get(q) == Some("let") {
                    // while let PAT = expr { … }
                    while q < end && code.text(q) != "=" {
                        q += 1;
                    }
                    q += 1;
                }
                let (_, mut q) = self.expr_until_brace(fr, q, end);
                if code.get(q) == Some("{") {
                    let close = code.match_bracket(q, "{", "}").unwrap_or(end);
                    self.walk_block(fr, q, close);
                    q = close + 1;
                }
                q
            }
            "for" => {
                // skip the pattern to depth-0 `in`
                let mut q = p + 1;
                let mut depth = 0i32;
                while q < end {
                    match code.text(q) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 => break,
                        _ => {}
                    }
                    q += 1;
                }
                let (_, mut q) = self.expr_until_brace(fr, q + 1, end);
                if code.get(q) == Some("{") {
                    let close = code.match_bracket(q, "{", "}").unwrap_or(end);
                    self.walk_block(fr, q, close);
                    q = close + 1;
                }
                q
            }
            "loop" => {
                let mut q = p + 1;
                if code.get(q) == Some("{") {
                    let close = code.match_bracket(q, "{", "}").unwrap_or(end);
                    self.walk_block(fr, q, close);
                    q = close + 1;
                }
                q
            }
            "unsafe" => p + 1,
            "return" | "break" => {
                let mut q = p + 1;
                if q < end && !matches!(code.text(q), ";" | "}") {
                    let (_, n) = self.expr(fr, q, 0);
                    q = n;
                }
                q
            }
            "continue" => p + 1,
            // nested items: skip wholesale (nested fns get their own node)
            "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "const" | "static"
            | "type" => {
                let mut q = p;
                while q < end {
                    match code.text(q) {
                        ";" => return q + 1,
                        "=" if code.text(p) == "const" || code.text(p) == "static" => {
                            // local const value may contain an expr worth
                            // skipping to `;`
                            while q < end && code.text(q) != ";" {
                                q += 1;
                            }
                            return q + 1;
                        }
                        "{" => return code.match_bracket(q, "{", "}").map_or(end, |e| e + 1),
                        _ => q += 1,
                    }
                }
                end
            }
            _ => {
                let (_, next) = self.expr(fr, p, 0);
                if next == p {
                    // safety: never loop in place on unexpected tokens
                    next + 1
                } else {
                    next
                }
            }
        }
    }

    fn stmt_let(&mut self, fr: &mut Frame<'_>, p: usize, end: usize) -> usize {
        let code = fr.code;
        let mut q = p + 1;
        if code.get(q) == Some("mut") {
            q += 1;
        }
        // simple binding: `ident` followed by `:`, `=` or `;`
        let simple = code.kind(q) == TokenKind::Ident
            && matches!(code.get(q + 1), Some(":" | "=" | ";"));
        let name = simple.then(|| code.text(q).to_string());
        let mut declared = None;
        if simple {
            q += 1;
            if code.get(q) == Some(":") {
                let (toks, next) = type_tokens(code, q + 1, end);
                declared = Some(classify_type(&toks));
                q = next.saturating_sub(1).max(q + 1);
                // type_tokens stops before `=`; reposition exactly
                while q < end && !matches!(code.text(q), "=" | ";") {
                    q += 1;
                }
            }
        } else {
            // destructuring pattern: skip to depth-0 `=` or `;`
            let mut depth = 0i32;
            while q < end {
                match code.text(q) {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                q += 1;
            }
        }
        if code.get(q) == Some(";") {
            // `let x;` — bind opaque
            if let Some(n) = name {
                let op = self.fresh();
                fr.locals.insert(n, op);
            }
            return q + 1;
        }
        if code.get(q) != Some("=") {
            return q + 1;
        }
        q += 1;
        // closure rhs → the binding's calls are dropped
        let closure_rhs = matches!(code.get(q), Some("|" | "||" | "move"));
        let (mut val, mut next) = self.expr(fr, q, 0);
        // `let … else { … }` — walk the else block
        if code.get(next) == Some("else") && code.get(next + 1) == Some("{") {
            let close = code.match_bracket(next + 1, "{", "}").unwrap_or(end);
            self.walk_block(fr, next + 1, close);
            next = close + 1;
        }
        if code.get(next) == Some(";") {
            next += 1;
        }
        if let Some(n) = name {
            if let Some(d) = declared {
                if val.class == Class::Other && d != Class::Other {
                    val.class = d;
                }
            }
            if closure_rhs {
                fr.dropped.insert(n.clone());
            }
            fr.locals.insert(n, val);
        }
        next
    }

    fn stmt_if(&mut self, fr: &mut Frame<'_>, p: usize, end: usize) -> usize {
        let code = fr.code;
        let mut q = p + 1;
        // const-bool guard: `if NAME {` / `if ! NAME {`
        let mut guard = None;
        let (gname, gpol, gbody) = if code.get(q) == Some("!")
            && code.get(q + 2) == Some("{")
            && code.kind(q + 1) == TokenKind::Ident
        {
            (code.text(q + 1).to_string(), false, q + 2)
        } else if code.get(q + 1) == Some("{") && code.kind(q) == TokenKind::Ident {
            (code.text(q).to_string(), true, q + 1)
        } else {
            (String::new(), true, 0)
        };
        if !gname.is_empty() && fr.consts.contains(&gname) {
            guard = Some((gname, gpol));
            q = gbody;
        } else if code.get(q) == Some("let") {
            // if let PAT = scrutinee { … }
            let mut depth = 0i32;
            q += 1;
            while q < end {
                match code.text(q) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" if depth == 0 => break,
                    _ => {}
                }
                q += 1;
            }
            let (_, n) = self.expr_until_brace(fr, q + 1, end);
            q = n;
        } else {
            let (_, n) = self.expr_until_brace(fr, q, end);
            q = n;
        }
        if code.get(q) != Some("{") {
            return q;
        }
        let close = code.match_bracket(q, "{", "}").unwrap_or(end);
        if let Some((n, pol)) = &guard {
            self.guards.push((n.clone(), *pol));
            self.guard_consts.insert(n.clone());
            self.walk_block(fr, q, close);
            self.guards.pop();
        } else {
            self.walk_block(fr, q, close);
        }
        q = close + 1;
        if code.get(q) == Some("else") {
            q += 1;
            if code.get(q) == Some("if") {
                return self.stmt_if(fr, q, end);
            }
            if code.get(q) == Some("{") {
                let close = code.match_bracket(q, "{", "}").unwrap_or(end);
                if let Some((n, _)) = &guard {
                    self.guards.push((n.clone(), false));
                    self.walk_block(fr, q, close);
                    self.guards.pop();
                } else {
                    self.walk_block(fr, q, close);
                }
                q = close + 1;
            }
        }
        q
    }

    /// Parse an expression that terminates at a block-opening `{`
    /// (if/while/for headers): struct-literal braces inside the
    /// expression are handled by the primary parser, so the first `{`
    /// the Pratt loop refuses to consume is the body.
    fn expr_until_brace(&mut self, fr: &mut Frame<'_>, p: usize, _end: usize) -> (Operand, usize) {
        self.expr(fr, p, 0)
    }

    // -----------------------------------------------------------------
    // Expressions (Pratt)
    // -----------------------------------------------------------------

    /// Binding powers: `(left, right)` per binary operator. `None`
    /// terminates the loop.
    fn infix_bp(t: &str) -> Option<(u8, u8)> {
        Some(match t {
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "|=" | "&=" | "^=" | "<<=" | ">>=" => (3, 2),
            ".." | "..=" => (5, 6),
            "||" => (7, 8),
            "&&" => (9, 10),
            "==" | "!=" | "<" | ">" | "<=" | ">=" => (11, 12),
            "|" => (13, 14),
            "^" => (15, 16),
            "&" => (17, 18),
            "<<" | ">>" => (19, 20),
            "+" | "-" => (21, 22),
            "*" | "/" | "%" => (23, 24),
            "as" => (25, 26),
            _ => return None,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, fr: &mut Frame<'_>, p: usize, min_bp: u8) -> (Operand, usize) {
        let code = fr.code;
        let (mut lhs, mut p) = self.primary(fr, p);
        while let Some(t) = code.get(p) {
            // `<` that opens generics in a path position was consumed by
            // primary; here it is always a comparison.
            let Some((lbp, rbp)) = Self::infix_bp(t) else { break };
            if lbp < min_bp {
                break;
            }
            let t = t.to_string();
            let line = code.line(p);
            if t == "as" {
                // cast: consume the type tokens
                let mut q = p + 1;
                let mut toks: Vec<String> = Vec::new();
                while q < code.len() {
                    let tt = code.text(q);
                    if code.kind(q) == TokenKind::Ident || tt == "::" {
                        toks.push(tt.to_string());
                        q += 1;
                        if code.get(q) == Some("<") {
                            q = skip_angles(code, q).unwrap_or(q + 1);
                        }
                        if code.get(q) != Some("::") {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
                let target = classify_type(&refs);
                lhs = match target {
                    // non-float → f64: fresh opaque float leaf (the cast
                    // value's provenance is deliberately erased; both
                    // members of a group cast at the same position)
                    Class::Float if lhs.class != Class::Float => self.fresh(),
                    Class::Float => lhs,
                    c => Operand { val: lhs.val, class: c },
                };
                p = q;
                continue;
            }
            let (rhs, next) = self.expr(fr, p + 1, rbp);
            p = next;
            let traced = lhs.class == Class::Float || rhs.class == Class::Float;
            let kind = match t.as_str() {
                "+" | "+=" => Some(OpKind::Add),
                "-" | "-=" => Some(OpKind::Sub),
                "*" | "*=" => Some(OpKind::Mul),
                "/" | "/=" => Some(OpKind::Div),
                "%" | "%=" => Some(OpKind::Rem),
                "<" => Some(OpKind::Cmp("<")),
                "<=" => Some(OpKind::Cmp("<=")),
                ">" => Some(OpKind::Cmp(">")),
                ">=" => Some(OpKind::Cmp(">=")),
                "==" => Some(OpKind::Cmp("==")),
                "!=" => Some(OpKind::Cmp("!=")),
                _ => None,
            };
            let assigned = t.ends_with('=') && !matches!(t.as_str(), "==" | "!=" | "<=" | ">=");
            match kind {
                Some(k) if traced => {
                    // reciprocal folding: `1.0 / x` becomes a recip operand
                    if matches!(k, OpKind::Div)
                        && !assigned
                        && lhs.val == Val::Lit(1.0f64.to_bits())
                    {
                        lhs = Operand { val: Val::Recip(Box::new(rhs.val)), class: Class::Float };
                        continue;
                    }
                    let cls = if matches!(k, OpKind::Cmp(_)) { Class::Int } else { Class::Float };
                    let res = self.emit(k, vec![lhs.clone(), rhs], line, cls);
                    lhs = if assigned { Operand::other(String::new()) } else { res };
                }
                _ => {
                    if t == "=" {
                        // plain assignment: rebind bare-ident lhs so class
                        // propagates (`m = m.min(x)`)
                        if let Val::Leaf(d) = &lhs.val {
                            if fr.locals.contains_key(d) {
                                fr.locals.insert(d.clone(), rhs.clone());
                            }
                        }
                        lhs = Operand::other(String::new());
                    } else if !assigned {
                        // untraced binary: result class joins int-ness
                        let cls = if lhs.class == Class::Int && rhs.class == Class::Int {
                            Class::Int
                        } else {
                            Class::Other
                        };
                        lhs = Operand { val: lhs.val, class: cls };
                    } else {
                        lhs = Operand::other(String::new());
                    }
                }
            }
        }
        (lhs, p)
    }

    /// Primary expressions + postfix chains.
    #[allow(clippy::too_many_lines)]
    fn primary(&mut self, fr: &mut Frame<'_>, p: usize) -> (Operand, usize) {
        let code = fr.code;
        let Some(t) = code.get(p) else {
            return (Operand::other(String::new()), p);
        };
        let line = code.line(p);
        let (mut cur, mut p) = match t {
            "-" => {
                let (v, n) = self.primary(fr, p + 1);
                if v.class == Class::Float {
                    let res = self.emit(OpKind::Neg, vec![v], line, Class::Float);
                    (res, n)
                } else {
                    (v, n)
                }
            }
            "!" | "*" | "&" => {
                let mut q = p + 1;
                if t == "&" && code.get(q) == Some("mut") {
                    q += 1;
                }
                return self.primary_postfix(fr, q);
            }
            "move" | "|" | "||" => {
                // closure literal: bind params opaque, walk body
                let mut q = p;
                if code.get(q) == Some("move") {
                    q += 1;
                }
                if code.get(q) == Some("||") {
                    q += 1;
                } else if code.get(q) == Some("|") {
                    q += 1;
                    while q < code.len() && code.text(q) != "|" {
                        if code.kind(q) == TokenKind::Ident
                            && !matches!(code.text(q), "mut" | "ref")
                        {
                            let n = code.text(q).to_string();
                            fr.dropped.insert(n.clone());
                            fr.locals.insert(n, Operand::other(String::new()));
                        }
                        q += 1;
                    }
                    q += 1;
                }
                if code.get(q) == Some("->") {
                    while q < code.len() && code.text(q) != "{" {
                        q += 1;
                    }
                }
                if code.get(q) == Some("{") {
                    let close = code.match_bracket(q, "{", "}").unwrap_or(code.len() - 1);
                    self.walk_block(fr, q, close);
                    (Operand::other(String::new()), close + 1)
                } else {
                    let (_, n) = self.expr(fr, q, 0);
                    (Operand::other(String::new()), n)
                }
            }
            "(" => {
                let close = code.match_bracket(p, "(", ")").unwrap_or(p);
                let (v, mut q) = self.expr(fr, p + 1, 0);
                let mut tuple = false;
                while code.get(q) == Some(",") && q < close {
                    tuple = true;
                    let (_, n) = self.expr(fr, q + 1, 0);
                    q = n;
                }
                let v = if tuple { Operand::other(String::new()) } else { v };
                (v, close + 1)
            }
            "[" => {
                // array literal `[expr; N]` / `[a, b, …]`
                let close = code.match_bracket(p, "[", "]").unwrap_or(p);
                let (first, mut q) = self.expr(fr, p + 1, 0);
                while q < close {
                    if matches!(code.get(q), Some(";" | ",")) {
                        let (_, n) = self.expr(fr, q + 1, 0);
                        q = n;
                    } else {
                        q += 1;
                    }
                }
                let cls = if first.class == Class::Float { Class::FloatSlice } else { Class::Other };
                self.opaque += 1;
                (Operand::leaf(format!("<arr#{}>", self.opaque), cls), close + 1)
            }
            "if" => {
                let n = self.stmt_if(fr, p, code.len());
                (self.fresh(), n)
            }
            "match" => {
                let n = self.expr_match(fr, p);
                (self.fresh(), n)
            }
            ".." | "..=" => {
                // prefix range `..x`
                let (_, n) = self.expr(fr, p + 1, 6);
                (Operand::other(String::new()), n)
            }
            _ if code.kind(p) == TokenKind::Float => {
                let text = t.trim_end_matches("f64").trim_end_matches("f32");
                let bits = text.parse::<f64>().map_or(0, f64::to_bits);
                (Operand { val: Val::Lit(bits), class: Class::Float }, p + 1)
            }
            _ if code.kind(p) == TokenKind::Int => {
                let text = t.to_string();
                (Operand::leaf(format!("#{text}"), Class::Int), p + 1)
            }
            _ if matches!(code.kind(p), TokenKind::Str | TokenKind::Char) => {
                (Operand::other(String::new()), p + 1)
            }
            _ if code.kind(p) == TokenKind::Ident || code.kind(p) == TokenKind::Lifetime => {
                return self.primary_path(fr, p);
            }
            _ => (Operand::other(String::new()), p + 1),
        };
        // postfix on non-path primaries (e.g. `(a + b).sqrt()`)
        loop {
            let (v, np, stepped) = self.postfix_step(fr, cur, p, None);
            cur = v;
            p = np;
            if !stepped {
                return (cur, p);
            }
        }
    }

    fn primary_postfix(&mut self, fr: &mut Frame<'_>, p: usize) -> (Operand, usize) {
        self.primary(fr, p)
    }

    /// Match-expression: scrutinee, then arms (`pat => expr,`).
    fn expr_match(&mut self, fr: &mut Frame<'_>, p: usize) -> usize {
        let code = fr.code;
        let (_, mut q) = self.expr_until_brace(fr, p + 1, code.len());
        if code.get(q) != Some("{") {
            return q;
        }
        let close = code.match_bracket(q, "{", "}").unwrap_or(q);
        q += 1;
        while q < close {
            // skip the pattern (and any `if` guard) to depth-0 `=>`
            let mut depth = 0i32;
            while q < close {
                match code.text(q) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                q += 1;
            }
            if q >= close {
                break;
            }
            q += 1;
            if code.get(q) == Some("{") {
                let bc = code.match_bracket(q, "{", "}").unwrap_or(close);
                self.walk_block(fr, q, bc);
                q = bc + 1;
            } else {
                let (_, n) = self.expr(fr, q, 0);
                q = n;
            }
            if code.get(q) == Some(",") {
                q += 1;
            }
        }
        close + 1
    }

    /// Ident-rooted primary: paths, calls, macros, struct literals,
    /// place chains.
    #[allow(clippy::too_many_lines)]
    fn primary_path(&mut self, fr: &mut Frame<'_>, p: usize) -> (Operand, usize) {
        let code = fr.code;
        // collect the path: Ident (:: Ident | :: <…>)*
        let mut segs = vec![code.text(p).to_string()];
        let mut q = p + 1;
        while code.get(q) == Some("::") {
            if code.get(q + 1) == Some("<") {
                q = skip_angles(code, q + 1).unwrap_or(q + 2);
            } else if q + 1 < code.len() && code.kind(q + 1) == TokenKind::Ident {
                segs.push(code.text(q + 1).to_string());
                q += 2;
            } else {
                q += 1;
                break;
            }
        }
        let base = segs[0].clone();
        let last = segs.last().cloned().unwrap_or_default();
        // macro invocation: skip balanced, no ops (debug_asserts are
        // deliberately invisible to the skeleton)
        if code.get(q) == Some("!") {
            let open = q + 1;
            let (ob, cb) = match code.get(open) {
                Some("(") => ("(", ")"),
                Some("[") => ("[", "]"),
                Some("{") => ("{", "}"),
                _ => return (Operand::other(String::new()), open),
            };
            let close = code.match_bracket(open, ob, cb).unwrap_or(open);
            return (Operand::other(String::new()), close + 1);
        }
        // call
        if code.get(q) == Some("(") {
            return self.call(fr, &last, None, q, code.line(p));
        }
        // struct literal: `Upper {` / `Self {`
        let upper = last.chars().next().is_some_and(char::is_uppercase);
        if code.get(q) == Some("{") && upper {
            let close = code.match_bracket(q, "{", "}").unwrap_or(q);
            let mut r = q + 1;
            while r < close {
                if code.kind(r) == TokenKind::Ident && code.get(r + 1) == Some(":") {
                    let (_, n) = self.expr(fr, r + 2, 4);
                    r = n;
                } else if code.get(r) == Some("..") {
                    let (_, n) = self.expr(fr, r + 1, 0);
                    r = n;
                } else {
                    r += 1;
                }
                if code.get(r) == Some(",") {
                    r += 1;
                }
            }
            return (Operand::other(String::new()), close + 1);
        }
        // known float constants
        if segs.len() == 2 && segs[0] == "f64" {
            let bits = match last.as_str() {
                "INFINITY" => Some(f64::INFINITY),
                "NEG_INFINITY" => Some(f64::NEG_INFINITY),
                "MAX" => Some(f64::MAX),
                "MIN" => Some(f64::MIN),
                "MIN_POSITIVE" => Some(f64::MIN_POSITIVE),
                "EPSILON" => Some(f64::EPSILON),
                "NAN" => Some(f64::NAN),
                _ => None,
            };
            if let Some(v) = bits {
                let cur = Operand { val: Val::Lit(v.to_bits()), class: Class::Float };
                return self.postfix_chain(fr, cur, q, None);
            }
        }
        // place expression rooted at `base`
        let (mut cur, desc) = if segs.len() == 1 {
            if let Some(op) = fr.locals.get(&base) {
                (op.clone(), Some(base))
            } else if base == "self" {
                let d = fr.recv.clone().unwrap_or_else(|| "self".to_string());
                (Operand::other(d.clone()), Some(d))
            } else {
                (Operand::other(base.clone()), Some(base))
            }
        } else {
            let d = segs.join("::");
            (Operand::other(d.clone()), Some(d))
        };
        if let Some(d) = &desc {
            if cur.class == Class::Other && matches!(cur.val, Val::Leaf(_)) {
                cur.val = Val::Leaf(d.clone());
            }
        }
        self.postfix_chain(fr, cur, q, desc)
    }

    /// Apply postfix steps (`.field`, `.method(…)`, `[idx]`, `?`)
    /// until none match.
    fn postfix_chain(
        &mut self,
        fr: &mut Frame<'_>,
        mut cur: Operand,
        mut p: usize,
        mut desc: Option<String>,
    ) -> (Operand, usize) {
        loop {
            let (v, np, stepped) = self.postfix_step(fr, cur, p, desc.clone());
            if !stepped {
                return (v, np);
            }
            // descriptor continuity: leaf results keep their chain
            desc = match &v.val {
                Val::Leaf(d) if !d.starts_with("<opq") => Some(d.clone()),
                _ => None,
            };
            cur = v;
            p = np;
        }
    }

    /// One postfix step. Returns `(operand, next, stepped)`: when no
    /// postfix construct starts at `p`, `cur` is handed back unchanged
    /// with `stepped == false`.
    #[allow(clippy::too_many_lines)]
    fn postfix_step(
        &mut self,
        fr: &mut Frame<'_>,
        cur: Operand,
        p: usize,
        desc: Option<String>,
    ) -> (Operand, usize, bool) {
        let code = fr.code;
        match code.get(p) {
            Some("?") => (cur, p + 1, true),
            Some(".") => {
                let Some(name) = code.get(p + 1) else { return (cur, p, false) };
                if code.kind(p + 1) == TokenKind::Int {
                    // tuple field `.0`
                    let d = desc.map(|d| format!("{d}.{name}"));
                    let v = d.map_or_else(
                        || Operand::other(String::new()),
                        |d| Operand::leaf(d, Class::Other),
                    );
                    return (v, p + 2, true);
                }
                if name == "await" {
                    return (cur, p + 2, true);
                }
                let name = name.to_string();
                let mut q = p + 2;
                if code.get(q) == Some("::") && code.get(q + 1) == Some("<") {
                    q = skip_angles(code, q + 1).unwrap_or(q + 2);
                }
                if code.get(q) == Some("(") {
                    let line = code.line(p + 1);
                    let recv = Recv { op: cur, desc };
                    let (v, n) = self.call(fr, &name, Some(recv), q, line);
                    return (v, n, true);
                }
                // field access
                let d = desc.map(|d| format!("{d}.{name}"));
                let cls = self.facts.fields.get(&name).copied().unwrap_or(Class::Other);
                let v = match d {
                    Some(d) => Operand::leaf(d, cls),
                    None => Operand { val: self.fresh().val, class: cls },
                };
                (v, p + 2, true)
            }
            Some("[") => {
                let close = code.match_bracket(p, "[", "]").unwrap_or(p);
                // range index ⇒ slicing (class preserved)
                let mut depth = 0i32;
                let mut is_range = false;
                for r in p + 1..close {
                    match code.text(r) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ".." | "..=" if depth == 0 => is_range = true,
                        _ => {}
                    }
                }
                if p + 1 < close {
                    let (_, _) = self.expr(fr, p + 1, 0);
                }
                let (cls, suffix) = if is_range {
                    (cur.class, "[..]")
                } else {
                    let c = match cur.class {
                        Class::FloatSlice => Class::Float,
                        _ => Class::Other,
                    };
                    (c, "[#]")
                };
                let v = match desc {
                    Some(d) => Operand::leaf(format!("{d}{suffix}"), cls),
                    None => Operand { val: self.fresh().val, class: cls },
                };
                (v, close + 1, true)
            }
            _ => (cur, p, false),
        }
    }

    /// A call — plain (`name(args)`) or method (`recv.name(args)`).
    /// `open` is the `(`.
    #[allow(clippy::too_many_lines)]
    fn call(
        &mut self,
        fr: &mut Frame<'_>,
        name: &str,
        recv: Option<Recv>,
        open: usize,
        line: u32,
    ) -> (Operand, usize) {
        let code = fr.code;
        let close = code.match_bracket(open, "(", ")").unwrap_or(open);
        // parse the arguments (ops inside args are always traced)
        let mut args = Vec::new();
        let mut q = open + 1;
        while q < close {
            let (v, n) = self.expr(fr, q, 4);
            args.push(v);
            q = if code.get(n) == Some(",") { n + 1 } else { n.max(q + 1) };
            if n >= close {
                break;
            }
        }
        let next = close + 1;
        // hoisted call: stands for `div(float-arg, <hoisted>)`
        if fr.hoists.contains(name) {
            if let Some(id) = self.stack.last().copied() {
                self.hoists_used.insert((id, name.to_string()));
            }
            let num = args
                .iter()
                .find(|a| a.class == Class::Float)
                .cloned()
                .unwrap_or_else(|| self.fresh());
            let res = self.emit(
                OpKind::Div,
                vec![num, Operand { val: Val::Hoisted, class: Class::Float }],
                line,
                Class::Float,
            );
            return (res, next);
        }
        // dropped: untraced(…) declarations, plus calls through a local
        // binding (a closure or fn-typed parameter like the kernels'
        // `select` chooser — its ops belong to the caller's phase, not
        // the Lindley skeleton)
        if fr.dropped.contains(name) || (recv.is_none() && fr.locals.contains_key(name)) {
            return (Operand::other(String::new()), next);
        }
        // same-group or declared inline
        let inline_id = self
            .group_fns
            .get(name)
            .copied()
            .or_else(|| fr.inlines.contains(name).then(|| self.find_fn(fr.file, name)).flatten());
        if let Some(id) = inline_id {
            let recv_desc = recv.and_then(|r| r.desc);
            self.extract_fn(id, Some(args), recv_desc);
            let cls = self.facts.returns.get(name).copied().unwrap_or(Class::Other);
            let mut v =
                if cls == Class::Float { self.fresh() } else { Operand::other(String::new()) };
            v.class = cls;
            return (v, next);
        }
        // intrinsic float methods
        if let Some(r) = &recv {
            let rf = r.op.class == Class::Float;
            let a0f = args.first().is_some_and(|a| a.class == Class::Float);
            match name {
                "max" | "min" if rf || a0f => {
                    let kind = if name == "max" { OpKind::Max } else { OpKind::Min };
                    let arg = args.into_iter().next().unwrap_or_else(|| self.fresh());
                    let res = self.emit(kind, vec![r.op.clone(), arg], line, Class::Float);
                    return (res, next);
                }
                "mul_add" if rf => {
                    let mut it = args.into_iter();
                    let a = it.next().unwrap_or_else(|| self.fresh());
                    let b = it.next().unwrap_or_else(|| self.fresh());
                    let res = self.emit(OpKind::MulAdd, vec![r.op.clone(), a, b], line, Class::Float);
                    return (res, next);
                }
                "abs" if rf => {
                    let res = self.emit(OpKind::Abs, vec![r.op.clone()], line, Class::Float);
                    return (res, next);
                }
                "sqrt" if rf => {
                    let res = self.emit(OpKind::Sqrt, vec![r.op.clone()], line, Class::Float);
                    return (res, next);
                }
                "recip" if rf => {
                    let v = Operand {
                        val: Val::Recip(Box::new(r.op.val.clone())),
                        class: Class::Float,
                    };
                    return (v, next);
                }
                "to_bits" if rf => {
                    return (Operand::other(String::new()), next);
                }
                "len" | "count" => {
                    let v = Operand {
                        val: self.fresh().val,
                        class: Class::Int,
                    };
                    return (v, next);
                }
                _ => {}
            }
        }
        // opaque call: traced iff any scalar-float flows in
        let mut floats: Vec<Operand> = Vec::new();
        if let Some(r) = &recv {
            if r.op.class == Class::Float {
                floats.push(r.op.clone());
            }
        }
        floats.extend(args.iter().filter(|a| a.class == Class::Float).cloned());
        let ret = self.facts.returns.get(name).copied().unwrap_or(Class::Other);
        if floats.is_empty() {
            // keep descriptor continuity for accessor chains:
            // `trace.arrivals()[i]`
            let v = match recv.and_then(|r| r.desc) {
                Some(d) => Operand::leaf(format!("{d}.{name}()"), ret),
                None => Operand { val: self.fresh().val, class: ret },
            };
            return (v, next);
        }
        let cls = if ret == Class::Other { Class::Float } else { ret };
        let res = self.emit(OpKind::Call(name.to_string()), floats, line, cls);
        (res, next)
    }

    /// Resolve an `inline(name)` target: same file first, else a unique
    /// workspace-wide match by fn name.
    fn find_fn(&self, file: usize, name: &str) -> Option<FnId> {
        let mut same_file = None;
        let mut global = Vec::new();
        for id in self.g.ids() {
            let it = self.g.item(id);
            if it.name == name && it.has_body && !it.in_test {
                if self.g.fns_file(id) == file {
                    same_file = Some(id);
                }
                global.push(id);
            }
        }
        same_file.or(if global.len() == 1 { global.first().copied() } else { None })
    }
}

/// A method-call receiver: its operand + descriptor chain.
struct Recv {
    op: Operand,
    desc: Option<String>,
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// A divergence between a member and the group's reference skeleton.
struct Divergence {
    /// Line in the member under test.
    line: u32,
    /// Line in the reference member.
    ref_line: u32,
    detail: String,
}

/// Compare two operand provenances under the group's lockstep
/// α-bijection: leaf descriptors bind pairwise on first co-occurrence,
/// then must agree forever after. `Hoisted` is a wildcard.
fn vals_match(
    a: &Val,
    b: &Val,
    ab: &mut BTreeMap<String, String>,
    ba: &mut BTreeMap<String, String>,
) -> bool {
    match (a, b) {
        (Val::Hoisted, _) | (_, Val::Hoisted) => true,
        (Val::Res(i), Val::Res(j)) => i == j,
        (Val::Lit(x), Val::Lit(y)) => x == y,
        (Val::Recip(x), Val::Recip(y)) => vals_match(x, y, ab, ba),
        (Val::Leaf(x), Val::Leaf(y)) => {
            match (ab.get(x), ba.get(y)) {
                (Some(mx), Some(my)) => mx == y && my == x,
                (None, None) => {
                    ab.insert(x.clone(), y.clone());
                    ba.insert(y.clone(), x.clone());
                    true
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Ordered comparison of a member (`b`) against the reference (`a`).
fn compare_exact(a: &Skeleton, b: &Skeleton) -> Option<Divergence> {
    let mut ab = BTreeMap::new();
    let mut ba = BTreeMap::new();
    let n = a.ops.len().min(b.ops.len());
    for k in 0..n {
        let (oa, ob) = (&a.ops[k], &b.ops[k]);
        if oa.kind != ob.kind {
            return Some(Divergence {
                line: ob.line,
                ref_line: oa.line,
                detail: format!(
                    "op #{k} is `{}` here but `{}` in the reference",
                    ob.kind.name(),
                    oa.kind.name()
                ),
            });
        }
        if oa.args.len() != ob.args.len() {
            return Some(Divergence {
                line: ob.line,
                ref_line: oa.line,
                detail: format!(
                    "op #{k} `{}` takes {} operand(s) here but {} in the reference",
                    ob.kind.name(),
                    ob.args.len(),
                    oa.args.len()
                ),
            });
        }
        for (i, (va, vb)) in oa.args.iter().zip(&ob.args).enumerate() {
            if !vals_match(va, vb, &mut ab, &mut ba) {
                return Some(Divergence {
                    line: ob.line,
                    ref_line: oa.line,
                    detail: format!(
                        "op #{k} `{}`: operand {} has different provenance \
                         (a value renaming that was consistent so far no longer is)",
                        ob.kind.name(),
                        i
                    ),
                });
            }
        }
    }
    if a.ops.len() != b.ops.len() {
        let (line, ref_line, detail) = if b.ops.len() > n {
            (
                b.ops[n].line,
                a.ops.last().map_or(a.line, |o| o.line),
                format!(
                    "extra op #{n} `{}` beyond the reference's {} op(s)",
                    b.ops[n].kind.name(),
                    a.ops.len()
                ),
            )
        } else {
            (
                b.ops.last().map_or(b.line, |o| o.line),
                a.ops[n].line,
                format!(
                    "missing op #{n} `{}` — the reference has {} op(s), this member {}",
                    a.ops[n].kind.name(),
                    a.ops.len(),
                    b.ops.len()
                ),
            )
        };
        return Some(Divergence { line, ref_line, detail });
    }
    None
}

/// Ulp-group comparison: the arithmetic op *set* must match, order
/// exempt; `div` canonicalizes to `mul` (reciprocal rewrites are the
/// point of the block collector), comparisons / min / max / calls are
/// exempt entirely.
fn compare_ulp(a: &Skeleton, b: &Skeleton) -> Option<Divergence> {
    let setify = |s: &Skeleton| -> BTreeMap<String, u32> {
        let mut set = BTreeMap::new();
        for op in &s.ops {
            if !op.kind.is_arith() {
                continue;
            }
            let k = match op.kind {
                OpKind::Div => OpKind::Mul,
                ref k => k.clone(),
            };
            set.entry(k.name()).or_insert(op.line);
        }
        set
    };
    let (sa, sb) = (setify(a), setify(b));
    for (k, line) in &sb {
        if !sa.contains_key(k) {
            return Some(Divergence {
                line: *line,
                ref_line: a.line,
                detail: format!("ulp group: op `{k}` has no counterpart in the reference"),
            });
        }
    }
    for (k, line) in &sa {
        if !sb.contains_key(k) {
            return Some(Divergence {
                line: b.line,
                ref_line: *line,
                detail: format!("ulp group: reference op `{k}` is missing here"),
            });
        }
    }
    None
}

/// Specialization group: every monomorphization (each combination of
/// the guarding const-bool parameters) must execute a *subsequence* of
/// the all-demands-on op sequence — demand tiers may skip work, never
/// compute different work.
fn check_specialization(s: &Skeleton) -> Option<Divergence> {
    let consts: Vec<&String> = s.guard_consts.iter().collect();
    let k = consts.len().min(6);
    let active = |op: &Op, bits: usize| -> bool {
        op.guards.iter().all(|(name, pol)| {
            consts
                .iter()
                .position(|c| *c == name)
                .is_none_or(|i| ((bits >> i) & 1 == 1) == *pol)
        })
    };
    let full = (1usize << k) - 1;
    let reference: Vec<&Op> = s.ops.iter().filter(|o| active(o, full)).collect();
    for bits in 0..(1usize << k) {
        let combo: Vec<&Op> = s.ops.iter().filter(|o| active(o, bits)).collect();
        // subsequence check on (kind)
        let mut ri = 0usize;
        for op in &combo {
            while ri < reference.len() && reference[ri].kind != op.kind {
                ri += 1;
            }
            if ri == reference.len() {
                let combo_desc: Vec<String> = consts
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("{c}={}", (bits >> i) & 1 == 1))
                    .collect();
                return Some(Divergence {
                    line: op.line,
                    ref_line: s.line,
                    detail: format!(
                        "monomorphization <{}> computes `{}` that the all-demands-on \
                         path never computes",
                        combo_desc.join(", "),
                        op.kind.name()
                    ),
                });
            }
            ri += 1;
        }
    }
    None
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// One enrolled member.
struct Member {
    id: FnId,
    ulp: bool,
    dline: u32,
}

/// Run the mirror tier over a prebuilt item graph. The driver builds
/// one graph and shares it across the workspace tiers' threads.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_graph(g: &Graph<'_>, cfg: &Config) -> Vec<Finding> {
    let mut codes: BTreeMap<usize, Code<'_>> = BTreeMap::new();
    for (i, pf) in g.files.iter().enumerate() {
        codes.insert(i, Code::new(&pf.file.src));
    }
    let facts = TypeFacts::build(&codes);
    // collect groups in declaration order (file × fn order)
    let mut groups: BTreeMap<String, Vec<Member>> = BTreeMap::new();
    for id in g.ids() {
        for (group, ulp, dline) in &g.item(id).mirrors {
            groups
                .entry(group.clone())
                .or_default()
                .push(Member { id, ulp: *ulp, dline: *dline });
        }
    }
    let mut out = Vec::new();
    let mut hoists_used: BTreeSet<(FnId, String)> = BTreeSet::new();
    let push = |out: &mut Vec<Finding>, g: &Graph<'_>, id: FnId, rule: &'static str, line: u32, message: String| {
        let file_idx = g.fns_file(id);
        let crate_id = &g.files[file_idx].file.crate_id;
        if !cfg.rule_applies(rule, crate_id) {
            return;
        }
        out.push(Finding {
            file: g.files[file_idx].file.rel.clone(),
            line,
            rule,
            message,
            waived: waived(g, file_idx, rule, line),
            severity: Severity::Deny,
        });
    };
    for (gname, members) in &groups {
        // mode consistency
        let ulp = members[0].ulp;
        if let Some(m) = members.iter().find(|m| m.ulp != ulp) {
            push(
                &mut out,
                g,
                m.id,
                "mirror-divergence",
                m.dline,
                format!(
                    "group `{gname}` mixes `mirrors({gname})` and `mirrors({gname}, ulp)` \
                     declarations — a group is either exact or ulp-bounded"
                ),
            );
            continue;
        }
        let group_fns: BTreeMap<String, FnId> = members
            .iter()
            .map(|m| (g.item(m.id).name.clone(), m.id))
            .collect();
        // extract every member
        let mut skels: Vec<(FnId, Skeleton)> = Vec::new();
        for m in members {
            let mut ex = Extractor {
                g,
                facts: &facts,
                codes: &codes,
                group_fns: group_fns.clone(),
                ops: Vec::new(),
                guards: Vec::new(),
                opaque: 0,
                f32_line: None,
                guard_consts: BTreeSet::new(),
                hoists_used: BTreeSet::new(),
                stack: Vec::new(),
            };
            ex.extract_fn(m.id, None, None);
            hoists_used.extend(ex.hoists_used.iter().cloned());
            let skel = Skeleton {
                ops: ex.ops,
                f32_line: ex.f32_line,
                guard_consts: ex.guard_consts,
                line: g.item(m.id).line,
            };
            if let Some(line) = skel.f32_line {
                push(
                    &mut out,
                    g,
                    m.id,
                    "mirror-mixed-precision",
                    line,
                    format!(
                        "`{}` (mirror group `{gname}`) touches `f32` — annotated kernels \
                         must be pure `f64`",
                        g.label(m.id)
                    ),
                );
            }
            skels.push((m.id, skel));
        }
        // single member: specialization (const-guarded) or orphan
        if members.len() == 1 {
            let (id, skel) = &skels[0];
            if skel.guard_consts.is_empty() {
                push(
                    &mut out,
                    g,
                    *id,
                    "mirror-orphan",
                    members[0].dline,
                    format!(
                        "group `{gname}` has a single member `{}` with no const-bool \
                         monomorphization guards — nothing to compare; add the paired \
                         kernel or drop the annotation",
                        g.label(*id)
                    ),
                );
            } else if let Some(d) = check_specialization(skel) {
                push(
                    &mut out,
                    g,
                    *id,
                    "mirror-divergence",
                    d.line,
                    format!("group `{gname}`: {}", d.detail),
                );
            }
            continue;
        }
        // multi-member: reference = first declared
        let (ref_id, ref_skel) = (skels[0].0, &skels[0].1);
        let ref_file = &g.file_of(ref_id).file.rel;
        for (id, skel) in &skels[1..] {
            let div = if ulp { compare_ulp(ref_skel, skel) } else { compare_exact(ref_skel, skel) };
            if let Some(d) = div {
                push(
                    &mut out,
                    g,
                    *id,
                    "mirror-divergence",
                    d.line,
                    format!(
                        "`{}` diverges from mirror group `{gname}` reference `{}` \
                         ({ref_file}:{}): {}",
                        g.label(*id),
                        g.label(ref_id),
                        d.ref_line,
                        d.detail
                    ),
                );
            }
        }
    }
    // stale hoists: declared on an enrolled fn but never consumed by
    // any extraction that walked it
    for id in g.ids() {
        let item = g.item(id);
        if item.mirrors.is_empty() {
            continue;
        }
        for (name, dline) in &item.mirror_hoists {
            if !hoists_used.contains(&(id, name.clone())) {
                let file_idx = g.fns_file(id);
                let crate_id = &g.files[file_idx].file.crate_id;
                if !cfg.rule_applies("mirror-stale-hoist", crate_id) {
                    continue;
                }
                out.push(Finding {
                    file: g.files[file_idx].file.rel.clone(),
                    line: *dline,
                    rule: "mirror-stale-hoist",
                    message: format!(
                        "hoist `{name}` on `{}` matched no parameter or call — the \
                         declaration is stale",
                        g.label(id)
                    ),
                    waived: waived(g, file_idx, "mirror-stale-hoist", *dline),
                    severity: Severity::Deny,
                });
            }
        }
    }
    out
}
