//! The per-file rule catalogue and checking engine.
//!
//! Every rule here works on the raw token stream from [`crate::lexer`]
//! plus a little bracket matching — no parse tree. The shared token
//! utilities ([`crate::items::Code`]) and the directive scanner live in
//! [`crate::items`], because the semantic tier builds on the same
//! foundations. The catalogue:
//!
//! | id | guards against |
//! |----|----------------|
//! | `determinism` | `HashMap`/`HashSet`, `Instant`/`SystemTime`, `std::env` in result-affecting library code |
//! | `no-alloc` | allocating constructs inside `// dses-lint: deny(alloc)` functions |
//! | `panic-hygiene` | `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!` in library code |
//! | `float-totality` | `partial_cmp(…).unwrap()` and `==`/`!=` against float literals outside the blessed helpers |
//! | `header-conformance` | crate roots missing `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` |
//! | `waiver-syntax` | malformed waivers: missing reason, unknown rule id |
//! | `unused-waiver` | *(warning)* waivers that suppress nothing |
//!
//! The semantic tier ([`crate::semantic`]) adds `no-alloc-transitive`,
//! `determinism-transitive`, `layering`, and `state-needs`; their
//! waivers are honoured there, so this engine only validates their ids.
//!
//! Findings are suppressed by inline waivers:
//!
//! ```text
//! // dses-lint: allow(<rule>[, <rule>…]) -- <reason>
//! ```
//!
//! placed on the offending line (trailing) or on the line directly above
//! it (the waiver then covers the *next* line of code). A reason is
//! mandatory. `allow-file(<rule>) -- <reason>` at any point waives the
//! rule for the whole file — for files whose idiom systematically
//! triggers a rule (e.g. exact-zero guards in special-function code).
//! `// dses-lint: deny(alloc)` immediately before a `fn` opts that
//! function *into* the `no-alloc` rule.

use crate::config::Config;
use crate::items::{in_spans, scan_directives, Code, Directive, DirectiveKind};
use crate::lexer::TokenKind;
use crate::report::{Finding, Severity};

/// Which compilation target a file belongs to — decides which rules run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/**`): exempt from
    /// `panic-hygiene` and `determinism` (exhibits may time themselves
    /// and crash on bad CLI input).
    Bin,
    /// Tests, benches, examples, fixtures: only waiver hygiene applies.
    Test,
}

/// Is this file a crate root, and of which target?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// `src/lib.rs`: needs the full preamble.
    LibRoot,
    /// `src/main.rs` of a bin-only crate: needs `forbid(unsafe_code)`.
    BinRoot,
}

/// One file to check, with the context the driver derived for it.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// Workspace-relative path, `/`-separated (also used in findings).
    pub path: &'a str,
    /// Crate directory name under `crates/` (`sim`, `core`, …).
    pub crate_id: &'a str,
    /// Target kind.
    pub kind: FileKind,
    /// Set when the file is a crate root.
    pub root: Option<RootKind>,
    /// File contents.
    pub src: &'a str,
}

/// All rule ids a waiver may name.
pub const RULE_IDS: &[&str] = &[
    "determinism",
    "no-alloc",
    "panic-hygiene",
    "float-totality",
    "header-conformance",
    "determinism-transitive",
    "no-alloc-transitive",
    "layering",
    "state-needs",
    "divide-budget",
    "loop-alloc",
    "grow-once",
    "demand-monomorphism",
    "mirror-divergence",
    "mirror-mixed-precision",
    "mirror-orphan",
    "mirror-stale-hoist",
];

/// Rules enforced by the semantic (workspace-wide) tier. Their waivers
/// are resolved in [`crate::semantic`], so the per-file engine must not
/// warn when it cannot see a use for them.
pub const SEMANTIC_RULES: &[&str] = &[
    "determinism-transitive",
    "no-alloc-transitive",
    "layering",
    "state-needs",
];

/// Rules enforced by the dataflow (CFG) tier, `--dataflow`. Like the
/// semantic rules, their waivers are resolved workspace-wide, so the
/// per-file engine must not judge them unused.
pub const DATAFLOW_RULES: &[&str] = &[
    "divide-budget",
    "loop-alloc",
    "grow-once",
    "demand-monomorphism",
];

/// Rules enforced by the mirror-equivalence tier, `--mirrors`. Their
/// waivers are resolved workspace-wide, so the per-file engine must not
/// judge them unused.
pub const MIRROR_RULES: &[&str] = &[
    "mirror-divergence",
    "mirror-mixed-precision",
    "mirror-orphan",
    "mirror-stale-hoist",
];

/// Which tier enforces `rule` — provenance for `--json` output and the
/// cross-tier unused-waiver accounting.
#[must_use]
pub fn tier_of(rule: &str) -> &'static str {
    if SEMANTIC_RULES.contains(&rule) {
        "semantic"
    } else if DATAFLOW_RULES.contains(&rule) {
        "dataflow"
    } else if MIRROR_RULES.contains(&rule) {
        "mirrors"
    } else {
        "file"
    }
}

/// Check one file against every applicable rule, resolving waivers.
/// Returned findings include waived ones (marked) and waiver-hygiene
/// diagnostics.
#[must_use]
pub fn check_file(input: &FileInput<'_>, cfg: &Config) -> Vec<Finding> {
    let code = Code::new(input.src);
    Engine {
        input,
        cfg,
        code: &code,
        findings: Vec::new(),
    }
    .run()
}

struct Engine<'a> {
    input: &'a FileInput<'a>,
    cfg: &'a Config,
    code: &'a Code<'a>,
    findings: Vec<Finding>,
}

impl Engine<'_> {
    fn run(mut self) -> Vec<Finding> {
        let (directives, issues) = scan_directives(self.code);
        for issue in issues {
            self.emit("waiver-syntax", issue.line, issue.message, Severity::Deny);
        }
        let test_spans = self.code.test_spans();
        let deny_spans = self.deny_alloc_spans(&directives);

        let in_test = |p: usize| in_spans(&test_spans, p);

        // --- code rules, raw findings first ---
        let mut raw: Vec<Finding> = Vec::new();
        let checked_kind = self.input.kind;
        if checked_kind == FileKind::Lib {
            if self.rule_on("determinism") {
                self.determinism(&mut raw, &in_test);
            }
            if self.rule_on("panic-hygiene") {
                self.panic_hygiene(&mut raw, &in_test);
            }
            if self.rule_on("float-totality")
                && !self.cfg.is_blessed("float-totality", self.input.path)
            {
                self.float_totality(&mut raw, &in_test);
            }
        }
        if checked_kind != FileKind::Test && self.rule_on("no-alloc") {
            self.no_alloc(&mut raw, &deny_spans);
        }
        if self.input.root.is_some() && self.rule_on("header-conformance") {
            self.header_conformance(&mut raw);
        }

        // --- resolve waivers ---
        for f in &mut raw {
            if let Some(d) = directives.iter().find(|d| d.waives(f.rule, f.line)) {
                d.mark_used();
                f.waived = true;
            }
        }
        self.findings.append(&mut raw);

        // --- waiver hygiene ---
        for d in &directives {
            if let DirectiveKind::Allow { rules, .. } = &d.kind {
                for r in rules {
                    if !RULE_IDS.contains(&r.as_str()) {
                        self.emit(
                            "waiver-syntax",
                            d.line,
                            format!("waiver names unknown rule `{r}`"),
                            Severity::Deny,
                        );
                    }
                }
                // Waivers naming a semantic, dataflow, or mirror rule
                // are consumed by the workspace passes; this engine
                // cannot judge them unused (the driver's cross-tier
                // accounting does, once the owning tier has run).
                let workspace_tier = rules.iter().any(|r| tier_of(r) != "file");
                if !d.is_used() && !workspace_tier {
                    self.emit(
                        "unused-waiver",
                        d.line,
                        "waiver suppresses nothing on the line it covers".to_string(),
                        Severity::Warn,
                    );
                }
            }
        }

        self.findings
    }

    fn rule_on(&self, rule: &str) -> bool {
        self.cfg.rule_applies(rule, self.input.crate_id)
    }

    fn emit(&mut self, rule: &'static str, line: u32, message: String, severity: Severity) {
        self.findings.push(Finding {
            file: self.input.path.to_string(),
            line,
            rule,
            message,
            waived: false,
            severity,
        });
    }

    /// Code-position spans (exclusive of the braces) of functions
    /// annotated `// dses-lint: deny(alloc)`, with the function name.
    fn deny_alloc_spans(&mut self, directives: &[Directive]) -> Vec<(usize, usize, String)> {
        let mut spans = Vec::new();
        for d in directives {
            if !matches!(d.kind, DirectiveKind::DenyAlloc) {
                continue;
            }
            // first `fn` at or after the covered line
            let Some(fn_pos) = (0..self.code.len())
                .find(|&p| self.code.line(p) >= d.covers && self.code.text(p) == "fn")
            else {
                self.emit(
                    "waiver-syntax",
                    d.line,
                    "deny(alloc) is not followed by a function".to_string(),
                    Severity::Deny,
                );
                continue;
            };
            let name = if fn_pos + 1 < self.code.len() {
                self.code.text(fn_pos + 1).to_string()
            } else {
                String::from("?")
            };
            let Some(open) = (fn_pos..self.code.len()).find(|&p| self.code.text(p) == "{") else {
                continue;
            };
            let Some(close) = self.code.match_bracket(open, "{", "}") else {
                continue;
            };
            spans.push((open, close, name));
        }
        spans
    }

    // ----- rules -----

    fn determinism<F: Fn(usize) -> bool>(&self, out: &mut Vec<Finding>, in_test: &F) {
        for p in 0..self.code.len() {
            if self.code.kind(p) != TokenKind::Ident || in_test(p) {
                continue;
            }
            let t = self.code.text(p);
            let message = match t {
                "HashMap" | "HashSet" => Some(format!(
                    "`{t}` has nondeterministic iteration order in general; use `BTreeMap`/`BTreeSet`, \
                     or waive with the invariant that it is never iterated"
                )),
                "Instant" | "SystemTime" => Some(format!(
                    "`{t}` reads the wall clock — results must not depend on time"
                )),
                "env" if p >= 2
                    && self.code.text(p - 1) == "::"
                    && self.code.text(p - 2) == "std" =>
                {
                    Some("`std::env` makes results depend on the environment".to_string())
                }
                _ => None,
            };
            if let Some(message) = message {
                out.push(self.finding("determinism", self.code.line(p), message));
            }
        }
    }

    fn panic_hygiene<F: Fn(usize) -> bool>(&self, out: &mut Vec<Finding>, in_test: &F) {
        for p in 0..self.code.len() {
            if self.code.kind(p) != TokenKind::Ident || in_test(p) {
                continue;
            }
            let t = self.code.text(p);
            let flagged = match t {
                "unwrap" | "expect" => {
                    p >= 1 && self.code.text(p - 1) == "." && self.code.get(p + 1) == Some("(")
                }
                "panic" | "todo" | "unimplemented" => self.code.get(p + 1) == Some("!"),
                _ => false,
            };
            if flagged {
                out.push(self.finding(
                    "panic-hygiene",
                    self.code.line(p),
                    format!(
                        "`{t}` in library code — return a `Result`, use `debug_assert!`, or \
                         waive with the invariant that makes it unreachable"
                    ),
                ));
            }
        }
    }

    fn float_totality<F: Fn(usize) -> bool>(&self, out: &mut Vec<Finding>, in_test: &F) {
        for p in 0..self.code.len() {
            if in_test(p) {
                continue;
            }
            let t = self.code.text(p);
            // `partial_cmp(…).unwrap()` / `.expect(…)`
            if t == "partial_cmp"
                && self.code.kind(p) == TokenKind::Ident
                && self.code.get(p + 1) == Some("(")
            {
                if let Some(close) = self.code.match_bracket(p + 1, "(", ")") {
                    if self.code.get(close + 1) == Some(".")
                        && matches!(self.code.get(close + 2), Some("unwrap" | "expect"))
                    {
                        out.push(self.finding(
                            "float-totality",
                            self.code.line(p),
                            "`partial_cmp(…).unwrap()` panics on NaN; use `f64::total_cmp` \
                             (or the OrdF64 wrapper)"
                                .to_string(),
                        ));
                    }
                }
                continue;
            }
            // `x == 1.0`, `0.0 != y` — equality against a float literal
            if matches!(t, "==" | "!=") && self.code.kind(p) == TokenKind::Punct {
                let prev_float = p >= 1 && self.code.kind(p - 1) == TokenKind::Float;
                let next_float = match self.code.get(p + 1) {
                    Some("-") => {
                        p + 2 < self.code.len() && self.code.kind(p + 2) == TokenKind::Float
                    }
                    Some(_) => self.code.kind(p + 1) == TokenKind::Float,
                    None => false,
                };
                if prev_float || next_float {
                    out.push(self.finding(
                        "float-totality",
                        self.code.line(p),
                        format!(
                            "bare `{t}` against a float literal; compare via `to_bits()` or a \
                             tolerance, or waive if the exact-value comparison is intended"
                        ),
                    ));
                }
            }
        }
    }

    fn no_alloc(&self, out: &mut Vec<Finding>, spans: &[(usize, usize, String)]) {
        for &(start, end, ref name) in spans {
            for p in start + 1..end {
                let t = self.code.text(p);
                let flagged = match t {
                    "new" | "from" | "with_capacity" => {
                        p >= 2
                            && self.code.text(p - 1) == "::"
                            && matches!(
                                self.code.text(p - 2),
                                "Vec" | "Box" | "String" | "VecDeque" | "BinaryHeap"
                            )
                    }
                    "to_vec" | "collect" | "to_string" | "to_owned" => {
                        p >= 1 && self.code.text(p - 1) == "."
                    }
                    "vec" | "format" => self.code.get(p + 1) == Some("!"),
                    _ => false,
                };
                // method-call `with_capacity` (not behind `::`)
                let flagged =
                    flagged || (t == "with_capacity" && p >= 1 && self.code.text(p - 1) == ".");
                if flagged {
                    out.push(self.finding(
                        "no-alloc",
                        self.code.line(p),
                        format!(
                            "`{t}` allocates inside `deny(alloc)` fn `{name}` — reuse workspace \
                             buffers instead"
                        ),
                    ));
                }
            }
        }
    }

    fn header_conformance(&self, out: &mut Vec<Finding>) {
        // collect inner attributes `#![…]`
        let mut attrs = String::new();
        let mut p = 0usize;
        while p + 2 < self.code.len() {
            if self.code.text(p) == "#"
                && self.code.text(p + 1) == "!"
                && self.code.text(p + 2) == "["
            {
                if let Some(end) = self.code.match_bracket(p + 2, "[", "]") {
                    for q in p + 3..end {
                        attrs.push_str(self.code.text(q));
                    }
                    attrs.push(' ');
                    p = end + 1;
                    continue;
                }
            }
            p += 1;
        }
        let missing_forbid = !attrs.contains("forbid(unsafe_code)");
        let missing_docs = self.input.root == Some(RootKind::LibRoot)
            && !(attrs.contains("warn(missing_docs)") || attrs.contains("deny(missing_docs)"));
        if missing_forbid {
            out.push(self.finding(
                "header-conformance",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
        if missing_docs {
            out.push(self.finding(
                "header-conformance",
                1,
                "library crate root is missing `#![warn(missing_docs)]`".to_string(),
            ));
        }
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            file: self.input.path.to_string(),
            line,
            rule,
            message,
            waived: false,
            severity: Severity::Deny,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let input = FileInput {
            path: "crates/sim/src/x.rs",
            crate_id: "sim",
            kind: FileKind::Lib,
            root: None,
            src,
        };
        check_file(&input, &Config::default())
    }

    fn errors(src: &str) -> Vec<Finding> {
        check(src)
            .into_iter()
            .filter(|f| !f.waived && f.severity == Severity::Deny)
            .collect()
    }

    #[test]
    fn hashmap_flagged_and_waivable() {
        let bad = "use std::collections::HashMap;\n";
        assert_eq!(errors(bad).len(), 1);
        let waived =
            "// dses-lint: allow(determinism) -- keyed lookups only, never iterated\nuse std::collections::HashMap;\n";
        assert!(errors(waived).is_empty());
        let trailing =
            "use std::collections::HashMap; // dses-lint: allow(determinism) -- never iterated\n";
        assert!(errors(trailing).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n";
        let errs = errors(src);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].line, 5);
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let src = "// dses-lint: allow(determinism)\nuse std::collections::HashMap;\n";
        let errs = errors(src);
        assert!(errs.iter().any(|f| f.rule == "waiver-syntax"));
        assert!(errs.iter().any(|f| f.rule == "determinism"));
    }

    #[test]
    fn deny_alloc_flags_allocation() {
        let src = "// dses-lint: deny(alloc)\nfn hot() { let v = Vec::new(); }\nfn cold() { let v = Vec::new(); }\n";
        let errs = errors(src);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, "no-alloc");
        assert_eq!(errs[0].line, 2);
    }

    #[test]
    fn float_eq_and_partial_cmp() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n";
        let errs = errors(src);
        assert_eq!(errs.iter().filter(|f| f.rule == "float-totality").count(), 2);
        // but to_bits comparison is fine
        assert!(errors("fn f(x: f64, y: f64) -> bool { x.to_bits() == y.to_bits() }").is_empty());
    }

    #[test]
    fn panics_in_strings_and_docs_are_ignored() {
        let src = "/// call `x.unwrap()` to crash\nfn f() { let s = \"panic!\"; }\n";
        assert!(errors(src).is_empty());
    }

    #[test]
    fn unused_waiver_warns_but_passes() {
        let src = "// dses-lint: allow(determinism) -- stale\nfn f() {}\n";
        let all = check(src);
        assert!(all
            .iter()
            .any(|f| f.rule == "unused-waiver" && f.severity == Severity::Warn));
        assert!(all.iter().all(|f| f.waived || f.severity == Severity::Warn));
    }

    #[test]
    fn semantic_rule_waivers_are_not_flagged_unused() {
        // the per-file engine cannot see semantic-tier usage; it must
        // neither warn `unused-waiver` nor reject the rule id
        let src = "// dses-lint: allow(no-alloc-transitive) -- grow-once buffer\nfn f() {}\n";
        let all = check(src);
        assert!(all.is_empty(), "{all:?}");
    }

    #[test]
    fn header_rule_checks_roots_only() {
        let input = FileInput {
            path: "crates/sim/src/lib.rs",
            crate_id: "sim",
            kind: FileKind::Lib,
            root: Some(RootKind::LibRoot),
            src: "//! docs\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n",
        };
        assert!(check_file(&input, &Config::default()).is_empty());
        let bad = FileInput {
            src: "//! docs\n",
            ..input
        };
        assert_eq!(check_file(&bad, &Config::default()).len(), 2);
    }

    #[test]
    fn bin_kind_skips_panic_and_determinism() {
        let input = FileInput {
            path: "crates/cli/src/main.rs",
            crate_id: "cli",
            kind: FileKind::Bin,
            root: None,
            src: "fn main() { std::env::args(); x.unwrap(); }\n",
        };
        assert!(check_file(&input, &Config::default()).is_empty());
    }

    #[test]
    fn allow_file_covers_whole_file() {
        let src = "// dses-lint: allow-file(float-totality) -- exact-zero guards throughout\nfn f(x: f64) -> bool { x == 0.0 }\nfn g(x: f64) -> bool { x == 1.0 }\n";
        assert!(errors(src).is_empty());
    }
}
