//! `dses-lint` — the workspace linter binary.
//!
//! ```text
//! dses-lint --workspace            # lint every crate, exit 1 on findings
//! dses-lint --workspace --json     # machine-readable output
//! dses-lint crates/sim/src/fast.rs # lint specific files
//! dses-lint --list-rules           # print the rule catalogue
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    verbose: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        verbose: false,
        list_rules: false,
        root: None,
        files: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--verbose" | "-v" => args.verbose = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let v = iter.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    if !args.workspace && args.files.is_empty() && !args.list_rules {
        return Err("nothing to lint: pass --workspace or file paths (see --help)".into());
    }
    Ok(args)
}

const HELP: &str = "\
dses-lint — enforce determinism, no-alloc, and panic-hygiene invariants

USAGE:
    dses-lint --workspace [--json] [--verbose] [--root <dir>]
    dses-lint [--json] <file>...
    dses-lint --list-rules

FLAGS:
    --workspace    lint every crate in the workspace
    --json         machine-readable report on stdout
    --verbose      also print honoured waivers
    --root <dir>   workspace root (default: walk up from the cwd)
    --list-rules   print the rule catalogue and exit

EXIT STATUS:
    0  no unwaived findings
    1  at least one unwaived finding
    2  usage or I/O error";

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        println!("rules enforced by dses-lint (waive inline with `// dses-lint: allow(<rule>) -- <reason>`):");
        for r in dses_lint::rules::RULE_IDS {
            println!("  {r}");
        }
        println!("  unused-waiver (warning only)");
        println!("opt functions into allocation checking with `// dses-lint: deny(alloc)`");
        return Ok(true);
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match args.root {
        Some(r) => r,
        None => dses_lint::driver::find_workspace_root(&cwd)
            .ok_or("cannot find the workspace root (Cargo.toml + crates/); pass --root")?,
    };
    let cfg = dses_lint::driver::load_config(&root)?;
    let report = if args.workspace {
        dses_lint::driver::lint_workspace(&root, &cfg)?
    } else {
        let files: Vec<PathBuf> = args
            .files
            .iter()
            .map(|f| if f.is_absolute() { f.clone() } else { cwd.join(f) })
            .collect();
        dses_lint::driver::lint_files(&root, &files, &cfg)?
    };
    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text(args.verbose));
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("dses-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
