//! `dses-lint` — the workspace linter binary.
//!
//! ```text
//! dses-lint --workspace            # lint every crate, exit 1 on findings
//! dses-lint --workspace --semantic # also run the workspace-wide analyses
//! dses-lint --workspace --semantic --dataflow --mirrors # full four-tier run
//! dses-lint --workspace --json     # machine-readable output
//! dses-lint crates/sim/src/fast.rs # lint specific files
//! dses-lint --list-rules           # print the rule catalogue
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

struct Args {
    workspace: bool,
    semantic: bool,
    dataflow: bool,
    mirrors: bool,
    format: Format,
    verbose: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        semantic: false,
        dataflow: false,
        mirrors: false,
        format: Format::Text,
        verbose: false,
        list_rules: false,
        root: None,
        files: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--semantic" => args.semantic = true,
            "--dataflow" => args.dataflow = true,
            "--mirrors" => args.mirrors = true,
            "--json" => args.format = Format::Json,
            "--format" => {
                let v = iter.next().ok_or("--format needs a value (text|json|github)")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}` (text|json|github)")),
                };
            }
            "--verbose" | "-v" => args.verbose = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let v = iter.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    if !args.workspace && args.files.is_empty() && !args.list_rules {
        return Err("nothing to lint: pass --workspace or file paths (see --help)".into());
    }
    if args.semantic && !args.workspace {
        return Err("--semantic needs --workspace (the analyses span the whole tree)".into());
    }
    if args.dataflow && !args.workspace {
        return Err("--dataflow needs --workspace (budgets compose across the call graph)".into());
    }
    if args.mirrors && !args.workspace {
        return Err("--mirrors needs --workspace (mirror groups span crates)".into());
    }
    Ok(args)
}

const HELP: &str = "\
dses-lint — enforce determinism, no-alloc, and panic-hygiene invariants

USAGE:
    dses-lint --workspace [--semantic] [--dataflow] [--mirrors] [--format text|json|github] [--verbose] [--root <dir>]
    dses-lint [--json] <file>...
    dses-lint --list-rules

FLAGS:
    --workspace    lint every crate in the workspace
    --semantic     also build the item graph and run the workspace-wide
                   analyses (no-alloc-transitive, determinism-transitive,
                   layering, state-needs, waiver reachability)
    --dataflow     also recover per-function CFGs and run the hot-loop
                   dataflow analyses (divide-budget, loop-alloc,
                   grow-once, demand-monomorphism)
    --mirrors      also prove the declared mirror groups: paired kernels
                   annotated `mirrors(group)` must share a normalized
                   float-op skeleton (mirror-divergence,
                   mirror-mixed-precision, mirror-orphan,
                   mirror-stale-hoist)
    --format <f>   output format: text (default), json, or github
                   (::error/::warning workflow annotations)
    --json         shorthand for --format json
    --verbose      also print honoured waivers
    --root <dir>   workspace root (default: walk up from the cwd)
    --list-rules   print the rule catalogue and exit

EXIT STATUS:
    0  no unwaived findings
    1  at least one unwaived finding
    2  usage or I/O error";

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        println!("rules enforced by dses-lint (waive inline with `// dses-lint: allow(<rule>) -- <reason>`):");
        for r in dses_lint::rules::RULE_IDS {
            let tier = if dses_lint::rules::SEMANTIC_RULES.contains(r) {
                " (semantic tier: --workspace --semantic)"
            } else if dses_lint::rules::DATAFLOW_RULES.contains(r) {
                " (dataflow tier: --workspace --dataflow)"
            } else if dses_lint::rules::MIRROR_RULES.contains(r) {
                " (mirror tier: --workspace --mirrors)"
            } else {
                ""
            };
            println!("  {r}{tier}");
        }
        println!("  unused-waiver (warning only)");
        println!("opt functions into allocation checking with `// dses-lint: deny(alloc)`");
        println!("declare a kernel's divide budget with `// dses-lint: divides(N)`");
        println!("enrol a kernel in a mirror group with `// dses-lint: mirrors(<group>[, ulp])`");
        println!("  (plus `hoist(…)`, `inline(…)`, `untraced(…)` to normalize its skeleton)");
        return Ok(true);
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match args.root {
        Some(r) => r,
        None => dses_lint::driver::find_workspace_root(&cwd)
            .ok_or("cannot find the workspace root (Cargo.toml + crates/); pass --root")?,
    };
    let cfg = dses_lint::driver::load_config(&root)?;
    let report = if args.workspace {
        dses_lint::driver::lint_workspace(&root, &cfg, args.semantic, args.dataflow, args.mirrors)?
    } else {
        let files: Vec<PathBuf> = args
            .files
            .iter()
            .map(|f| if f.is_absolute() { f.clone() } else { cwd.join(f) })
            .collect();
        dses_lint::driver::lint_files(&root, &files, &cfg)?
    };
    match args.format {
        Format::Json => print!("{}", report.render_json()),
        Format::Github => print!("{}", report.render_github()),
        Format::Text => print!("{}", report.render_text(args.verbose)),
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("dses-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
