//! The workspace-wide item graph: symbol tables, name resolution, and
//! a conservative call graph.
//!
//! Resolution is deliberately modest — good enough for workspace-local
//! paths, silent about everything else:
//!
//! * `name(…)` resolves to a free fn in the same file, then the same
//!   crate, then through the file's `use` aliases;
//! * `a::b::name(…)` resolves through `crate`/`self` prefixes, `dses_x`
//!   crate paths, workspace type names (`Type::method`), `Self`, and
//!   `use` aliases; `std::…` and other external paths resolve to
//!   nothing;
//! * `.name(…)` narrows through whatever receiver type the syntax
//!   reveals: `self.…` through the caller's impl type, `param.…`
//!   through the parameter's declared type (generic bounds
//!   substituted: `policy: &mut P` with `P: Dispatcher` dispatches to
//!   `Dispatcher` impls only), and one field hop through struct
//!   definitions (`ws.collector.reset()`). A receiver of known std
//!   type (`Vec`, `Option`, …) resolves to nothing; an unknown
//!   receiver falls back to **every** workspace method of that name —
//!   over-approximation, not silence, is the failure mode.
//!
//! Over-approximation is the right failure mode for the analyses built
//! on top: a spurious edge can at worst produce a finding a human
//! reviews; a missing edge would silently hide one. Test-only items are
//! excluded as call *targets* for non-test callers so `#[cfg(test)]`
//! helpers never taint library paths.

use crate::driver::SourceFile;
use crate::items::{parse_file, CallTarget, FileItems, FnItem, Recv};
use crate::rules::FileKind;
use std::collections::{BTreeMap, BTreeSet};

/// A parsed file paired with its driver classification.
pub struct ParsedFile<'a> {
    /// The classified source file.
    pub file: &'a SourceFile,
    /// Its parsed items.
    pub items: FileItems,
}

/// Identifier of a function node: index into [`Graph::fns`].
pub type FnId = usize;

/// Location of a function item: (file index, index into that file's
/// `items.fns`).
#[derive(Debug, Clone, Copy)]
pub struct FnKey {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
}

/// The workspace item graph.
pub struct Graph<'a> {
    /// All parsed files, in driver order.
    pub files: Vec<ParsedFile<'a>>,
    /// All function nodes.
    pub fns: Vec<FnKey>,
    /// Resolved call edges per function: `(callee, call line)`.
    pub edges: Vec<Vec<(FnId, u32)>>,
    /// Workspace-defined struct/enum names.
    pub types: BTreeSet<String>,
    /// Workspace-defined trait names.
    pub traits: BTreeSet<String>,
    // --- symbol tables (library, non-test items only) ---
    free_by_crate: BTreeMap<(String, String), Vec<FnId>>,
    methods_by_type: BTreeMap<(String, String), Vec<FnId>>,
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    by_file_name: BTreeMap<(usize, String), Vec<FnId>>,
    /// `(owner type, field name) → field type`, from struct definitions.
    field_types: BTreeMap<(String, String), String>,
    /// Type → traits it implements (library impls), for resolving
    /// trait-default methods called on a concrete receiver.
    traits_of_type: BTreeMap<String, BTreeSet<String>>,
    /// Per-crate reflexive-transitive dependency closure (from the
    /// declared layering DAG). Empty → no scoping of method resolution.
    dep_closure: BTreeMap<String, BTreeSet<String>>,
    /// Trait name → crate that defines it, for trait-object dispatch.
    trait_crate: BTreeMap<String, String>,
}

/// Path roots that are definitely not workspace modules — the free-fn
/// fallback must not fire for them.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc"];

/// Receiver types whose methods are never workspace items: a call on
/// one is a std call and resolves to nothing. Checked only after the
/// workspace symbol tables, so a workspace type of the same name wins.
const STD_TYPES: &[&str] = &[
    "Vec", "VecDeque", "BinaryHeap", "String", "str", "HashMap", "HashSet", "BTreeMap",
    "BTreeSet", "Option", "Result", "Cell", "RefCell", "PathBuf", "Path", "Duration",
    "Ordering", "Range", "f32", "f64", "bool", "char", "u8", "u16", "u32", "u64", "u128",
    "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

impl<'a> Graph<'a> {
    /// Parse every file and build symbol tables and call edges, with
    /// receiver-unknown method calls resolving to every same-named
    /// workspace method.
    #[must_use]
    pub fn build(sources: &'a [SourceFile]) -> Self {
        Self::build_scoped(sources, BTreeMap::new())
    }

    /// Like [`Graph::build`], but receiver-unknown method calls from
    /// non-test code only resolve into the caller's dependency closure
    /// (`closure[crate]` = the crates it may link against, itself
    /// included) — plus impls of any trait *defined* inside the closure,
    /// which trait objects can carry in from anywhere (`dyn Dispatcher`
    /// hands `core` impls to `sim` kernels). A method named `run` in an
    /// unlinkable crate is not a plausible callee; dropping it keeps
    /// name collisions from fabricating cross-stack chains.
    #[must_use]
    pub fn build_scoped(
        sources: &'a [SourceFile],
        dep_closure: BTreeMap<String, BTreeSet<String>>,
    ) -> Self {
        let files: Vec<ParsedFile<'a>> = sources
            .iter()
            .map(|file| ParsedFile {
                file,
                items: parse_file(&file.src),
            })
            .collect();

        let mut fns = Vec::new();
        let mut types = BTreeSet::new();
        let mut traits = BTreeSet::new();
        let mut free_by_crate: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut methods_by_type: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_file_name: BTreeMap<(usize, String), Vec<FnId>> = BTreeMap::new();
        let mut field_types: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut traits_of_type: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

        let mut trait_crate: BTreeMap<String, String> = BTreeMap::new();

        for (fi, pf) in files.iter().enumerate() {
            types.extend(pf.items.types.iter().cloned());
            traits.extend(pf.items.traits.iter().cloned());
            for t in &pf.items.traits {
                trait_crate
                    .entry(t.clone())
                    .or_insert_with(|| pf.file.crate_id.clone());
            }
            for fd in &pf.items.fields {
                field_types.insert((fd.ty.clone(), fd.field.clone()), fd.fty.clone());
            }
            for (ii, f) in pf.items.fns.iter().enumerate() {
                let id: FnId = fns.len();
                fns.push(FnKey { file: fi, item: ii });
                by_file_name
                    .entry((fi, f.name.clone()))
                    .or_default()
                    .push(id);
                // library symbol tables: cross-file resolution never
                // lands on test-only or bin items, nor on bodiless
                // trait-method declarations (nothing to traverse into)
                if pf.file.kind != FileKind::Lib || f.in_test || !f.has_body {
                    continue;
                }
                if let Some(ty) = &f.impl_ty {
                    methods_by_type
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    if let Some(tr) = &f.impl_trait {
                        traits_of_type.entry(ty.clone()).or_default().insert(tr.clone());
                    }
                }
                if f.impl_ty.is_some() || f.impl_trait.is_some() {
                    methods_by_name.entry(f.name.clone()).or_default().push(id);
                } else {
                    free_by_crate
                        .entry((pf.file.crate_id.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }

        let mut graph = Graph {
            files,
            fns,
            edges: Vec::new(),
            types,
            traits,
            free_by_crate,
            methods_by_type,
            methods_by_name,
            by_file_name,
            field_types,
            traits_of_type,
            dep_closure,
            trait_crate,
        };

        // resolve call edges
        let mut edges = Vec::with_capacity(graph.fns.len());
        for id in 0..graph.fns.len() {
            let caller = graph.item(id);
            let caller_test = caller.in_test || graph.file_of(id).file.kind == FileKind::Test;
            let mut out: Vec<(FnId, u32)> = Vec::new();
            for call in &caller.calls {
                for target in graph.resolve(id, &call.target) {
                    if target == id {
                        continue; // self-recursion adds nothing
                    }
                    // test-only items never serve non-test callers
                    if !caller_test && graph.item(target).in_test {
                        continue;
                    }
                    if !out.iter().any(|&(t, _)| t == target) {
                        out.push((target, call.line));
                    }
                }
            }
            edges.push(out);
        }
        graph.edges = edges;
        graph
    }

    /// The function item behind an id.
    #[must_use]
    pub fn item(&self, id: FnId) -> &FnItem {
        let key = self.fns[id];
        &self.files[key.file].items.fns[key.item]
    }

    /// The parsed file a function lives in.
    #[must_use]
    pub fn file_of(&self, id: FnId) -> &ParsedFile<'a> {
        &self.files[self.fns[id].file]
    }

    /// Index into [`Graph::files`] of the file a function lives in.
    #[must_use]
    pub fn fns_file(&self, id: FnId) -> usize {
        self.fns[id].file
    }

    /// Human label: `Type::name` for methods, plain `name` otherwise.
    #[must_use]
    pub fn label(&self, id: FnId) -> String {
        let f = self.item(id);
        match &f.impl_ty {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Resolve one syntactic call from `caller` to candidate targets.
    #[must_use]
    pub fn resolve(&self, caller: FnId, target: &CallTarget) -> Vec<FnId> {
        match target {
            CallTarget::Method { name, recv } => {
                if let Some(ids) = self
                    .recv_type(caller, recv)
                    .and_then(|ty| self.by_recv_type(&ty, name))
                {
                    return self.scope_methods(caller, ids);
                }
                let ids = self.methods_by_name.get(name).cloned().unwrap_or_default();
                self.scope_methods(caller, ids)
            }
            CallTarget::Plain(name) => self.resolve_plain(caller, name),
            CallTarget::Path(segs) => self.resolve_path(caller, segs, 0),
        }
    }

    /// Best-effort receiver type of a method call: the caller's impl
    /// type (or trait, for default methods) for `self.…`, declared
    /// parameter types for `param.…` (disabled when the body re-binds
    /// the name), and one field hop through struct definitions.
    fn recv_type(&self, caller: FnId, recv: &Recv) -> Option<String> {
        let item = self.item(caller);
        let param_ty = |n: &String| {
            if item.shadowed.contains(n) {
                return None;
            }
            item.params.iter().find(|(p, _)| p == n).map(|(_, t)| t.clone())
        };
        match recv {
            Recv::Unknown => None,
            Recv::SelfType => item.impl_ty.clone().or_else(|| item.impl_trait.clone()),
            Recv::SelfField(f) => item
                .impl_ty
                .as_ref()
                .and_then(|ty| self.field_types.get(&(ty.clone(), f.clone())))
                .cloned(),
            Recv::Ident(n) => param_ty(n),
            Recv::IdentField(n, f) => param_ty(n)
                .and_then(|ty| self.field_types.get(&(ty, f.clone())))
                .cloned(),
        }
    }

    /// Candidate methods for a receiver of known type `ty`. `Some(ids)`
    /// is authoritative (possibly empty — a std receiver is an external
    /// call); `None` means "no information", and the caller falls back
    /// to the broad method-name index.
    fn by_recv_type(&self, ty: &str, name: &str) -> Option<Vec<FnId>> {
        if self.types.contains(ty) {
            if let Some(ids) = self.methods_by_type.get(&(ty.to_string(), name.to_string())) {
                return Some(ids.clone());
            }
            // trait-default methods of traits this type implements
            if let Some(trs) = self.traits_of_type.get(ty) {
                let defaults: Vec<FnId> = self
                    .methods_by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| {
                                let f = self.item(id);
                                f.impl_ty.is_none()
                                    && f.impl_trait.as_deref().is_some_and(|t| trs.contains(t))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if !defaults.is_empty() {
                    return Some(defaults);
                }
            }
            // workspace type without such a method: blanket/extension
            // trait impls could still supply one — stay broad
            return None;
        }
        // trait receiver (generic bound, `dyn Trait` field): every impl
        // of that trait, trait defaults included
        let trait_methods: Vec<FnId> = self
            .methods_by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.item(id).impl_trait.as_deref() == Some(ty))
                    .collect()
            })
            .unwrap_or_default();
        if !trait_methods.is_empty() {
            return Some(trait_methods);
        }
        if self.traits.contains(ty) {
            return None; // known trait, method from another bound — broad
        }
        if STD_TYPES.contains(&ty) {
            return Some(Vec::new());
        }
        None
    }

    /// Drop method candidates a non-test caller could never link
    /// against: the target's crate must be in the caller's dependency
    /// closure, unless the target implements a trait defined there
    /// (trait objects cross crate boundaries downward).
    fn scope_methods(&self, caller: FnId, ids: Vec<FnId>) -> Vec<FnId> {
        if self.dep_closure.is_empty() {
            return ids;
        }
        let pf = &self.files[self.fns[caller].file];
        if pf.file.kind == FileKind::Test || self.item(caller).in_test {
            return ids; // tests may reach anywhere (dev-dependencies)
        }
        let Some(closure) = self.dep_closure.get(&pf.file.crate_id) else {
            return ids; // undeclared crate: stay fully conservative
        };
        ids.into_iter()
            .filter(|&id| {
                let target_crate = &self.files[self.fns[id].file].file.crate_id;
                closure.contains(target_crate)
                    || self.item(id).impl_trait.as_deref().is_some_and(|t| {
                        self.trait_crate.get(t).is_some_and(|c| closure.contains(c))
                    })
            })
            .collect()
    }

    fn resolve_plain(&self, caller: FnId, name: &str) -> Vec<FnId> {
        let file_idx = self.fns[caller].file;
        // same file (free fns only — `Some(x)` style constructors and
        // methods never resolve here)
        if let Some(ids) = self.by_file_name.get(&(file_idx, name.to_string())) {
            let free: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|&id| self.item(id).impl_ty.is_none() && self.item(id).impl_trait.is_none())
                .collect();
            if !free.is_empty() {
                return free;
            }
        }
        // same crate
        let crate_id = self.file_of(caller).file.crate_id.clone();
        if let Some(ids) = self.free_by_crate.get(&(crate_id, name.to_string())) {
            if !ids.is_empty() {
                return ids.clone();
            }
        }
        // use alias
        if let Some(path) = self.use_target(file_idx, name) {
            return self.resolve_path(caller, &path, 1);
        }
        Vec::new()
    }

    /// The full path a `use` in `file_idx` binds to local name `alias`.
    fn use_target(&self, file_idx: usize, alias: &str) -> Option<Vec<String>> {
        self.files[file_idx]
            .items
            .uses
            .iter()
            .find(|u| u.alias == alias)
            .map(|u| u.path.clone())
    }

    fn resolve_path(&self, caller: FnId, segs: &[String], depth: u8) -> Vec<FnId> {
        if depth > 2 || segs.is_empty() {
            return Vec::new();
        }
        // strip module-relative prefixes; `super` degrades to crate scope
        let mut segs: Vec<String> = segs.to_vec();
        while segs
            .first()
            .is_some_and(|s| matches!(s.as_str(), "crate" | "self" | "super"))
        {
            segs.remove(0);
        }
        let Some(name) = segs.last().cloned() else {
            return Vec::new();
        };
        // `Self::method` — the caller's own impl type
        if segs.first().map(String::as_str) == Some("Self") {
            if let Some(ty) = &self.item(caller).impl_ty {
                return self
                    .methods_by_type
                    .get(&(ty.clone(), name))
                    .cloned()
                    .unwrap_or_default();
            }
            return Vec::new();
        }
        // `…::Type::method` for a workspace type
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            if self.types.contains(ty) || self.traits.contains(ty) {
                if let Some(ids) = self.methods_by_type.get(&(ty.clone(), name.clone())) {
                    return ids.clone();
                }
                // `Trait::method` with no inherent impl: all methods of
                // that name on workspace trait impls
                if self.traits.contains(ty) {
                    return self
                        .methods_by_name
                        .get(&name)
                        .map(|ids| {
                            ids.iter()
                                .copied()
                                .filter(|&id| {
                                    self.item(id).impl_trait.as_deref() == Some(ty.as_str())
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                }
                return Vec::new();
            }
        }
        // `dses_x::…` — an explicit workspace crate path
        if let Some(krate) = segs
            .first()
            .and_then(|s| s.strip_prefix("dses_"))
            .filter(|k| !k.is_empty())
        {
            return self
                .free_by_crate
                .get(&(krate.to_string(), name))
                .cloned()
                .unwrap_or_default();
        }
        // `Alias::…` through the file's imports
        if let Some(first) = segs.first() {
            if let Some(mut base) = self.use_target(self.fns[caller].file, first) {
                base.extend(segs[1..].iter().cloned());
                return self.resolve_path(caller, &base, depth + 1);
            }
        }
        // `module::fn` within the caller's crate — unless the root is a
        // known external namespace
        if segs
            .first()
            .is_some_and(|s| EXTERNAL_ROOTS.contains(&s.as_str()))
        {
            return Vec::new();
        }
        let crate_id = self.file_of(caller).file.crate_id.clone();
        self.free_by_crate
            .get(&(crate_id, name))
            .cloned()
            .unwrap_or_default()
    }

    /// Forward BFS over call edges from `roots`. `enter` decides whether
    /// traversal may continue *through* a node (it is still visited).
    /// Returns each visited node with the edge that first reached it:
    /// `(caller, call line)` — `None` for roots.
    #[must_use]
    pub fn bfs<F: Fn(FnId) -> bool>(
        &self,
        roots: &[FnId],
        enter: F,
    ) -> BTreeMap<FnId, Option<(FnId, u32)>> {
        let mut visited: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if visited.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if !enter(id) && !roots.contains(&id) {
                continue;
            }
            for &(callee, line) in &self.edges[id] {
                if let std::collections::btree_map::Entry::Vacant(e) = visited.entry(callee) {
                    e.insert(Some((id, line)));
                    queue.push_back(callee);
                }
            }
        }
        visited
    }

    /// Reconstruct the call path `root → … → id` from a BFS parent map,
    /// as human labels.
    #[must_use]
    pub fn path_to(
        &self,
        parents: &BTreeMap<FnId, Option<(FnId, u32)>>,
        id: FnId,
    ) -> Vec<String> {
        let mut chain = vec![self.label(id)];
        let mut cur = id;
        let mut guard = 0usize;
        while let Some(Some((parent, _))) = parents.get(&cur) {
            chain.push(self.label(*parent));
            cur = *parent;
            guard += 1;
            if guard > self.fns.len() {
                break;
            }
        }
        chain.reverse();
        chain
    }

    /// All function ids.
    pub fn ids(&self) -> impl Iterator<Item = FnId> + '_ {
        0..self.fns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;

    fn sf(rel: &str, crate_id: &str, kind: FileKind, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            crate_id: crate_id.to_string(),
            kind,
            root: None,
            src: src.to_string(),
        }
    }

    fn find(g: &Graph<'_>, name: &str) -> FnId {
        g.ids()
            .find(|&id| g.item(id).name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn cross_crate_path_and_alias_resolution() {
        let files = vec![
            sf(
                "crates/a/src/lib.rs",
                "a",
                FileKind::Lib,
                "pub fn helper() { dses_b::leaf(); }",
            ),
            sf(
                "crates/b/src/lib.rs",
                "b",
                FileKind::Lib,
                "pub fn leaf() {}",
            ),
            sf(
                "crates/c/src/lib.rs",
                "c",
                FileKind::Lib,
                "use dses_a::helper;\npub fn top() { helper(); }",
            ),
        ];
        let g = Graph::build(&files);
        let top = find(&g, "top");
        let helper = find(&g, "helper");
        let leaf = find(&g, "leaf");
        assert_eq!(g.edges[top], vec![(helper, 2)]);
        assert_eq!(g.edges[helper], vec![(leaf, 1)]);
        let reached = g.bfs(&[top], |_| true);
        assert!(reached.contains_key(&leaf));
        assert_eq!(g.path_to(&reached, leaf), ["top", "helper", "leaf"]);
    }

    #[test]
    fn method_calls_over_approximate_but_skip_test_items() {
        let files = vec![
            sf(
                "crates/a/src/lib.rs",
                "a",
                FileKind::Lib,
                "pub struct S;\nimpl S { pub fn go(&self) {} }\nfn drive(s: &S) { s.go(); }",
            ),
            sf(
                "crates/b/src/lib.rs",
                "b",
                FileKind::Lib,
                "#[cfg(test)]\nmod tests {\n  struct T;\n  impl T { fn go(&self) {} }\n}",
            ),
        ];
        let g = Graph::build(&files);
        let drive = find(&g, "drive");
        // resolves to the lib method only; the test-module `go` is not a
        // candidate for a non-test caller
        assert_eq!(g.edges[drive].len(), 1);
        assert_eq!(g.label(g.edges[drive][0].0), "S::go");
    }

    #[test]
    fn self_and_type_paths() {
        let files = vec![sf(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub struct S;\nimpl S {\n  fn a(&self) { Self::b(); }\n  fn b() {}\n}\nfn f() { S::b(); }",
        )];
        let g = Graph::build(&files);
        let a = find(&g, "a");
        let b = find(&g, "b");
        let f = find(&g, "f");
        assert_eq!(g.edges[a], vec![(b, 3)]);
        assert_eq!(g.edges[f], vec![(b, 6)]);
    }

    #[test]
    fn field_typed_receivers_narrow_method_resolution() {
        let files = vec![sf(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub trait D { fn go(&self); }\n\
             pub struct Inner;\n\
             impl D for Inner { fn go(&self) {} }\n\
             pub struct Other;\n\
             impl D for Other { fn go(&self) {} }\n\
             pub struct Wrap { inner: Inner }\n\
             impl D for Wrap { fn go(&self) { self.inner.go(); } }",
        )];
        let g = Graph::build(&files);
        let wrap_go = g
            .ids()
            .find(|&id| g.label(id) == "Wrap::go")
            .expect("Wrap::go");
        // the delegating call resolves through the field's declared type,
        // not to every `go` in the workspace
        assert_eq!(g.edges[wrap_go].len(), 1);
        assert_eq!(g.label(g.edges[wrap_go][0].0), "Inner::go");
    }

    #[test]
    fn generic_bound_receivers_dispatch_to_trait_impls_only() {
        let files = vec![sf(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub trait D { fn reset(&mut self); }\n\
             pub struct P1;\n\
             impl D for P1 { fn reset(&mut self) {} }\n\
             pub struct Gauge;\n\
             impl Gauge { pub fn reset(&mut self) {} }\n\
             pub fn run<P: D + ?Sized>(policy: &mut P) { policy.reset(); }",
        )];
        let g = Graph::build(&files);
        let run = find(&g, "run");
        // dispatches to the `D` impl, not the unrelated inherent `reset`
        assert_eq!(g.edges[run].len(), 1);
        assert_eq!(g.label(g.edges[run][0].0), "P1::reset");
    }

    #[test]
    fn std_typed_receivers_resolve_to_nothing() {
        let files = vec![sf(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub struct T;\n\
             impl T { pub fn truncate(&self) {} }\n\
             pub struct W { hosts: Vec<u32> }\n\
             impl W { pub fn reset(&mut self) { self.hosts.truncate(0); } }",
        )];
        let g = Graph::build(&files);
        let reset = find(&g, "reset");
        assert!(
            g.edges[reset].is_empty(),
            "Vec::truncate must not resolve to the workspace `T::truncate`"
        );
    }

    #[test]
    fn shadowed_params_fall_back_to_broad_resolution() {
        let files = vec![sf(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub struct T;\n\
             impl T { pub fn go(&self) {} }\n\
             pub struct U;\n\
             impl U { pub fn go(&self) {} }\n\
             pub fn f(x: &T) { let x = make(); x.go(); }\n\
             fn make() -> u32 { 0 }",
        )];
        let g = Graph::build(&files);
        let f = find(&g, "f");
        // `x` was re-bound: the param type must not narrow the call
        let labels: Vec<String> = g.edges[f].iter().map(|&(t, _)| g.label(t)).collect();
        assert!(labels.contains(&"T::go".to_string()), "{labels:?}");
        assert!(labels.contains(&"U::go".to_string()), "{labels:?}");
    }

    #[test]
    fn std_paths_resolve_to_nothing() {
        let files = vec![sf(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub fn take() {}\npub fn f(v: &mut Vec<u32>) { std::mem::take(v); }",
        )];
        let g = Graph::build(&files);
        let f = find(&g, "f");
        assert!(g.edges[f].is_empty(), "std::mem::take must not resolve to crate-local take");
    }
}
