//! The semantic tier: workspace-wide analyses over the item graph.
//!
//! Where the per-file engine ([`crate::rules`]) sees one token stream at
//! a time, this pass builds the full [`crate::graph::Graph`] and checks
//! properties no single file can witness:
//!
//! * **`no-alloc-transitive`** — a `deny(alloc)` function must not
//!   *reach* an allocating construct through any chain of workspace
//!   calls. Flagged at the root's outgoing call edge, with the offending
//!   path spelled out (`kernel → helper_a → helper_b: Vec::push`).
//! * **`determinism-transitive`** — code in determinism-scoped crates
//!   must not call into out-of-scope crates whose functions reach a
//!   nondeterminism source. Flagged at the boundary-crossing edge.
//! * **`layering`** — the crate DAG declared in `lint.toml`'s
//!   `[layering]` section is checked against each crate's Cargo
//!   `[dependencies]` *and* against `dses_x::…` path evidence in
//!   non-test code. `[dev-dependencies]` are exempt: tests may reach
//!   upward.
//! * **`state-needs`** — every `impl Dispatcher` must declare in
//!   `state_needs()` exactly the `HostView` accessors its methods (and
//!   their workspace-local callees) actually read. Under-declaration is
//!   an error (the specialized kernels would hand the policy stale
//!   state); over-declaration is a warning (the kernel does bookkeeping
//!   the policy never looks at).
//! * **waiver reachability** — a `panic-hygiene` waiver inside a
//!   function no bin/test root can reach is waiving dead code; demoted
//!   to an `unused-waiver` warning.
//!
//! All analyses inherit the call graph's conservative over-
//! approximation: a spurious finding is reviewable (and waivable with
//! `allow(<rule>)` at the flagged line); a silently missing one is not.

use crate::config::Config;
use crate::driver::SourceFile;
use crate::graph::{FnId, Graph};
use crate::report::{Finding, Severity};
use crate::rules::FileKind;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Reflexive-transitive closure of the declared layering DAG: which
/// crates each crate may link against (itself included). Scopes the
/// graph's receiver-unknown method resolution (shared with the
/// dataflow tier, which builds the same graph).
pub(crate) fn layering_closure(cfg: &Config) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for c in cfg.layering.keys() {
        let mut closure: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![c.clone()];
        while let Some(x) = stack.pop() {
            if closure.insert(x.clone()) {
                if let Some(deps) = cfg.layering.get(&x) {
                    stack.extend(deps.iter().cloned());
                }
            }
        }
        out.insert(c.clone(), closure);
    }
    out
}

/// Run every semantic analysis over the collected workspace.
#[must_use]
pub fn check_workspace(root: &Path, files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let g = Graph::build_scoped(files, layering_closure(cfg));
    check_graph(root, &g, cfg)
}

/// Run every semantic analysis over a prebuilt item graph — the driver
/// builds one graph and shares it across the workspace tiers' threads.
#[must_use]
pub fn check_graph(root: &Path, g: &Graph<'_>, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    no_alloc_transitive(g, &mut out);
    determinism_transitive(g, cfg, &mut out);
    layering(root, g, cfg, &mut out);
    state_needs(g, &mut out);
    waiver_reachability(g, &mut out);
    out
}

/// Is `rule` waived at `line` of file `file_idx`? Marks the directive
/// used so `--verbose` renders honoured waivers.
pub(crate) fn waived(g: &Graph<'_>, file_idx: usize, rule: &str, line: u32) -> bool {
    let mut hit = false;
    for d in &g.files[file_idx].items.directives {
        if d.waives(rule, line) {
            d.mark_used();
            hit = true;
        }
    }
    hit
}

/// The line of the root's own outgoing edge on the BFS path to `n` —
/// the place in the root's file where the offending chain begins.
pub(crate) fn root_edge_line(
    parents: &BTreeMap<FnId, Option<(FnId, u32)>>,
    n: FnId,
    root: FnId,
) -> Option<u32> {
    let mut cur = n;
    let mut guard = 0usize;
    while let Some(Some((p, l))) = parents.get(&cur) {
        if *p == root {
            return Some(*l);
        }
        cur = *p;
        guard += 1;
        if guard > parents.len() {
            break;
        }
    }
    None
}

/// `no-alloc-transitive`: each `deny(alloc)` function is a BFS root;
/// any reachable helper that allocates is reported with the full path.
fn no_alloc_transitive(g: &Graph<'_>, out: &mut Vec<Finding>) {
    let roots: Vec<FnId> = g.ids().filter(|&id| g.item(id).deny_alloc).collect();
    for &root in &roots {
        // other deny(alloc) fns are verified from their own root — do
        // not traverse through them
        let parents = g.bfs(&[root], |id| !g.item(id).deny_alloc);
        let root_file = g.fns_file(root);
        for &n in parents.keys() {
            if n == root || g.item(n).deny_alloc {
                continue;
            }
            let Some(fact) = g.item(n).allocs.iter().find(|f| !f.waived) else {
                continue;
            };
            let Some(edge_line) = root_edge_line(&parents, n, root) else {
                continue;
            };
            let helper_file = g.fns_file(n);
            let path = g.path_to(&parents, n).join(" → ");
            let is_waived = waived(g, root_file, "no-alloc-transitive", edge_line)
                || waived(g, helper_file, "no-alloc-transitive", fact.line);
            out.push(Finding {
                file: g.files[root_file].file.rel.clone(),
                line: edge_line,
                rule: "no-alloc-transitive",
                message: format!(
                    "deny(alloc) fn reaches an allocating helper: {path}: `{}` ({}:{})",
                    fact.what,
                    g.files[helper_file].file.rel,
                    fact.line
                ),
                waived: is_waived,
                severity: Severity::Deny,
            });
        }
    }
}

/// `determinism-transitive`: reverse reachability from nondeterminism
/// sources in out-of-scope crates; flag scoped code at the edge that
/// crosses the scope boundary into the tainted region.
fn determinism_transitive(g: &Graph<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    let scoped = |id: FnId| cfg.rule_applies("determinism", &g.files[g.fns_file(id)].file.crate_id);
    // seeds: library fns in *out-of-scope* crates with an unwaived
    // nondeterminism fact (in-scope facts are already per-file errors)
    let seeds: Vec<FnId> = g
        .ids()
        .filter(|&id| {
            let pf = &g.files[g.fns_file(id)];
            pf.file.kind == FileKind::Lib
                && !g.item(id).in_test
                && !scoped(id)
                && g.item(id).nondet.iter().any(|f| !f.waived)
        })
        .collect();
    if seeds.is_empty() {
        return;
    }
    // reverse adjacency: callee → (caller, call line)
    let mut rev: Vec<Vec<(FnId, u32)>> = vec![Vec::new(); g.fns.len()];
    for caller in g.ids() {
        for &(callee, line) in &g.edges[caller] {
            rev[callee].push((caller, line));
        }
    }
    // reverse BFS: witness[f] = (tainted callee, call line in f)
    let mut witness: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
    for &s in &seeds {
        if witness.insert(s, None).is_none() {
            queue.push_back(s);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &(caller, line) in &rev[id] {
            if let std::collections::btree_map::Entry::Vacant(e) = witness.entry(caller) {
                e.insert(Some((id, line)));
                queue.push_back(caller);
            }
        }
    }
    // findings: scoped library fn whose witness edge lands on an
    // out-of-scope tainted fn — the boundary crossing
    for (&f, w) in &witness {
        let Some((callee, line)) = w else { continue };
        let pf = &g.files[g.fns_file(f)];
        if pf.file.kind != FileKind::Lib || g.item(f).in_test || !scoped(f) || scoped(*callee) {
            continue;
        }
        // spell out the chain from the callee down to a seed
        let mut chain = vec![g.label(f), g.label(*callee)];
        let mut cur = *callee;
        let mut guard = 0usize;
        while let Some(Some((next, _))) = witness.get(&cur) {
            chain.push(g.label(*next));
            cur = *next;
            guard += 1;
            if guard > witness.len() {
                break;
            }
        }
        let seed = cur;
        let Some(fact) = g.item(seed).nondet.iter().find(|x| !x.waived) else {
            continue;
        };
        let seed_file = g.fns_file(seed);
        let is_waived = waived(g, g.fns_file(f), "determinism-transitive", *line)
            || waived(g, seed_file, "determinism-transitive", fact.line);
        out.push(Finding {
            file: pf.file.rel.clone(),
            line: *line,
            rule: "determinism-transitive",
            message: format!(
                "determinism-scoped code reaches a nondeterminism source: {}: `{}` ({}:{})",
                chain.join(" → "),
                fact.what,
                g.files[seed_file].file.rel,
                fact.line
            ),
            waived: is_waived,
            severity: Severity::Deny,
        });
    }
}

/// Parse `dses-*` dependency names (with 1-based lines) out of a
/// `Cargo.toml`, from `[dependencies]` / `[dependencies.dses-x]`
/// sections only — `[dev-dependencies]` and `[build-dependencies]` are
/// layering-exempt.
#[must_use]
pub fn cargo_dses_deps(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(i + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if let Some(sect) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let sect = sect.trim();
            if let Some(dep) = sect
                .strip_prefix("dependencies.")
                .and_then(|d| d.strip_prefix("dses-"))
            {
                out.push((dep.to_string(), lineno));
            }
            in_deps = sect == "dependencies";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"');
            if let Some(dep) = key.strip_prefix("dses-") {
                out.push((dep.to_string(), lineno));
            }
        }
    }
    out
}

/// `layering`: the declared DAG must cover every crate, be acyclic, and
/// agree with both Cargo dependencies and `dses_x::…` path evidence.
fn layering(root: &Path, g: &Graph<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.layering.is_empty() {
        return;
    }
    // workspace crates: directories under crates/ with a Cargo.toml,
    // plus the synthetic `integration` crate for workspace-root tests/
    let mut workspace: BTreeSet<String> = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.filter_map(Result::ok) {
            if e.path().join("Cargo.toml").is_file() {
                workspace.insert(e.file_name().to_string_lossy().into_owned());
            }
        }
    }
    workspace.insert("integration".to_string());

    for c in &workspace {
        if !cfg.layering.contains_key(c) {
            out.push(Finding {
                file: "lint.toml".to_string(),
                line: 1,
                rule: "layering",
                message: format!("crate `{c}` is missing from the [layering] section"),
                waived: false,
                severity: Severity::Deny,
            });
        }
    }
    for c in cfg.layering.keys() {
        if !workspace.contains(c) {
            out.push(Finding {
                file: "lint.toml".to_string(),
                line: 1,
                rule: "layering",
                message: format!("[layering] declares unknown crate `{c}`"),
                waived: false,
                severity: Severity::Warn,
            });
        }
    }
    // acyclicity (Kahn): whatever survives elimination is cyclic
    let mut remaining: BTreeMap<&str, BTreeSet<&str>> = cfg
        .layering
        .iter()
        .map(|(k, v)| {
            let deps: BTreeSet<&str> = v
                .iter()
                .map(String::as_str)
                .filter(|d| cfg.layering.contains_key(*d))
                .collect();
            (k.as_str(), deps)
        })
        .collect();
    loop {
        let free: Vec<&str> = remaining
            .iter()
            .filter(|(_, deps)| deps.is_empty())
            .map(|(k, _)| *k)
            .collect();
        if free.is_empty() {
            break;
        }
        for k in &free {
            remaining.remove(k);
        }
        for deps in remaining.values_mut() {
            for k in &free {
                deps.remove(k);
            }
        }
    }
    if !remaining.is_empty() {
        let cyclic: Vec<&str> = remaining.keys().copied().collect();
        out.push(Finding {
            file: "lint.toml".to_string(),
            line: 1,
            rule: "layering",
            message: format!("[layering] contains a cycle among: {}", cyclic.join(", ")),
            waived: false,
            severity: Severity::Deny,
        });
        return; // a cyclic declaration cannot meaningfully gate evidence
    }

    let allowed = |c: &str, dep: &str| {
        cfg.layering
            .get(c)
            .is_some_and(|deps| deps.iter().any(|d| d == dep))
    };

    // Cargo [dependencies] evidence
    for c in &workspace {
        if !cfg.layering.contains_key(c) {
            continue; // already reported above
        }
        let manifest = root.join("crates").join(c).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue; // `integration` has no manifest
        };
        for (dep, line) in cargo_dses_deps(&text) {
            if dep == *c || !workspace.contains(&dep) {
                continue;
            }
            if !allowed(c, &dep) {
                out.push(Finding {
                    file: format!("crates/{c}/Cargo.toml"),
                    line,
                    rule: "layering",
                    message: format!(
                        "crate `{c}` may not depend on `{dep}` (layering allows: [{}])",
                        cfg.layering.get(c).map(|d| d.join(", ")).unwrap_or_default()
                    ),
                    waived: false,
                    severity: Severity::Deny,
                });
            }
        }
    }

    // `dses_x::…` path evidence in non-test code
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for (fi, pf) in g.files.iter().enumerate() {
        if pf.file.kind == FileKind::Test {
            continue;
        }
        let c = &pf.file.crate_id;
        for r in &pf.items.crate_refs {
            if r.in_test || r.krate == *c || !workspace.contains(&r.krate) {
                continue;
            }
            if allowed(c, &r.krate) || !seen.insert((fi, r.krate.clone())) {
                continue;
            }
            let is_waived = waived(g, fi, "layering", r.line);
            out.push(Finding {
                file: pf.file.rel.clone(),
                line: r.line,
                rule: "layering",
                message: format!(
                    "crate `{c}` references `dses_{}` but the layering DAG does not allow it \
                     (allows: [{}])",
                    r.krate,
                    cfg.layering.get(c).map(|d| d.join(", ")).unwrap_or_default()
                ),
                waived: is_waived,
                severity: Severity::Deny,
            });
        }
    }
}

/// StateNeeds bit encoding, mirroring `dses_sim::state::StateNeeds`.
const WORK_LEFT: u8 = 1;
const QUEUE_LEN: u8 = 2;

fn needs_name(bits: u8) -> &'static str {
    match bits & 3 {
        0 => "NOTHING",
        WORK_LEFT => "WORK_LEFT",
        QUEUE_LEN => "QUEUE_LEN",
        _ => "ALL",
    }
}

fn declared_bits(consts: &[String]) -> Option<u8> {
    if consts.is_empty() {
        return None; // computed/forwarded declaration — indeterminate
    }
    let mut bits = 0u8;
    for c in consts {
        bits |= match c.as_str() {
            "NOTHING" => 0,
            "WORK_LEFT" => WORK_LEFT,
            "QUEUE_LEN" => QUEUE_LEN,
            "ALL" => WORK_LEFT | QUEUE_LEN,
            _ => return None,
        };
    }
    Some(bits)
}

/// `state-needs`: cross-check each `impl Dispatcher`'s declared
/// `state_needs()` against the `HostView` accessors its methods (and
/// workspace-local callees) actually read.
fn state_needs(g: &Graph<'_>, out: &mut Vec<Finding>) {
    // group Dispatcher-impl methods by (file, impl block)
    let mut impls: BTreeMap<(usize, usize), Vec<FnId>> = BTreeMap::new();
    for id in g.ids() {
        let fi = g.fns_file(id);
        let f = g.item(id);
        if g.files[fi].file.kind != FileKind::Lib || f.in_test {
            continue;
        }
        if f.impl_trait.as_deref() == Some("Dispatcher") && f.impl_ty.is_some() {
            if let Some(impl_id) = f.impl_id {
                impls.entry((fi, impl_id)).or_default().push(id);
            }
        }
    }
    for ((fi, _), members) in &impls {
        let ty = g
            .item(members[0])
            .impl_ty
            .clone()
            .unwrap_or_else(|| "?".to_string());
        let declarer = members
            .iter()
            .copied()
            .find(|&id| g.item(id).name == "state_needs");
        let declared = match declarer {
            Some(id) => match declared_bits(&g.item(id).state_consts) {
                Some(bits) => bits,
                None => continue, // cannot read the declaration — skip
            },
            None => WORK_LEFT | QUEUE_LEN, // trait default: ALL
        };
        // usage: everything the impl's methods transitively read
        let parents = g.bfs(members, |_| true);
        let mut usage = 0u8;
        let mut evidence: BTreeMap<u8, (FnId, u32)> = BTreeMap::new();
        for &v in parents.keys() {
            let item = g.item(v);
            if let Some(line) = item.reads_work_left {
                usage |= WORK_LEFT;
                evidence.entry(WORK_LEFT).or_insert((v, line));
            }
            if let Some(line) = item.reads_queue_len {
                usage |= QUEUE_LEN;
                evidence.entry(QUEUE_LEN).or_insert((v, line));
            }
        }
        let anchor = declarer
            .map(|id| g.item(id).line)
            .unwrap_or_else(|| g.item(members[0]).line);
        let missing = usage & !declared;
        if missing != 0 {
            let (bit, &(witness, line)) = evidence
                .iter()
                .find(|(b, _)| *b & missing != 0)
                .map(|(b, e)| (*b, e))
                .unwrap_or((missing, &(members[0], anchor)));
            let accessor = if bit == WORK_LEFT { "work_left" } else { "queue_len" };
            let path = g.path_to(&parents, witness).join(" → ");
            let is_waived = waived(g, *fi, "state-needs", anchor);
            out.push(Finding {
                file: g.files[*fi].file.rel.clone(),
                line: anchor,
                rule: "state-needs",
                message: format!(
                    "impl Dispatcher for {ty} declares StateNeeds::{} but reads `.{accessor}` \
                     via {path} ({}:{line})",
                    needs_name(declared),
                    g.files[g.fns_file(witness)].file.rel,
                ),
                waived: is_waived,
                severity: Severity::Deny,
            });
        }
        let extra = declared & !usage;
        if extra != 0 {
            let is_waived = waived(g, *fi, "state-needs", anchor);
            let message = if declarer.is_some() {
                format!(
                    "impl Dispatcher for {ty} declares StateNeeds::{} but only reads {}; \
                     the kernel will maintain state the policy never consults",
                    needs_name(declared),
                    if usage == 0 {
                        "no HostView accessors".to_string()
                    } else {
                        format!("StateNeeds::{}", needs_name(usage))
                    },
                )
            } else {
                format!(
                    "impl Dispatcher for {ty} relies on the default state_needs() (= ALL) \
                     but only reads {}; declare the narrower need",
                    if usage == 0 {
                        "no HostView accessors".to_string()
                    } else {
                        format!("StateNeeds::{}", needs_name(usage))
                    },
                )
            };
            out.push(Finding {
                file: g.files[*fi].file.rel.clone(),
                line: anchor,
                rule: "state-needs",
                message,
                waived: is_waived,
                severity: Severity::Warn,
            });
        }
    }
}

/// Waiver reachability: a `panic-hygiene` waiver inside a function that
/// no bin/test entry point (or std-trait impl, or by-value reference)
/// can reach is waiving dead code.
fn waiver_reachability(g: &Graph<'_>, out: &mut Vec<Finding>) {
    // union of every file's bare-identifier mentions: address-taken fns
    let mut mentioned: BTreeSet<&str> = BTreeSet::new();
    for pf in &g.files {
        mentioned.extend(pf.items.mentions.iter().map(String::as_str));
    }
    let roots: Vec<FnId> = g
        .ids()
        .filter(|&id| {
            let pf = &g.files[g.fns_file(id)];
            let f = g.item(id);
            // bins and tests are entry points
            if pf.file.kind != FileKind::Lib || f.in_test {
                return true;
            }
            // impls of non-workspace traits (Display, Ord, Drop, …) are
            // invoked implicitly by std machinery
            if f.impl_trait
                .as_deref()
                .is_some_and(|t| !g.traits.contains(t))
            {
                return true;
            }
            // address-taken functions escape the call graph
            mentioned.contains(f.name.as_str())
        })
        .collect();
    let visited = g.bfs(&roots, |_| true);
    for (fi, pf) in g.files.iter().enumerate() {
        if pf.file.kind != FileKind::Lib {
            continue;
        }
        for d in &pf.items.directives {
            let crate::items::DirectiveKind::Allow { rules, file_scope } = &d.kind else {
                continue;
            };
            if *file_scope || !rules.iter().any(|r| r == "panic-hygiene") {
                continue;
            }
            // innermost function containing the covered line
            let holder = g
                .ids()
                .filter(|&id| g.fns_file(id) == fi)
                .filter(|&id| {
                    let f = g.item(id);
                    f.line <= d.covers && d.covers <= f.end_line
                })
                .max_by_key(|&id| g.item(id).line);
            let Some(holder) = holder else { continue };
            if g.item(holder).in_test || visited.contains_key(&holder) {
                continue;
            }
            out.push(Finding {
                file: pf.file.rel.clone(),
                line: d.line,
                rule: "unused-waiver",
                message: format!(
                    "panic-hygiene waiver in `{}`, which is unreachable from every \
                     bin/test entry point",
                    g.label(holder)
                ),
                waived: false,
                severity: Severity::Warn,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cargo_deps_parser_sections_and_inline() {
        let text = "\
[package]
name = \"dses-core\"

[dependencies]
dses-sim = { path = \"../sim\" }
dses-dist = { path = \"../dist\" }
serde = \"1\"

[dependencies.dses-workload]
path = \"../workload\"

[dev-dependencies]
dses-bench = { path = \"../bench\" }
";
        let deps = cargo_dses_deps(text);
        let names: Vec<&str> = deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["sim", "dist", "workload"]);
        assert_eq!(deps[0].1, 5);
    }

    #[test]
    fn needs_bits_roundtrip() {
        assert_eq!(declared_bits(&["NOTHING".into()]), Some(0));
        assert_eq!(declared_bits(&["WORK_LEFT".into()]), Some(WORK_LEFT));
        assert_eq!(
            declared_bits(&["WORK_LEFT".into(), "QUEUE_LEN".into()]),
            Some(3)
        );
        assert_eq!(declared_bits(&["ALL".into()]), Some(3));
        assert_eq!(declared_bits(&[]), None);
        assert_eq!(needs_name(0), "NOTHING");
        assert_eq!(needs_name(3), "ALL");
    }
}
