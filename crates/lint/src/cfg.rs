//! Per-function control-flow graphs recovered from the token stream.
//!
//! The dataflow tier (§10.6, [`crate::dataflow`]) needs to know, for
//! every interesting token position inside a function body, two things
//! the flat token walk of [`crate::items`] cannot answer:
//!
//! 1. **reachability** — is the position live, or dead code behind an
//!    unconditional `return` / `break` / diverging match arm?
//! 2. **iteration** — does the position execute once per call, or once
//!    per loop iteration (i.e. per job, in the kernels this tier
//!    polices)? A reciprocal hoisted *above* the job loop is free; the
//!    same divide *inside* it is paid millions of times.
//!
//! [`Cfg::build`] recovers a statement-level CFG from the tokens of one
//! `fn` body: maximal straight-line token runs become nodes, and
//! `if`/`else` chains, `match` arms, the three loop forms (with
//! labelled `break`/`continue`), `return`, `?`, and `let … else` supply
//! the edges. Loop bodies get true back edges, so "iterates" falls out
//! of cycle membership rather than a syntactic guess. The recovery is
//! deliberately conservative: constructs it cannot model precisely
//! (expression-position blocks, closure bodies) collapse into the
//! enclosing node rather than being dropped.
//!
//! Closures are *not* given edges — a `return` inside one exits the
//! closure, not the function — but their bodies are tracked in a
//! separate nesting map: a closure passed as a call argument is assumed
//! to run per element of whatever drives it (`.map`, `.for_each`,
//! `with_thread_workspace`, …), so [`Cfg::closure_depth`] > 0 marks the
//! position as potentially iterating. That over-approximates run-once
//! closures; waivers carry the proof when it matters.
//!
//! Facts are computed by a small forward worklist engine
//! ([`Cfg::solve`]) over arbitrary join-semilattices; reachability and
//! cycle membership ([`Cfg::reachable`], [`Cfg::iterating`]) are the
//! two instances the rules consume.

use crate::items::Code;
use crate::lexer::TokenKind;

/// One CFG node: a maximal straight-line run of tokens.
#[derive(Debug)]
pub struct Node {
    /// First code position claimed by the node (its "location"), if any
    /// token was claimed; synthetic join/exit nodes own no tokens.
    pub first: Option<usize>,
    /// Successor node ids.
    pub succs: Vec<usize>,
}

/// A statement-level control-flow graph for one function body.
#[derive(Debug)]
pub struct Cfg {
    /// All nodes; `entry` executes first, `exit` models every way out.
    pub nodes: Vec<Node>,
    /// Entry node id (always 0).
    pub entry: usize,
    /// Exit node id (always 1); `return`, `?`, and falling off the end
    /// all lead here.
    pub exit: usize,
    /// Code position of the body's `{`.
    open: usize,
    /// node id per body code position (offset by `open`).
    node_of: Vec<usize>,
    /// closure-nesting depth per body code position (offset by `open`).
    closure: Vec<u32>,
}

impl Cfg {
    /// Build the CFG for a body spanning code positions `open ..= close`
    /// (the `{` and `}` as found by [`Code::match_bracket`]).
    #[must_use]
    pub fn build(code: &Code<'_>, open: usize, close: usize) -> Self {
        let mut b = Builder {
            code,
            nodes: vec![
                Node { first: None, succs: Vec::new() }, // entry
                Node { first: None, succs: Vec::new() }, // exit
            ],
            open,
            node_of: vec![usize::MAX; close + 1 - open],
            closure: vec![0; close + 1 - open],
            loops: Vec::new(),
        };
        let body = b.new_node();
        b.edge(0, body);
        if let Some(last) = b.stmts(open + 1, close, body, 0) {
            b.edge(last, 1);
        }
        // claim structural tokens (braces, commas between arms, …) into
        // the nearest preceding node so `node_at` is total over the body
        let mut prev = body;
        for slot in &mut b.node_of {
            if *slot == usize::MAX {
                *slot = prev;
            } else {
                prev = *slot;
            }
        }
        Cfg {
            nodes: b.nodes,
            entry: 0,
            exit: 1,
            open,
            node_of: b.node_of,
            closure: b.closure,
        }
    }

    /// The node owning code position `pos` (None outside the body).
    #[must_use]
    pub fn node_at(&self, pos: usize) -> Option<usize> {
        self.node_of.get(pos.checked_sub(self.open)?).copied()
    }

    /// Closure-nesting depth of code position `pos` (0 = not inside any
    /// closure body).
    #[must_use]
    pub fn closure_depth(&self, pos: usize) -> u32 {
        pos.checked_sub(self.open)
            .and_then(|off| self.closure.get(off))
            .copied()
            .unwrap_or(0)
    }

    /// Forward worklist solver: propagate facts from `entry` to a
    /// fixpoint. `join` must be monotone w.r.t. `PartialEq` (the solver
    /// re-queues successors whenever a node's incoming fact changes).
    pub fn solve<T, J>(&self, bottom: T, entry: T, join: J) -> Vec<T>
    where
        T: Clone + PartialEq,
        J: Fn(&T, &T) -> T,
    {
        let mut facts: Vec<T> = vec![bottom; self.nodes.len()];
        facts[self.entry] = entry;
        let mut work: Vec<usize> = vec![self.entry];
        while let Some(n) = work.pop() {
            for &s in &self.nodes[n].succs {
                let merged = join(&facts[s], &facts[n]);
                if merged != facts[s] {
                    facts[s] = merged;
                    work.push(s);
                }
            }
        }
        facts
    }

    /// Per-node reachability from the entry.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        self.solve(false, true, |a, b| *a || *b)
    }

    /// Per-node cycle membership: true when the node lies on a loop
    /// (it can reach itself through at least one edge), i.e. it may
    /// execute once per iteration rather than once per call.
    #[must_use]
    pub fn iterating(&self) -> Vec<bool> {
        let n = self.nodes.len();
        let mut out = vec![false; n];
        for (start, on_cycle) in out.iter_mut().enumerate() {
            // worklist reachability from start's successors back to it
            let mut seen = vec![false; n];
            let mut work: Vec<usize> = self.nodes[start].succs.clone();
            while let Some(x) = work.pop() {
                if x == start {
                    *on_cycle = true;
                    break;
                }
                if !seen[x] {
                    seen[x] = true;
                    work.extend(self.nodes[x].succs.iter().copied());
                }
            }
        }
        out
    }
}

struct Builder<'a, 's> {
    code: &'a Code<'s>,
    nodes: Vec<Node>,
    open: usize,
    node_of: Vec<usize>,
    closure: Vec<u32>,
    /// Innermost-last stack of enclosing loops:
    /// (label, continue target, break target).
    loops: Vec<(Option<String>, usize, usize)>,
}

impl Builder<'_, '_> {
    fn new_node(&mut self) -> usize {
        self.nodes.push(Node {
            first: None,
            succs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn claim(&mut self, pos: usize, node: usize) {
        if let Some(slot) = self.node_of.get_mut(pos - self.open) {
            *slot = node;
        }
        if self.nodes[node].first.is_none() {
            self.nodes[node].first = Some(pos);
        }
        // `?` propagates an early return
        if self.code.text(pos) == "?" && self.code.kind(pos) == TokenKind::Punct {
            self.edge(node, 1);
        }
    }

    fn text(&self, p: usize) -> &str {
        self.code.text(p)
    }

    /// Does a `|` / `||` at `p` start a closure (expression position)
    /// rather than a binary/closing construct?
    fn starts_closure(&self, p: usize) -> bool {
        if self.code.kind(p) != TokenKind::Punct || !matches!(self.text(p), "|" | "||") {
            return false;
        }
        match p.checked_sub(1).map(|q| (self.code.kind(q), self.text(q))) {
            // after a value ⇒ binary OR; after `|` we are inside a
            // pattern alternation, not a new closure
            Some((TokenKind::Ident, t)) => matches!(t, "return" | "move" | "else" | "in"),
            Some((TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char, _)) => {
                false
            }
            Some((TokenKind::Punct, t)) => !matches!(t, ")" | "]" | "}" | "?" | "|"),
            None => true,
            _ => false,
        }
    }

    /// Mark a closure starting at `p` (on `|` or `||`); claims its
    /// tokens into `node` with closure depth `depth + 1` and returns the
    /// position after its body.
    fn closure(&mut self, p: usize, node: usize, depth: u32) -> usize {
        let mut q = p;
        if self.text(p) == "|" {
            // skip the parameter list to the matching `|`
            self.claim(p, node);
            self.bump(p, depth);
            q = p + 1;
            let mut par = 0usize;
            while q < self.node_of.len() + self.open {
                let t = self.text(q);
                if par == 0 && t == "|" {
                    break;
                }
                match t {
                    "(" | "[" | "<" => par += 1,
                    ")" | "]" | ">" => par = par.saturating_sub(1),
                    _ => {}
                }
                self.claim(q, node);
                self.bump(q, depth);
                q += 1;
            }
        }
        if q >= self.open + self.node_of.len() {
            return q;
        }
        self.claim(q, node);
        self.bump(q, depth);
        q += 1; // past the closing `|` (or the whole `||`)
        // body: a block, or an expression up to `,` / `)` / `;` at depth 0
        if self.code.get(q) == Some("{") {
            let close = self.code.match_bracket(q, "{", "}").unwrap_or(q);
            self.opaque(q, close + 1, node, depth + 1);
            return close + 1;
        }
        let mut par = 0usize;
        while q < self.node_of.len() + self.open {
            let t = self.text(q);
            match t {
                "(" | "[" => par += 1,
                ")" | "]" if par == 0 => break,
                ")" | "]" => par -= 1,
                "," | ";" if par == 0 => break,
                "{" => {
                    let close = self.code.match_bracket(q, "{", "}").unwrap_or(q);
                    self.opaque(q, close + 1, node, depth + 1);
                    q = close + 1;
                    continue;
                }
                _ => {}
            }
            if self.starts_closure(q) {
                q = self.closure(q, node, depth + 1);
                continue;
            }
            self.claim(q, node);
            self.bump(q, depth + 1);
            q += 1;
        }
        q
    }

    fn bump(&mut self, pos: usize, depth: u32) {
        if let Some(slot) = self.closure.get_mut(pos - self.open) {
            *slot = depth;
        }
    }

    /// Claim `[start, end)` into `node` at closure depth `depth`,
    /// descending into nested closures (which bump the depth) but
    /// building no edges — used for closure bodies and other opaque
    /// expression spans.
    fn opaque(&mut self, start: usize, end: usize, node: usize, depth: u32) {
        let mut p = start;
        while p < end {
            if self.starts_closure(p) {
                p = self.closure(p, node, depth);
                continue;
            }
            self.claim(p, node);
            self.bump(p, depth);
            p += 1;
        }
    }

    /// Claim expression tokens into `node` until a `{` at bracket depth
    /// 0 (the start of a construct's block); returns its position.
    fn until_block(&mut self, start: usize, node: usize, depth: u32) -> usize {
        let mut p = start;
        let limit = self.open + self.node_of.len();
        while p < limit {
            match self.text(p) {
                "{" => return p,
                "(" | "[" => {
                    let (o, c) = if self.text(p) == "(" { ("(", ")") } else { ("[", "]") };
                    let close = self.code.match_bracket(p, o, c).unwrap_or(p);
                    self.opaque(p, close + 1, node, depth);
                    p = close + 1;
                    continue;
                }
                _ => {}
            }
            if self.starts_closure(p) {
                p = self.closure(p, node, depth);
                continue;
            }
            self.claim(p, node);
            self.bump(p, depth);
            p += 1;
        }
        limit - 1
    }

    /// The loop label (`'outer: loop`) ending just before `p`, if any.
    fn label_before(&self, p: usize) -> Option<String> {
        if p >= 2 && self.text(p - 1) == ":" && self.code.kind(p - 2) == TokenKind::Lifetime {
            Some(self.text(p - 2).to_string())
        } else {
            None
        }
    }

    /// Parse statements in `[start, end)`, entering at node `cur`.
    /// Returns the live node at the end, or `None` when every path
    /// diverged (returned / broke / looped forever).
    fn stmts(&mut self, start: usize, end: usize, mut cur: usize, depth: u32) -> Option<usize> {
        let mut p = start;
        let mut live = true;
        while p < end {
            let t = self.text(p);
            match t {
                "if" => {
                    let (next, ends) = self.branch_if(p, cur, depth);
                    p = next;
                    let join = self.new_node();
                    for e in ends {
                        self.edge(e, join);
                    }
                    live = has_preds(&self.nodes, join);
                    cur = join;
                }
                "match" => {
                    self.claim(p, cur);
                    let brace = self.until_block(p + 1, cur, depth);
                    let close = self.code.match_bracket(brace, "{", "}").unwrap_or(brace);
                    self.claim(brace, cur);
                    let mut ends: Vec<usize> = Vec::new();
                    let mut q = brace + 1;
                    while q < close {
                        // pattern (and guard) tokens belong to the
                        // scrutinee node: they are tests, not bodies
                        while q < close && self.text(q) != "=>" {
                            match self.text(q) {
                                "(" | "[" | "{" => {
                                    let (o, c) = match self.text(q) {
                                        "(" => ("(", ")"),
                                        "[" => ("[", "]"),
                                        _ => ("{", "}"),
                                    };
                                    let cl = self.code.match_bracket(q, o, c).unwrap_or(q);
                                    self.opaque(q, cl + 1, cur, depth);
                                    q = cl + 1;
                                }
                                _ => {
                                    if self.starts_closure(q) {
                                        q = self.closure(q, cur, depth);
                                    } else {
                                        self.claim(q, cur);
                                        self.bump(q, depth);
                                        q += 1;
                                    }
                                }
                            }
                        }
                        if q >= close {
                            break;
                        }
                        self.claim(q, cur); // the `=>`
                        q += 1;
                        let arm = self.new_node();
                        self.edge(cur, arm);
                        if self.text(q) == "{" {
                            let acl = self.code.match_bracket(q, "{", "}").unwrap_or(q);
                            self.claim(q, arm);
                            if let Some(e) = self.stmts(q + 1, acl, arm, depth) {
                                ends.push(e);
                            }
                            self.claim(acl, arm);
                            q = acl + 1;
                        } else {
                            // expression arm: claim to the `,` at depth 0
                            let astart = q;
                            let mut par = 0usize;
                            while q < close {
                                match self.text(q) {
                                    "(" | "[" | "{" if self.code.kind(q) == TokenKind::Punct => {
                                        par += 1;
                                    }
                                    ")" | "]" | "}" => par = par.saturating_sub(1),
                                    "," if par == 0 => break,
                                    _ => {}
                                }
                                q += 1;
                            }
                            if let Some(e) = self.arm_expr(astart, q, arm, depth) {
                                ends.push(e);
                            }
                        }
                        if q < close && self.text(q) == "," {
                            self.claim(q, cur);
                            q += 1;
                        }
                    }
                    p = close + 1;
                    let join = self.new_node();
                    if ends.is_empty() && self.nodes[cur].succs.is_empty() {
                        // zero arms: `match x {}` — treat as fallthrough
                        self.edge(cur, join);
                    }
                    for e in ends {
                        self.edge(e, join);
                    }
                    cur = join;
                    live = has_preds(&self.nodes, join);
                }
                "while" => {
                    self.claim(p, cur);
                    let label = self.label_before(p);
                    let header = self.new_node();
                    self.edge(cur, header);
                    let brace = self.until_block(p + 1, header, depth);
                    let close = self.code.match_bracket(brace, "{", "}").unwrap_or(brace);
                    self.claim(brace, header);
                    let after = self.new_node();
                    self.edge(header, after);
                    let body = self.new_node();
                    self.edge(header, body);
                    self.loops.push((label, header, after));
                    if let Some(e) = self.stmts(brace + 1, close, body, depth) {
                        self.edge(e, header); // back edge
                    }
                    self.loops.pop();
                    p = close + 1;
                    cur = after;
                }
                "loop" if self.code.kind(p) == TokenKind::Ident => {
                    self.claim(p, cur);
                    let label = self.label_before(p);
                    let header = self.new_node();
                    self.edge(cur, header);
                    let brace = self.until_block(p + 1, header, depth);
                    let close = self.code.match_bracket(brace, "{", "}").unwrap_or(brace);
                    self.claim(brace, header);
                    let after = self.new_node(); // reached by `break` only
                    self.loops.push((label, header, after));
                    if let Some(e) = self.stmts(brace + 1, close, header, depth) {
                        self.edge(e, header); // back edge
                    }
                    self.loops.pop();
                    p = close + 1;
                    cur = after;
                    live = has_preds(&self.nodes, after);
                }
                "for" => {
                    // `for pat in iterable { body }` — the iterable is
                    // evaluated once, so it stays in `cur`
                    self.claim(p, cur);
                    let label = self.label_before(p);
                    let brace = self.until_block(p + 1, cur, depth);
                    let close = self.code.match_bracket(brace, "{", "}").unwrap_or(brace);
                    let header = self.new_node();
                    self.edge(cur, header);
                    self.claim(brace, header);
                    let after = self.new_node();
                    self.edge(header, after); // zero iterations
                    let body = self.new_node();
                    self.edge(header, body);
                    self.loops.push((label, header, after));
                    if let Some(e) = self.stmts(brace + 1, close, body, depth) {
                        self.edge(e, header); // back edge
                    }
                    self.loops.pop();
                    p = close + 1;
                    cur = after;
                }
                "return" => {
                    p = self.claim_to_semi(p, cur, depth);
                    self.edge(cur, 1);
                    cur = self.new_node(); // dead unless something joins
                    live = false;
                }
                "break" | "continue" => {
                    let label = if p + 1 < end && self.code.kind(p + 1) == TokenKind::Lifetime {
                        Some(self.text(p + 1).to_string())
                    } else {
                        None
                    };
                    let target = self
                        .loops
                        .iter()
                        .rev()
                        .find(|(l, _, _)| label.is_none() || *l == label)
                        .map(|&(_, header, after)| if t == "continue" { header } else { after });
                    p = self.claim_to_semi(p, cur, depth);
                    match target {
                        Some(tgt) => self.edge(cur, tgt),
                        None => self.edge(cur, 1), // stray break: bail out
                    }
                    cur = self.new_node();
                    live = false;
                }
                "else" => {
                    // `let … else { diverging }` — the block must
                    // diverge, so flow continues in `cur` afterwards
                    self.claim(p, cur);
                    if self.text(p + 1) == "{" {
                        let close = self.code.match_bracket(p + 1, "{", "}").unwrap_or(p + 1);
                        let div = self.new_node();
                        self.edge(cur, div);
                        if let Some(e) = self.stmts(p + 2, close, div, depth) {
                            self.edge(e, 1);
                        }
                        self.claim(p + 1, div);
                        self.claim(close, div);
                        p = close + 1;
                    } else {
                        p += 1;
                    }
                }
                "{" => {
                    // plain nested block: statements continue through it
                    let close = self.code.match_bracket(p, "{", "}").unwrap_or(p);
                    self.claim(p, cur);
                    match self.stmts(p + 1, close, cur, depth) {
                        Some(e) => cur = e,
                        None => {
                            cur = self.new_node();
                            live = false;
                        }
                    }
                    self.claim(close, cur);
                    p = close + 1;
                }
                "(" | "[" => {
                    let (o, c) = if t == "(" { ("(", ")") } else { ("[", "]") };
                    let close = self.code.match_bracket(p, o, c).unwrap_or(p);
                    self.opaque(p, close + 1, cur, depth);
                    p = close + 1;
                }
                _ => {
                    if self.starts_closure(p) {
                        p = self.closure(p, cur, depth);
                        continue;
                    }
                    self.claim(p, cur);
                    self.bump(p, depth);
                    p += 1;
                }
            }
        }
        live.then_some(cur)
    }

    /// An `if` / `else if` chain starting at `p` (on `if`). Claims the
    /// condition into `cur`, parses the branches, and returns (position
    /// after the chain, live branch-end nodes).
    fn branch_if(&mut self, p: usize, cur: usize, depth: u32) -> (usize, Vec<usize>) {
        self.claim(p, cur);
        let brace = self.until_block(p + 1, cur, depth);
        let close = self.code.match_bracket(brace, "{", "}").unwrap_or(brace);
        let then = self.new_node();
        self.edge(cur, then);
        self.claim(brace, then);
        let mut ends: Vec<usize> = Vec::new();
        if let Some(e) = self.stmts(brace + 1, close, then, depth) {
            ends.push(e);
        }
        self.claim(close, then);
        let mut next = close + 1;
        if self.code.get(next) == Some("else") {
            self.claim(next, cur);
            if self.code.get(next + 1) == Some("if") {
                let (after, mut more) = self.branch_if(next + 1, cur, depth);
                ends.append(&mut more);
                next = after;
            } else if self.code.get(next + 1) == Some("{") {
                let eclose = self
                    .code
                    .match_bracket(next + 1, "{", "}")
                    .unwrap_or(next + 1);
                let els = self.new_node();
                self.edge(cur, els);
                self.claim(next + 1, els);
                if let Some(e) = self.stmts(next + 2, eclose, els, depth) {
                    ends.push(e);
                }
                self.claim(eclose, els);
                next = eclose + 1;
            }
        } else {
            // no else: the condition may be false
            ends.push(cur);
        }
        (next, ends)
    }

    /// A non-block match arm body `[start, end)`: detects a leading
    /// diverging keyword, otherwise claims the expression. Returns the
    /// live end node (None when the arm diverges).
    fn arm_expr(&mut self, start: usize, end: usize, arm: usize, depth: u32) -> Option<usize> {
        if start >= end {
            return Some(arm);
        }
        let diverges = match self.text(start) {
            "return" => {
                self.edge(arm, 1);
                true
            }
            "continue" | "break" => {
                let kw = self.text(start).to_string();
                let label = if start + 1 < end && self.code.kind(start + 1) == TokenKind::Lifetime
                {
                    Some(self.text(start + 1).to_string())
                } else {
                    None
                };
                let target = self
                    .loops
                    .iter()
                    .rev()
                    .find(|(l, _, _)| label.is_none() || *l == label)
                    .map(|&(_, header, after)| if kw == "continue" { header } else { after });
                self.edge(arm, target.unwrap_or(1));
                true
            }
            "unreachable" | "panic" | "todo" | "unimplemented"
                if self.text(start + 1) == "!" =>
            {
                self.edge(arm, 1);
                true
            }
            _ => false,
        };
        self.opaque(start, end, arm, depth);
        (!diverges).then_some(arm)
    }

    /// Claim from `p` (a `return`/`break`/`continue`) through the
    /// statement's `;` at bracket depth 0 (or to the end of the
    /// enclosing block). Returns the position after the `;`.
    fn claim_to_semi(&mut self, p: usize, node: usize, depth: u32) -> usize {
        let mut q = p;
        let limit = self.open + self.node_of.len();
        let mut par = 0usize;
        while q < limit {
            match self.text(q) {
                "(" | "[" | "{" => par += 1,
                ")" | "]" | "}" => {
                    if par == 0 {
                        return q; // end of enclosing block
                    }
                    par -= 1;
                }
                ";" if par == 0 => {
                    self.claim(q, node);
                    return q + 1;
                }
                _ => {}
            }
            if self.starts_closure(q) {
                q = self.closure(q, node, depth);
                continue;
            }
            self.claim(q, node);
            self.bump(q, depth);
            q += 1;
        }
        q
    }
}

fn has_preds(nodes: &[Node], id: usize) -> bool {
    nodes.iter().any(|n| n.succs.contains(&id))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the CFG of the first fn body in `src`.
    fn cfg(src: &str) -> (Code<'_>, Cfg) {
        let code = Code::new(src);
        let fn_pos = (0..code.len()).find(|&p| code.text(p) == "fn").unwrap();
        let open = (fn_pos..code.len()).find(|&p| code.text(p) == "{").unwrap();
        let close = code.match_bracket(open, "{", "}").unwrap();
        let c = Cfg::build(&code, open, close);
        (code, c)
    }

    /// Node of the first token equal to `tok` at or after start.
    fn node_of(code: &Code<'_>, c: &Cfg, tok: &str) -> usize {
        let p = (0..code.len()).find(|&p| code.text(p) == tok).unwrap();
        c.node_at(p).unwrap()
    }

    fn pos_of(code: &Code<'_>, tok: &str) -> usize {
        (0..code.len()).find(|&p| code.text(p) == tok).unwrap()
    }

    #[test]
    fn straight_line_is_one_reachable_node() {
        let (code, c) = cfg("fn f() { let a = 1; let b = a; }");
        let n = node_of(&code, &c, "a");
        assert!(c.reachable()[n]);
        assert!(!c.iterating()[n]);
        assert_eq!(n, node_of(&code, &c, "b"));
    }

    #[test]
    fn loop_bodies_iterate_but_hoisted_code_does_not() {
        let (code, c) = cfg("fn f(xs: &[f64]) { let inv = 1.0; for x in xs { consume(inv); } done(); }");
        let hoisted = node_of(&code, &c, "inv");
        let body = node_of(&code, &c, "consume");
        let after = node_of(&code, &c, "done");
        let it = c.iterating();
        assert!(!it[hoisted], "code before the loop runs once");
        assert!(it[body], "the loop body lies on the back-edge cycle");
        assert!(!it[after], "code after the loop runs once");
        assert!(c.reachable()[after]);
    }

    #[test]
    fn while_condition_iterates() {
        let (code, c) = cfg("fn f() { while cond() { step(); } }");
        assert!(c.iterating()[node_of(&code, &c, "cond")]);
        assert!(c.iterating()[node_of(&code, &c, "step")]);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let (code, c) = cfg("fn f() { return; dead(); }");
        assert!(!c.reachable()[node_of(&code, &c, "dead")]);
    }

    #[test]
    fn code_after_loop_without_break_is_unreachable() {
        let (code, c) = cfg("fn f() { loop { spin(); } dead(); }");
        assert!(c.iterating()[node_of(&code, &c, "spin")]);
        assert!(!c.reachable()[node_of(&code, &c, "dead")]);
    }

    #[test]
    fn break_reaches_the_after_node() {
        let (code, c) = cfg("fn f() { loop { if done() { break; } } after(); }");
        assert!(c.reachable()[node_of(&code, &c, "after")]);
        assert!(!c.iterating()[node_of(&code, &c, "after")]);
    }

    #[test]
    fn labelled_break_exits_the_outer_loop() {
        let (code, c) =
            cfg("fn f() { 'outer: loop { loop { break 'outer; } } after(); }");
        assert!(c.reachable()[node_of(&code, &c, "after")]);
    }

    #[test]
    fn if_else_branches_join() {
        let (code, c) = cfg("fn f(c: bool) { if c { a(); } else { b(); } after(); }");
        let r = c.reachable();
        assert!(r[node_of(&code, &c, "a")]);
        assert!(r[node_of(&code, &c, "b")]);
        assert!(r[node_of(&code, &c, "after")]);
        assert_ne!(node_of(&code, &c, "a"), node_of(&code, &c, "b"));
    }

    #[test]
    fn match_arms_are_separate_nodes_and_divergence_kills_the_join() {
        let (code, c) = cfg(
            "fn f(x: u8) { match x { 0 => zero(), 1 => { one(); } _ => return, } after(); }",
        );
        let r = c.reachable();
        assert!(r[node_of(&code, &c, "zero")]);
        assert!(r[node_of(&code, &c, "one")]);
        assert!(r[node_of(&code, &c, "after")]);
        assert_ne!(node_of(&code, &c, "zero"), node_of(&code, &c, "one"));
        // all-diverging arms make the join dead
        let (code2, c2) = cfg("fn f(x: u8) { match x { _ => return, } dead(); }");
        assert!(!c2.reachable()[node_of(&code2, &c2, "dead")]);
    }

    #[test]
    fn closure_bodies_carry_depth_but_no_fn_edges() {
        let (code, c) = cfg("fn f(xs: &[f64]) { let s = xs.iter().map(|x| x * scale).sum(); }");
        let p = pos_of(&code, "scale");
        assert!(c.closure_depth(p) > 0, "closure body is assumed per-element");
        let q = pos_of(&code, "iter");
        assert_eq!(c.closure_depth(q), 0);
        // a `return` inside a closure must not make trailing code dead
        let (code3, c3) = cfg("fn f() { g(|| { return; }); after(); }");
        assert!(c3.reachable()[node_of(&code3, &c3, "after")]);
    }

    #[test]
    fn pattern_alternation_bars_are_not_closures() {
        let (code, c) = cfg("fn f(x: u8) { match x { 0 | 1 => a(), _ => b(), } done(); }");
        assert!(c.reachable()[node_of(&code, &c, "done")]);
        assert_eq!(c.closure_depth(pos_of(&code, "a")), 0);
    }

    #[test]
    fn question_mark_adds_an_exit_edge_but_flow_continues() {
        let (code, c) = cfg("fn f() -> Result<(), E> { step()?; after(); Ok(()) }");
        assert!(c.reachable()[node_of(&code, &c, "after")]);
        let n = node_of(&code, &c, "step");
        assert!(c.nodes[n].succs.contains(&c.exit));
    }

    #[test]
    fn let_else_diverging_block_keeps_main_flow_alive() {
        let (code, c) =
            cfg("fn f(o: Option<u8>) { let Some(x) = o else { return; }; use_it(x); }");
        assert!(c.reachable()[node_of(&code, &c, "use_it")]);
    }

    #[test]
    fn nested_loops_compose() {
        let (code, c) = cfg("fn f() { for i in 0..4 { for j in 0..4 { inner(); } mid(); } out(); }");
        let it = c.iterating();
        assert!(it[node_of(&code, &c, "inner")]);
        assert!(it[node_of(&code, &c, "mid")]);
        assert!(!it[node_of(&code, &c, "out")]);
    }

    #[test]
    fn solve_reaches_a_fixpoint_on_cyclic_graphs() {
        let (_, c) = cfg("fn f() { while go() { step(); } }");
        // counting lattice capped at 2: must terminate despite the cycle
        let facts = c.solve(0u8, 1u8, |a, b| (*a).max(*b).min(2));
        assert_eq!(facts[c.entry], 1);
    }
}
