//! Lightweight item parsing on top of the raw lexer.
//!
//! The semantic tier needs more than a token stream but far less than a
//! parse tree: which functions exist (with their impl context), what
//! each body *calls*, which facts it exhibits (allocation constructs,
//! nondeterminism sources, `HostView` accessor reads), and what the file
//! imports. This module provides:
//!
//! * [`Code`] — the shared token-cursor utilities (comment-free indexing,
//!   bracket matching, `#[cfg(test)]` span detection) that both the
//!   per-file rule engine and the item parser use;
//! * [`scan_directives`] — the `// dses-lint:` directive parser, shared
//!   for the same reason;
//! * [`parse_file`] — a single-pass item walker producing [`FileItems`].
//!
//! The walker tracks a scope stack (`mod`/`impl`/`trait`/`fn`) by brace
//! matching. It deliberately does **not** build expression trees: calls
//! are recognised syntactically (`name(`, `.name(`, `path::name(`),
//! which is exactly the precision the conservative call graph wants.

use crate::lexer::{lex, Token, TokenKind};
use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------
// Code: shared token utilities
// ---------------------------------------------------------------------

/// A lexed file with comment-free indexing. `code[p]` maps a *code
/// position* (comments skipped) to a token index; all span bookkeeping
/// below is in code positions.
pub struct Code<'s> {
    /// The source the tokens borrow from.
    pub src: &'s str,
    /// All tokens, comments included (directives live there).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
}

impl<'s> Code<'s> {
    /// Lex `src` and build the comment-free index.
    #[must_use]
    pub fn new(src: &'s str) -> Self {
        let tokens = lex(src);
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        Code { src, tokens, code }
    }

    /// Number of code (non-comment) tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no code tokens at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Text of the code token at position `p`.
    #[must_use]
    pub fn text(&self, p: usize) -> &str {
        self.tokens[self.code[p]].text(self.src)
    }

    /// Kind of the code token at position `p`.
    #[must_use]
    pub fn kind(&self, p: usize) -> TokenKind {
        self.tokens[self.code[p]].kind
    }

    /// 1-based line of the code token at position `p`.
    #[must_use]
    pub fn line(&self, p: usize) -> u32 {
        self.tokens[self.code[p]].line
    }

    /// Text at `p`, or `None` past the end — for lookahead.
    #[must_use]
    pub fn get(&self, p: usize) -> Option<&str> {
        (p < self.code.len()).then(|| self.text(p))
    }

    /// Code position of the bracket matching the one at `open`.
    #[must_use]
    pub fn match_bracket(&self, open: usize, ob: &str, cb: &str) -> Option<usize> {
        let mut depth = 0i32;
        for p in open..self.code.len() {
            let t = self.text(p);
            if t == ob {
                depth += 1;
            } else if t == cb {
                depth -= 1;
                if depth == 0 {
                    return Some(p);
                }
            }
        }
        None
    }

    /// Given the code position just after an attribute, find the end of
    /// the annotated item: the matching `}` of its first brace block, or
    /// the first `;` before any brace opens.
    #[must_use]
    pub fn item_end(&self, mut p: usize) -> Option<usize> {
        // skip further attributes
        while p + 1 < self.len() && self.text(p) == "#" && self.text(p + 1) == "[" {
            p = self.match_bracket(p + 1, "[", "]")? + 1;
        }
        while p < self.len() {
            match self.text(p) {
                ";" => return Some(p),
                "{" => return self.match_bracket(p, "{", "}"),
                _ => p += 1,
            }
        }
        None
    }

    /// Code-position spans (inclusive) of `#[cfg(test)]` / `#[test]`
    /// items: attribute through the end of the item's brace block (or
    /// its `;` for bodiless items).
    #[must_use]
    pub fn test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut p = 0usize;
        while p < self.len() {
            if self.text(p) == "#" && p + 1 < self.len() && self.text(p + 1) == "[" {
                let Some(end) = self.match_bracket(p + 1, "[", "]") else {
                    break;
                };
                if self.attr_is_test(p + 2, end) {
                    let span_end = self.item_end(end + 1).unwrap_or(self.len() - 1);
                    spans.push((p, span_end));
                    p = span_end + 1;
                    continue;
                }
                p = end + 1;
                continue;
            }
            p += 1;
        }
        spans
    }

    /// Does the attribute body (code positions `[from, to)`) mark test
    /// code? `test`, `cfg(test)`, `cfg(all(test, …))` — but not
    /// `cfg(not(test))`.
    #[must_use]
    pub fn attr_is_test(&self, from: usize, to: usize) -> bool {
        if to == from + 1 && self.text(from) == "test" {
            return true;
        }
        if self.text(from) != "cfg" {
            return false;
        }
        for p in from..to {
            if self.text(p) == "test" && self.kind(p) == TokenKind::Ident {
                // reject when nested under not(…): scan back for `not`
                // immediately before the enclosing `(`
                let mut depth = 0i32;
                let mut q = p;
                let mut negated = false;
                while q > from {
                    q -= 1;
                    match self.text(q) {
                        ")" => depth += 1,
                        "(" => {
                            if depth == 0 && q > from && self.text(q - 1) == "not" {
                                negated = true;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
                if !negated {
                    return true;
                }
            }
        }
        false
    }
}

/// Is code position `p` inside any of the (inclusive) spans?
#[must_use]
pub fn in_spans(spans: &[(usize, usize)], p: usize) -> bool {
    spans.iter().any(|&(a, b)| p >= a && p <= b)
}

// ---------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------

/// A parsed `dses-lint:` comment directive.
#[derive(Debug)]
pub struct Directive {
    /// Line of the comment itself.
    pub line: u32,
    /// The source line this waiver covers (same line for trailing
    /// comments, the next code line for standalone ones).
    pub covers: u32,
    /// What the directive does.
    pub kind: DirectiveKind,
    /// Set when some finding consumed the waiver. Atomic because the
    /// workspace tiers run on separate threads over one shared item
    /// graph; relaxed ordering suffices for a monotonic used-flag.
    pub used: AtomicBool,
}

impl Directive {
    /// Mark the waiver consumed.
    pub fn mark_used(&self) {
        self.used.store(true, Ordering::Relaxed);
    }

    /// Has any finding consumed this waiver?
    #[must_use]
    pub fn is_used(&self) -> bool {
        self.used.load(Ordering::Relaxed)
    }
}

/// The directive payload.
#[derive(Debug)]
pub enum DirectiveKind {
    /// `allow(<rules>) -- reason` / `allow-file(<rules>) -- reason`.
    Allow {
        /// Rule ids the waiver names.
        rules: Vec<String>,
        /// True for `allow-file`: covers the whole file.
        file_scope: bool,
    },
    /// `deny(alloc)` — opts the next fn into the no-alloc rule.
    DenyAlloc,
    /// `divides(N)` — declares the next fn's divide budget: at most `N`
    /// loop-weighted float `/` / `%` sites reachable through calls
    /// (checked by the dataflow tier's `divide-budget` rule).
    Divides(u32),
    /// `mirrors(group[, ulp])` — enrols the next fn in a mirror
    /// equivalence group (checked by the mirror tier). `ulp` marks the
    /// group as ulp-bounded: op-set checked, order exempt.
    Mirrors {
        /// Group name.
        group: String,
        /// True for `mirrors(group, ulp)`.
        ulp: bool,
    },
    /// `hoist(a, b, …)` — declares hoisted reciprocals for the next
    /// fn: each name is either a parameter holding a precomputed
    /// reciprocal or a call that stands for a hoisted-table divide.
    Hoist(Vec<String>),
    /// `inline(a, b, …)` — calls to these functions are inlined into
    /// the next fn's skeleton before mirror comparison.
    MirrorInline(Vec<String>),
    /// `untraced(a, b, …)` — calls to these functions are dropped from
    /// the next fn's skeleton (side-channel sinks like recording).
    Untraced(Vec<String>),
}

impl Directive {
    /// Does this directive waive `rule` at `line`?
    #[must_use]
    pub fn waives(&self, rule: &str, line: u32) -> bool {
        match &self.kind {
            DirectiveKind::Allow { rules, file_scope } => {
                rules.iter().any(|r| r == rule)
                    && (*file_scope || self.covers == line || self.line == line)
            }
            DirectiveKind::DenyAlloc
            | DirectiveKind::Divides(_)
            | DirectiveKind::Mirrors { .. }
            | DirectiveKind::Hoist(_)
            | DirectiveKind::MirrorInline(_)
            | DirectiveKind::Untraced(_) => false,
        }
    }
}

/// A malformed directive, to be reported as `waiver-syntax` by the rule
/// engine (the item parser ignores malformed directives silently — the
/// per-file pass already diagnoses them).
#[derive(Debug)]
pub struct DirectiveIssue {
    /// Line of the offending comment.
    pub line: u32,
    /// Explanation for the finding message.
    pub message: String,
}

/// Scan every comment for `dses-lint:` directives. Returns the parsed
/// directives plus syntax issues for the rule engine to report.
#[must_use]
pub fn scan_directives(code: &Code<'_>) -> (Vec<Directive>, Vec<DirectiveIssue>) {
    let mut out = Vec::new();
    let mut issues = Vec::new();
    for (i, tok) in code.tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // Directives live in *plain* comments only, as the first thing
        // in the comment: doc comments are rendered text and routinely
        // quote directive syntax without meaning it.
        let text = tok.text(code.src);
        let content = match tok.kind {
            TokenKind::LineComment => {
                if text.starts_with("///") || text.starts_with("//!") {
                    continue;
                }
                text.trim_start_matches('/')
            }
            _ => {
                if text.starts_with("/**") || text.starts_with("/*!") {
                    continue;
                }
                text.trim_start_matches("/*").trim_end_matches("*/")
            }
        };
        let Some(directive_text) = content.trim().strip_prefix("dses-lint:") else {
            continue;
        };
        match parse_directive_text(directive_text.trim(), tok.line, &mut issues) {
            Some(kind) => {
                // trailing if any code token precedes it on its line
                let trailing = code.tokens[..i].iter().any(|t| {
                    t.line == tok.line
                        && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                });
                let covers = if trailing {
                    tok.line
                } else {
                    code.tokens[i + 1..]
                        .iter()
                        .find(|t| {
                            !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                        })
                        .map_or(tok.line, |t| t.line)
                };
                out.push(Directive {
                    line: tok.line,
                    covers,
                    kind,
                    used: AtomicBool::new(false),
                });
            }
            None => { /* issue already recorded */ }
        }
    }
    (out, issues)
}

/// Parse the text after `dses-lint:`; on malformed input record an
/// issue and return `None`.
fn parse_directive_text(
    text: &str,
    line: u32,
    issues: &mut Vec<DirectiveIssue>,
) -> Option<DirectiveKind> {
    let mut issue = |message: String| {
        issues.push(DirectiveIssue { line, message });
    };
    let (head, file_scope) = if let Some(rest) = text.strip_prefix("allow-file(") {
        (rest, true)
    } else if let Some(rest) = text.strip_prefix("allow(") {
        (rest, false)
    } else if let Some(rest) = text.strip_prefix("divides(") {
        let rest = rest.trim();
        let Some(close) = rest.find(')') else {
            issue("unterminated budget in `divides(N)`".to_string());
            return None;
        };
        return match rest[..close].trim().parse::<u32>() {
            Ok(n) => Some(DirectiveKind::Divides(n)),
            Err(_) => {
                issue(format!(
                    "divide budget must be a small non-negative integer, got `{}`",
                    rest[..close].trim()
                ));
                None
            }
        };
    } else if let Some(rest) = text.strip_prefix("deny(") {
        let rest = rest.trim();
        if rest
            .strip_prefix("alloc")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix(')'))
            .is_some()
        {
            return Some(DirectiveKind::DenyAlloc);
        }
        issue("only `deny(alloc)` is supported".to_string());
        return None;
    } else if let Some(rest) = text.strip_prefix("mirrors(") {
        let Some(close) = rest.find(')') else {
            issue("unterminated group in `mirrors(group[, ulp])`".to_string());
            return None;
        };
        let mut parts = rest[..close].split(',').map(str::trim);
        let group = parts.next().unwrap_or("").to_string();
        let mode = parts.next();
        if group.is_empty()
            || !group.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            || parts.next().is_some()
            || !matches!(mode, None | Some("ulp"))
        {
            issue("mirror group must be `mirrors(<name>)` or `mirrors(<name>, ulp)`".to_string());
            return None;
        }
        return Some(DirectiveKind::Mirrors { group, ulp: mode.is_some() });
    } else if let Some((rest, which)) = text
        .strip_prefix("hoist(")
        .map(|r| (r, "hoist"))
        .or_else(|| text.strip_prefix("inline(").map(|r| (r, "inline")))
        .or_else(|| text.strip_prefix("untraced(").map(|r| (r, "untraced")))
    {
        let Some(close) = rest.find(')') else {
            issue(format!("unterminated name list in `{which}(…)`"));
            return None;
        };
        let names: Vec<String> = rest[..close]
            .split(',')
            .map(|n| n.trim().to_string())
            .filter(|n| !n.is_empty())
            .collect();
        if names.is_empty()
            || names
                .iter()
                .any(|n| !n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        {
            issue(format!("`{which}(…)` needs a comma-separated identifier list"));
            return None;
        }
        return Some(match which {
            "hoist" => DirectiveKind::Hoist(names),
            "inline" => DirectiveKind::MirrorInline(names),
            _ => DirectiveKind::Untraced(names),
        });
    } else {
        issue(format!("cannot parse directive `{text}`"));
        return None;
    };
    let Some(close) = head.find(')') else {
        issue("unterminated rule list in waiver".to_string());
        return None;
    };
    let rules: Vec<String> = head[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = head[close + 1..].trim();
    let reason = after.strip_prefix("--").map(str::trim);
    if rules.is_empty() || reason.is_none_or(str::is_empty) {
        issue("waiver needs a rule list and a reason: `allow(<rule>) -- <reason>`".to_string());
        return None;
    }
    Some(DirectiveKind::Allow { rules, file_scope })
}

// ---------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------

/// A syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What was called, as much as syntax reveals.
    pub target: CallTarget,
    /// 1-based line of the call.
    pub line: u32,
}

/// The three call shapes the parser distinguishes.
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// `name(…)` — free function (or tuple-struct constructor).
    Plain(String),
    /// `.name(…)` — method call, with whatever receiver shape was
    /// syntactically evident (see [`Recv`]) for type-based narrowing.
    Method {
        /// Method name.
        name: String,
        /// Receiver shape.
        recv: Recv,
    },
    /// `a::b::name(…)` — path call, segments in order.
    Path(Vec<String>),
}

/// Receiver shape of a method call, as far as one token of lookbehind
/// reveals. The resolver narrows the candidate set through parameter
/// and field types; [`Recv::Unknown`] falls back to the broad
/// method-name index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.name(…)`.
    SelfType,
    /// `self.field.name(…)` — field name captured.
    SelfField(String),
    /// `ident.name(…)` — a local or parameter.
    Ident(String),
    /// `ident.field.name(…)` — base ident and field captured.
    IdentField(String, String),
    /// Anything else (`expr().name(…)`, chained calls, indexing, …).
    Unknown,
}

/// An observed fact inside a function body: an allocating construct, a
/// nondeterminism source, or a `HostView` accessor read.
#[derive(Debug, Clone)]
pub struct Fact {
    /// The offending construct, for messages (`Vec::with_capacity`,
    /// `HashMap`, `.queue_len`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// True when an inline waiver for the corresponding *per-file* rule
    /// (`no-alloc` facts are never pre-waived; `determinism` facts are
    /// waived by `allow(determinism)`) covers the line.
    pub waived: bool,
}

/// One function (or method) item with the facts the semantic analyses
/// consume.
#[derive(Debug)]
pub struct FnItem {
    /// Function name (raw-ident prefix stripped: `r#fn` → `fn`).
    pub name: String,
    /// Per-file id of the enclosing `impl` block, if any — groups the
    /// methods of one impl.
    pub impl_id: Option<usize>,
    /// Self type of the enclosing impl (`RandomPolicy`), if parseable.
    pub impl_ty: Option<String>,
    /// Trait being implemented (last path segment, e.g. `Dispatcher`),
    /// or the trait name when this is a default method in a `trait`
    /// block.
    pub impl_trait: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the closing brace (== `line` for bodiless decls).
    pub end_line: u32,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Annotated `// dses-lint: deny(alloc)`.
    pub deny_alloc: bool,
    /// Annotated `// dses-lint: divides(N)`: the declared divide budget
    /// and the line of the directive comment.
    pub divides: Option<(u32, u32)>,
    /// True when the item has a body (trait required methods don't).
    pub has_body: bool,
    /// Code positions (into [`Code`] built from the same source) of the
    /// body's `{` and `}` — lets the dataflow tier rebuild a CFG for
    /// this function without re-finding the item.
    pub body: Option<(usize, usize)>,
    /// Names of `const` generic parameters (`record_core::<const
    /// EXTREMA: bool, …>` → `["EXTREMA", …]`) — the monomorphization
    /// axes the `demand-monomorphism` rule keys on.
    pub const_params: Vec<String>,
    /// Call sites in the body (nested closures included, nested `fn`
    /// bodies excluded — those get their own item).
    pub calls: Vec<CallSite>,
    /// Allocating constructs observed in the body.
    pub allocs: Vec<Fact>,
    /// Nondeterminism sources observed in the body.
    pub nondet: Vec<Fact>,
    /// `.work_left` field read, if any (line of first).
    pub reads_work_left: Option<u32>,
    /// `.queue_len` field read, if any (line of first).
    pub reads_queue_len: Option<u32>,
    /// `StateNeeds::X` constants named in the body — how `state_needs()`
    /// declarations are recovered.
    pub state_consts: Vec<String>,
    /// Parameter names with the leading identifier of their type;
    /// generic parameters are substituted with their first bound
    /// (`policy: &mut P` under `P: Dispatcher` → `("policy",
    /// "Dispatcher")`).
    pub params: Vec<(String, String)>,
    /// Identifiers re-bound inside the body (`let`/`for`/closure
    /// parameters) — parameter-based receiver narrowing is disabled
    /// for these names.
    pub shadowed: Vec<String>,
    /// Mirror groups this fn is enrolled in: `(group, ulp, directive
    /// line)` per `mirrors(…)` annotation (checked by the mirror tier).
    pub mirrors: Vec<(String, bool, u32)>,
    /// Names declared `hoist(…)`: parameters or calls standing for a
    /// hoisted reciprocal, with the directive line for stale reporting.
    pub mirror_hoists: Vec<(String, u32)>,
    /// Names declared `inline(…)` for skeleton extraction.
    pub mirror_inlines: Vec<String>,
    /// Names declared `untraced(…)` for skeleton extraction.
    pub mirror_untraced: Vec<String>,
}

/// One leaf of a `use` declaration.
#[derive(Debug)]
pub struct UseItem {
    /// Full path segments (`dses_sim`, `state`, `Dispatcher`).
    pub path: Vec<String>,
    /// The name it binds locally (last segment, or the `as` alias;
    /// `*` for glob imports).
    pub alias: String,
    /// 1-based line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Evidence that a file references a workspace crate by path
/// (`dses_x::…` anywhere in code, `use dses_x::…` included).
#[derive(Debug)]
pub struct CrateRef {
    /// Crate id (`sim`, `core`, …) — the `dses_` prefix stripped.
    pub krate: String,
    /// 1-based line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A named struct field with the leading identifier of its type.
#[derive(Debug)]
pub struct FieldDef {
    /// The struct the field belongs to.
    pub ty: String,
    /// Field name.
    pub field: String,
    /// First substantive identifier of the field's type
    /// (`SizeInterval` for `inner: SizeInterval`; `Dispatcher` for
    /// `Box<dyn Dispatcher>` — smart-pointer wrappers are descended,
    /// container generics are not).
    pub fty: String,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// All `use` leaves.
    pub uses: Vec<UseItem>,
    /// Struct/enum names defined in the file.
    pub types: Vec<String>,
    /// Named struct fields with their leading type identifiers.
    pub fields: Vec<FieldDef>,
    /// Trait names defined in the file.
    pub traits: Vec<String>,
    /// All well-formed directives (for semantic waiver application).
    pub directives: Vec<Directive>,
    /// Workspace-crate path references (layering evidence).
    pub crate_refs: Vec<CrateRef>,
    /// Every identifier that appears *without* a following `(` — the
    /// address-taken candidates. A function whose name shows up here is
    /// treated as reachable by the waiver-reachability analysis even if
    /// no direct call site resolves to it (`iter.map(compute)` passes
    /// `compute` by value; the call graph cannot see through that).
    pub mentions: std::collections::BTreeSet<String>,
}

/// Keywords that look like `name(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "break", "continue", "in", "as", "move",
    "ref", "else", "let", "mut", "fn", "where", "dyn", "impl", "pub", "use", "mod", "const",
    "static", "unsafe", "await",
];

/// Parse one file into its items. Never fails — unparseable constructs
/// degrade to "no item recorded", which the conservative analyses
/// treat as "no information".
#[must_use]
pub fn parse_file(src: &str) -> FileItems {
    Walker::new(src).run()
}

enum ScopeKind {
    Mod,
    /// Index into `Walker::impl_info`.
    Impl(usize),
    Trait(String),
    Fn(usize),
}

struct Scope {
    /// Code position of the matching `}`.
    close: usize,
    kind: ScopeKind,
}

struct Walker<'s> {
    code: Code<'s>,
    test_spans: Vec<(usize, usize)>,
    out: FileItems,
    scopes: Vec<Scope>,
    /// (ty, trait) of each impl id, for fn attribution.
    impl_info: Vec<(Option<String>, Option<String>)>,
}

impl<'s> Walker<'s> {
    fn new(src: &'s str) -> Self {
        let code = Code::new(src);
        let (directives, _issues) = scan_directives(&code);
        let test_spans = code.test_spans();
        Walker {
            code,
            test_spans,
            out: FileItems {
                directives,
                ..FileItems::default()
            },
            scopes: Vec::new(),
            impl_info: Vec::new(),
        }
    }

    fn in_test(&self, p: usize) -> bool {
        in_spans(&self.test_spans, p)
    }

    /// Skip a generic argument list: `open` is on `<`; returns the
    /// position of the matching `>` (handling `<<`/`>>` munch), or a
    /// safe stop on `{` / `;`.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut p = open;
        while p < self.code.len() {
            match self.code.text(p) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return p;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return p;
                    }
                }
                "{" | ";" => return p.saturating_sub(1),
                _ => {}
            }
            p += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Collect the head type/trait path starting at `*q`: skips `&`,
    /// `mut`, `dyn`, lifetimes and generic args; returns the last plain
    /// ident seen. Stops (without consuming) at `for`/`where`/`{`/`(`/`;`.
    fn collect_type_path(&self, q: &mut usize) -> Option<String> {
        let mut last: Option<String> = None;
        while *q < self.code.len() {
            let t = self.code.text(*q);
            match t {
                "for" | "where" | "{" | "(" | ";" => break,
                "&" | "mut" | "dyn" | "::" | "?" | "!" => *q += 1,
                "<" => *q = self.skip_angles(*q) + 1,
                _ if self.code.kind(*q) == TokenKind::Lifetime => *q += 1,
                _ if self.code.kind(*q) == TokenKind::Ident => {
                    last = Some(t.to_string());
                    *q += 1;
                }
                _ => break,
            }
        }
        last
    }

    /// First substantive identifier of a type starting at code position
    /// `q`: skips `&`/`mut`/`dyn`/`impl`/`?`, lifetimes and path
    /// prefixes (`a::b::T` → `T`), and descends into the smart-pointer
    /// wrappers `Box`/`Rc`/`Arc` (`Box<dyn Dispatcher>` →
    /// `Dispatcher`). Container generics are *not* descended:
    /// `Vec<Job>` → `Vec` — a method on the container is a std call,
    /// not a call on the element type.
    fn leading_type_ident(&self, mut q: usize) -> Option<String> {
        loop {
            match self.code.get(q) {
                Some("&" | "mut" | "dyn" | "impl" | "?") => q += 1,
                Some(_) if self.code.kind(q) == TokenKind::Lifetime => q += 1,
                Some(_)
                    if self.code.kind(q) == TokenKind::Ident
                        && self.code.get(q + 1) == Some("::") =>
                {
                    q += 2;
                }
                Some("Box" | "Rc" | "Arc") if self.code.get(q + 1) == Some("<") => q += 2,
                Some(t) if self.code.kind(q) == TokenKind::Ident => {
                    return Some(t.trim_start_matches("r#").to_string());
                }
                _ => return None,
            }
        }
    }

    /// Scan a generic parameter list (code positions `(from, to)`,
    /// exclusive of the angle brackets) for `Ident : Bound` pairs at
    /// relative depth 0, recording each parameter's *first* bound.
    fn scan_generic_bounds(&self, from: usize, to: usize, out: &mut Vec<(String, String)>) {
        let mut depth = 0i32;
        let mut q = from;
        while q < to {
            match self.code.text(q) {
                "<" | "(" | "[" => depth += 1,
                "<<" => depth += 2,
                ">" | ")" | "]" => depth -= 1,
                ">>" => depth -= 2,
                t if depth == 0
                    && self.code.kind(q) == TokenKind::Ident
                    && self.code.get(q + 1) == Some(":") =>
                {
                    if let Some(b) = self.leading_type_ident(q + 2) {
                        out.push((t.to_string(), b));
                    }
                }
                _ => {}
            }
            q += 1;
        }
    }

    /// Scan a fn parameter list (`open` on `(`, `close` on the matching
    /// `)`) for `name : Type` pairs at parameter depth, recording the
    /// leading type identifier of each. Patterns nested in tuples or
    /// generics sit at depth > 0 and are skipped.
    fn scan_params(&self, open: usize, close: usize, out: &mut Vec<(String, String)>) {
        let mut depth = 0i32;
        let mut q = open + 1;
        while q < close {
            match self.code.text(q) {
                "<" | "(" | "[" | "{" => depth += 1,
                "<<" => depth += 2,
                ">" | ")" | "]" | "}" => depth -= 1,
                ">>" => depth -= 2,
                t if depth == 0
                    && self.code.kind(q) == TokenKind::Ident
                    && !matches!(t, "self" | "mut")
                    && self.code.get(q + 1) == Some(":") =>
                {
                    if let Some(ty) = self.leading_type_ident(q + 2) {
                        out.push((t.trim_start_matches("r#").to_string(), ty));
                    }
                }
                _ => {}
            }
            q += 1;
        }
    }

    fn run(mut self) -> FileItems {
        let mut p = 0usize;
        while p < self.code.len() {
            while self.scopes.last().is_some_and(|s| p > s.close) {
                self.scopes.pop();
            }
            let t = self.code.text(p);
            match t {
                "mod" if self.is_ident(p + 1) => {
                    // `mod name {` descends; `mod name;` skips
                    match self.code.get(p + 2) {
                        Some("{") => {
                            let close =
                                self.code.match_bracket(p + 2, "{", "}").unwrap_or(self.code.len() - 1);
                            self.scopes.push(Scope {
                                close,
                                kind: ScopeKind::Mod,
                            });
                            p += 3;
                        }
                        _ => p += 2,
                    }
                }
                "impl" => p = self.parse_impl(p),
                "trait" if self.is_ident(p + 1) => {
                    let name = self.code.text(p + 1).to_string();
                    self.out.traits.push(name.clone());
                    let mut q = p + 2;
                    while q < self.code.len() && !matches!(self.code.text(q), "{" | ";") {
                        q = if self.code.text(q) == "<" {
                            self.skip_angles(q) + 1
                        } else {
                            q + 1
                        };
                    }
                    if self.code.get(q) == Some("{") {
                        let close = self.code.match_bracket(q, "{", "}").unwrap_or(self.code.len() - 1);
                        self.scopes.push(Scope {
                            close,
                            kind: ScopeKind::Trait(name),
                        });
                    }
                    p = q + 1;
                }
                "fn" if self.is_ident(p + 1) => p = self.parse_fn(p),
                "struct" | "enum" | "union" if self.is_ident(p + 1) => {
                    let name = self.code.text(p + 1).to_string();
                    if t == "struct" {
                        self.scan_struct_fields(p, &name);
                    }
                    self.out.types.push(name);
                    p += 2;
                }
                "use" => p = self.parse_use(p),
                _ => {
                    self.collect_facts(p);
                    p += 1;
                }
            }
        }
        self.apply_deny_alloc();
        self.out
    }

    fn is_ident(&self, p: usize) -> bool {
        p < self.code.len() && self.code.kind(p) == TokenKind::Ident
    }

    /// Parse an `impl` header at `p`; push the scope; return the
    /// position to continue from (just inside the `{`).
    fn parse_impl(&mut self, p: usize) -> usize {
        let mut q = p + 1;
        if self.code.get(q) == Some("<") {
            q = self.skip_angles(q) + 1;
        }
        let first = self.collect_type_path(&mut q);
        let (ty, trait_) = if self.code.get(q) == Some("for") {
            q += 1;
            let ty = self.collect_type_path(&mut q);
            (ty, first)
        } else {
            (first, None)
        };
        // advance to the body brace (skipping any where-clause); a `;`
        // means this was no impl block after all (`type X = impl T;`)
        while q < self.code.len() && !matches!(self.code.text(q), "{" | ";") {
            q = if self.code.text(q) == "<" {
                self.skip_angles(q) + 1
            } else {
                q + 1
            };
        }
        if self.code.get(q) != Some("{") {
            return q + 1;
        }
        let Some(close) = self.code.match_bracket(q, "{", "}") else {
            return q + 1;
        };
        self.impl_info.push((ty, trait_));
        self.scopes.push(Scope {
            close,
            kind: ScopeKind::Impl(self.impl_info.len() - 1),
        });
        q + 1
    }

    /// Parse a `fn` at `p`: record the item, push its scope (so nested
    /// items attribute correctly), return the position to continue from.
    fn parse_fn(&mut self, p: usize) -> usize {
        let name = self.code.text(p + 1).trim_start_matches("r#").to_string();
        let mut q = p + 2;
        let mut bounds: Vec<(String, String)> = Vec::new();
        let mut const_params: Vec<String> = Vec::new();
        if self.code.get(q) == Some("<") {
            let close = self.skip_angles(q);
            self.scan_generic_bounds(q + 1, close, &mut bounds);
            for c in q + 1..close {
                if self.code.text(c) == "const" && self.is_ident(c + 1) {
                    const_params.push(self.code.text(c + 1).to_string());
                }
            }
            q = close + 1;
        }
        let mut params: Vec<(String, String)> = Vec::new();
        if self.code.get(q) == Some("(") {
            match self.code.match_bracket(q, "(", ")") {
                Some(close) => {
                    self.scan_params(q, close, &mut params);
                    q = close + 1;
                }
                None => return p + 2,
            }
        }
        // scan the return type / where clause for the body or a `;`;
        // `[f64; 2]` in a return type hides a `;` inside brackets.
        // `where P: Dispatcher` bounds are collected on the way.
        let mut body: Option<(usize, usize)> = None;
        let mut in_where = false;
        while q < self.code.len() {
            match self.code.text(q) {
                "{" => {
                    let close = self.code.match_bracket(q, "{", "}").unwrap_or(self.code.len() - 1);
                    body = Some((q, close));
                    break;
                }
                ";" => break,
                "where" => {
                    in_where = true;
                    q += 1;
                }
                t if in_where
                    && self.code.kind(q) == TokenKind::Ident
                    && self.code.get(q + 1) == Some(":") =>
                {
                    if let Some(b) = self.leading_type_ident(q + 2) {
                        bounds.push((t.to_string(), b));
                    }
                    q += 2;
                }
                "<" => q = self.skip_angles(q) + 1,
                "[" => q = self.code.match_bracket(q, "[", "]").unwrap_or(q) + 1,
                "(" => q = self.code.match_bracket(q, "(", ")").unwrap_or(q) + 1,
                _ => q += 1,
            }
        }
        // substitute generic parameter types with their first bound
        for (_, ty) in &mut params {
            if let Some((_, b)) = bounds.iter().find(|(n, _)| n == ty) {
                *ty = b.clone();
            }
        }
        let (impl_ty, impl_trait) = self.current_impl();
        let impl_id = self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Impl(id) => Some(id),
            _ => None,
        });
        let item = FnItem {
            name,
            impl_id,
            impl_ty,
            impl_trait,
            line: self.code.line(p),
            end_line: body.map_or(self.code.line(p), |(_, c)| self.code.line(c)),
            in_test: self.in_test(p),
            deny_alloc: false,
            divides: None,
            has_body: body.is_some(),
            body,
            const_params,
            calls: Vec::new(),
            allocs: Vec::new(),
            nondet: Vec::new(),
            reads_work_left: None,
            reads_queue_len: None,
            state_consts: Vec::new(),
            params,
            shadowed: Vec::new(),
            mirrors: Vec::new(),
            mirror_hoists: Vec::new(),
            mirror_inlines: Vec::new(),
            mirror_untraced: Vec::new(),
        };
        let idx = self.out.fns.len();
        self.out.fns.push(item);
        match body {
            Some((open, close)) => {
                self.scopes.push(Scope {
                    close,
                    kind: ScopeKind::Fn(idx),
                });
                open + 1
            }
            None => q + 1,
        }
    }

    /// (ty, trait) of the innermost impl/trait scope.
    fn current_impl(&self) -> (Option<String>, Option<String>) {
        for s in self.scopes.iter().rev() {
            match &s.kind {
                ScopeKind::Impl(id) => {
                    let (ty, tr) = &self.impl_info[*id];
                    return (ty.clone(), tr.clone());
                }
                ScopeKind::Trait(name) => return (None, Some(name.clone())),
                ScopeKind::Fn(_) | ScopeKind::Mod => {}
            }
        }
        (None, None)
    }

    /// Parse a `use` declaration starting at `p` (on `use`); records
    /// every leaf; returns the position after the terminating `;`.
    fn parse_use(&mut self, p: usize) -> usize {
        let line = self.code.line(p);
        let in_test = self.in_test(p);
        let mut q = p + 1;
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut q, &mut prefix, line, in_test);
        while !matches!(self.code.get(q), Some(";") | None) {
            q += 1;
        }
        q + 1
    }

    /// Recursive use-tree parser for one branch: a `::`-separated path
    /// ending in a leaf ident, a `{group}`, a `*` glob, or `as alias`.
    /// Leaves `q` on the branch terminator (`;` / `,` / `}`).
    fn parse_use_tree(&mut self, q: &mut usize, prefix: &mut Vec<String>, line: u32, in_test: bool) {
        let depth_start = prefix.len();
        loop {
            match self.code.get(*q) {
                Some("::") => *q += 1,
                Some("{") => {
                    // group: parse each comma-separated branch
                    *q += 1;
                    loop {
                        match self.code.get(*q) {
                            Some("}") | None => {
                                *q += 1;
                                break;
                            }
                            Some(",") => *q += 1,
                            Some(_) => self.parse_use_tree(q, prefix, line, in_test),
                        }
                    }
                    break;
                }
                Some("*") => {
                    self.emit_use(prefix.clone(), "*".to_string(), line, in_test);
                    *q += 1;
                    break;
                }
                Some("as") => {
                    let alias = self
                        .code
                        .get(*q + 1)
                        .unwrap_or("_")
                        .trim_start_matches("r#")
                        .to_string();
                    self.emit_use(prefix.clone(), alias, line, in_test);
                    *q += 2;
                    break;
                }
                Some(_) if self.code.kind(*q) == TokenKind::Ident => {
                    prefix.push(self.code.text(*q).trim_start_matches("r#").to_string());
                    *q += 1;
                    // a leaf unless the path or an alias continues
                    if !matches!(self.code.get(*q), Some("::" | "as")) {
                        let leaf = prefix.last().cloned().unwrap_or_default();
                        self.emit_use(prefix.clone(), leaf, line, in_test);
                        break;
                    }
                }
                _ => break, // `;` `,` `}` or unexpected token: branch over
            }
        }
        prefix.truncate(depth_start);
        // land on the branch terminator for the caller
        while !matches!(self.code.get(*q), Some(";" | "," | "}") | None) {
            *q += 1;
        }
    }

    fn emit_use(&mut self, path: Vec<String>, alias: String, line: u32, in_test: bool) {
        if path.is_empty() {
            return;
        }
        // `use dses_x::…` is layering evidence — the main token walk
        // never sees inside use statements, so record the ref here
        if let Some(krate) = path[0].strip_prefix("dses_").filter(|k| !k.is_empty()) {
            if path.len() > 1 {
                self.out.crate_refs.push(CrateRef {
                    krate: krate.to_string(),
                    line,
                    in_test,
                });
            }
        }
        self.out.uses.push(UseItem {
            path,
            alias,
            line,
            in_test,
        });
    }

    /// Record calls/facts at code position `p` into the innermost
    /// enclosing fn; record crate references regardless of scope.
    fn collect_facts(&mut self, p: usize) {
        if self.code.kind(p) != TokenKind::Ident {
            return;
        }
        let t = self.code.text(p);
        let line = self.code.line(p);
        let in_test = self.in_test(p);
        let prev = (p > 0).then(|| self.code.text(p - 1));
        let next = self.code.get(p + 1);

        if let Some(rest) = t.strip_prefix("dses_") {
            if next == Some("::") && !rest.is_empty() {
                self.out.crate_refs.push(CrateRef {
                    krate: rest.to_string(),
                    line,
                    in_test,
                });
            }
        }

        // --- bare-identifier mentions (function references by value) ---
        if next != Some("(") && prev != Some("fn") {
            self.out
                .mentions
                .insert(t.trim_start_matches("r#").to_string());
        }

        let Some(fn_idx) = self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(i) => Some(i),
            _ => None,
        }) else {
            return;
        };

        // --- shadowing (re-bindings that disable param narrowing) ---
        if matches!(prev, Some("let" | "for" | "|"))
            || (prev == Some("mut") && p >= 2 && self.code.text(p - 2) == "let")
        {
            self.out.fns[fn_idx]
                .shadowed
                .push(t.trim_start_matches("r#").to_string());
        }

        // --- calls ---
        if next == Some("(") && !NON_CALL_KEYWORDS.contains(&t) {
            let target = if prev == Some(".") {
                let recv = if p >= 2 && self.code.text(p - 2) == "self" {
                    Recv::SelfType
                } else if p >= 4
                    && self.code.kind(p - 2) == TokenKind::Ident
                    && self.code.text(p - 3) == "."
                    && self.code.text(p - 4) == "self"
                {
                    Recv::SelfField(self.code.text(p - 2).to_string())
                } else if p >= 2
                    && self.code.kind(p - 2) == TokenKind::Ident
                    && (p < 3 || !matches!(self.code.text(p - 3), "." | "::"))
                {
                    Recv::Ident(self.code.text(p - 2).trim_start_matches("r#").to_string())
                } else if p >= 4
                    && self.code.kind(p - 2) == TokenKind::Ident
                    && self.code.text(p - 3) == "."
                    && self.code.kind(p - 4) == TokenKind::Ident
                    && (p < 5 || !matches!(self.code.text(p - 5), "." | "::"))
                {
                    Recv::IdentField(
                        self.code.text(p - 4).trim_start_matches("r#").to_string(),
                        self.code.text(p - 2).to_string(),
                    )
                } else {
                    Recv::Unknown
                };
                Some(CallTarget::Method {
                    name: t.trim_start_matches("r#").to_string(),
                    recv,
                })
            } else if prev == Some("::") {
                let mut segs = vec![t.trim_start_matches("r#").to_string()];
                let mut q = p;
                while q >= 2
                    && self.code.text(q - 1) == "::"
                    && self.code.kind(q - 2) == TokenKind::Ident
                {
                    segs.push(self.code.text(q - 2).trim_start_matches("r#").to_string());
                    q -= 2;
                }
                segs.reverse();
                Some(if segs.len() == 1 {
                    CallTarget::Plain(segs.pop().unwrap_or_default())
                } else {
                    CallTarget::Path(segs)
                })
            } else {
                Some(CallTarget::Plain(t.trim_start_matches("r#").to_string()))
            };
            if let Some(target) = target {
                self.out.fns[fn_idx].calls.push(CallSite { target, line });
            }
        }

        // --- allocation facts (mirrors the per-file no-alloc matchers) ---
        let alloc = match t {
            "new" | "from" | "with_capacity"
                if p >= 2
                    && self.code.text(p - 1) == "::"
                    && matches!(
                        self.code.text(p - 2),
                        "Vec" | "Box" | "String" | "VecDeque" | "BinaryHeap"
                    ) =>
            {
                Some(format!("{}::{t}", self.code.text(p - 2)))
            }
            "to_vec" | "collect" | "to_string" | "to_owned" | "with_capacity"
                if prev == Some(".") =>
            {
                Some(format!(".{t}"))
            }
            "vec" | "format" if next == Some("!") => Some(format!("{t}!")),
            _ => None,
        };
        if let Some(what) = alloc {
            let waived = self.waived_at("no-alloc", line);
            self.out.fns[fn_idx].allocs.push(Fact { what, line, waived });
        }

        // --- nondeterminism facts (mirrors the determinism matchers) ---
        let nondet = match t {
            "HashMap" | "HashSet" | "Instant" | "SystemTime" => Some(t.to_string()),
            "env"
                if p >= 2
                    && self.code.text(p - 1) == "::"
                    && self.code.text(p - 2) == "std" =>
            {
                Some("std::env".to_string())
            }
            _ => None,
        };
        if let Some(what) = nondet {
            let waived = self.waived_at("determinism", line);
            self.out.fns[fn_idx].nondet.push(Fact { what, line, waived });
        }

        // --- HostView accessor reads (field access, not calls) ---
        if prev == Some(".") && next != Some("(") {
            let f = &mut self.out.fns[fn_idx];
            match t {
                "work_left" if f.reads_work_left.is_none() => f.reads_work_left = Some(line),
                "queue_len" if f.reads_queue_len.is_none() => f.reads_queue_len = Some(line),
                _ => {}
            }
        }

        // --- StateNeeds constants ---
        if matches!(t, "NOTHING" | "WORK_LEFT" | "QUEUE_LEN" | "ALL")
            && p >= 2
            && self.code.text(p - 1) == "::"
            && self.code.text(p - 2) == "StateNeeds"
        {
            self.out.fns[fn_idx].state_consts.push(t.to_string());
        }
    }

    /// Scan the `{ … }` body of `struct ty` for named fields. `p` is on
    /// the `struct` keyword. Tuple and unit structs contribute nothing.
    fn scan_struct_fields(&mut self, p: usize, ty: &str) {
        // find the body brace before any `;` or `(`
        let mut q = p + 2;
        if self.code.get(q) == Some("<") {
            q = self.skip_angles(q) + 1;
        }
        loop {
            match self.code.get(q) {
                Some("{") => break,
                Some(";" | "(") | None => return,
                Some("<") => q = self.skip_angles(q) + 1,
                Some(_) => q += 1,
            }
        }
        let Some(close) = self.code.match_bracket(q, "{", "}") else {
            return;
        };
        // depth-0 idents followed by `:` are field names; depth counts
        // every nesting bracket so fn-pointer params and generic
        // arguments never masquerade as fields
        let mut depth = 0i32;
        let mut r = q + 1;
        while r < close {
            match self.code.text(r) {
                "(" | "[" | "{" | "<" => depth += 1,
                "<<" => depth += 2,
                ")" | "]" | "}" | ">" => depth -= 1,
                ">>" => depth -= 2,
                t if depth == 0
                    && self.code.kind(r) == TokenKind::Ident
                    && self.code.get(r + 1) == Some(":") =>
                {
                    if let Some(fty) = self.leading_type_ident(r + 2) {
                        self.out.fields.push(FieldDef {
                            ty: ty.to_string(),
                            field: t.to_string(),
                            fty,
                        });
                    }
                    r += 1;
                    continue;
                }
                _ => {}
            }
            r += 1;
        }
    }

    /// Is `rule` waived at `line` by any directive in this file?
    fn waived_at(&self, rule: &str, line: u32) -> bool {
        self.out.directives.iter().any(|d| d.waives(rule, line))
    }

    /// Resolve fn-scoped directives (`deny(alloc)`, `divides(N)`, and
    /// the mirror family) onto the first fn at or after the line each
    /// covers — same convention as the per-file engine.
    fn apply_deny_alloc(&mut self) {
        for d in &self.out.directives {
            if matches!(d.kind, DirectiveKind::Allow { .. }) {
                continue;
            }
            let Some(f) = self
                .out
                .fns
                .iter_mut()
                .filter(|f| f.line >= d.covers)
                .min_by_key(|f| f.line)
            else {
                continue;
            };
            match &d.kind {
                DirectiveKind::DenyAlloc => f.deny_alloc = true,
                DirectiveKind::Divides(n) => f.divides = Some((*n, d.line)),
                DirectiveKind::Mirrors { group, ulp } => {
                    f.mirrors.push((group.clone(), *ulp, d.line));
                }
                DirectiveKind::Hoist(names) => {
                    f.mirror_hoists
                        .extend(names.iter().map(|n| (n.clone(), d.line)));
                }
                DirectiveKind::MirrorInline(names) => {
                    f.mirror_inlines.extend(names.iter().cloned());
                }
                DirectiveKind::Untraced(names) => {
                    f.mirror_untraced.extend(names.iter().cloned());
                }
                DirectiveKind::Allow { .. } => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_with_impl_context() {
        let src = "
struct Foo;
trait Bar { fn required(&self); fn defaulted(&self) { helper(); } }
impl Bar for Foo {
    fn required(&self) { self.go(); }
}
impl Foo {
    fn inherent(&self) -> usize { crate::util::count() }
}
fn free() { Foo.required(); }
";
        let items = parse_file(src);
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["required", "defaulted", "required", "inherent", "free"]);
        let req_impl = &items.fns[2];
        assert_eq!(req_impl.impl_ty.as_deref(), Some("Foo"));
        assert_eq!(req_impl.impl_trait.as_deref(), Some("Bar"));
        assert!(matches!(
            req_impl.calls[0].target,
            CallTarget::Method { ref name, recv: Recv::SelfType } if name == "go"
        ));
        let inherent = &items.fns[3];
        assert_eq!(inherent.impl_ty.as_deref(), Some("Foo"));
        assert_eq!(inherent.impl_trait, None);
        assert!(matches!(
            inherent.calls[0].target,
            CallTarget::Path(ref p) if p == &["crate", "util", "count"]
        ));
        assert!(!items.fns[0].has_body);
        assert!(items.fns[1].has_body);
    }

    #[test]
    fn generics_do_not_confuse_impl_headers() {
        let src = "
impl<'a, T: Clone> Wrapper<'a, T> {
    fn get(&self) -> &T { &self.0 }
}
impl<S: Iterator<Item = u64>> Feed for Stream<S> {
    fn next(&mut self) { self.pull(); }
}
";
        let items = parse_file(src);
        assert_eq!(items.fns[0].impl_ty.as_deref(), Some("Wrapper"));
        assert_eq!(items.fns[0].impl_trait, None);
        assert_eq!(items.fns[1].impl_ty.as_deref(), Some("Stream"));
        assert_eq!(items.fns[1].impl_trait.as_deref(), Some("Feed"));
    }

    #[test]
    fn use_trees_flatten_to_leaves() {
        let src = "
use dses_sim::{Dispatcher, state::{StateNeeds, SystemState}};
use dses_dist::Distribution as Dist;
use std::collections::BTreeMap;
pub use crate::policies::RandomPolicy;
";
        let items = parse_file(src);
        let paths: Vec<String> = items.uses.iter().map(|u| u.path.join("::")).collect();
        assert!(paths.contains(&"dses_sim::Dispatcher".to_string()));
        assert!(paths.contains(&"dses_sim::state::StateNeeds".to_string()));
        assert!(paths.contains(&"dses_sim::state::SystemState".to_string()));
        assert!(paths.contains(&"std::collections::BTreeMap".to_string()));
        assert!(paths.contains(&"crate::policies::RandomPolicy".to_string()));
        let dist = items.uses.iter().find(|u| u.alias == "Dist").unwrap();
        assert_eq!(dist.path.join("::"), "dses_dist::Distribution");
        // crate refs recorded for layering evidence
        assert!(items.crate_refs.iter().any(|r| r.krate == "sim"));
        assert!(items.crate_refs.iter().any(|r| r.krate == "dist"));
    }

    #[test]
    fn facts_attribute_to_innermost_fn() {
        let src = "
fn outer() {
    let m = std::collections::HashMap::new();
    fn inner() { let v = Vec::new(); }
    let c = || buf.to_vec();
}
";
        let items = parse_file(src);
        let outer = items.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = items.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.nondet.len(), 1);
        assert!(outer.allocs.iter().any(|a| a.what == ".to_vec"));
        assert!(!outer.allocs.iter().any(|a| a.what == "Vec::new"));
        assert!(inner.allocs.iter().any(|a| a.what == "Vec::new"));
    }

    #[test]
    fn accessor_reads_and_state_consts() {
        let src = "
fn pick(state: &SystemState) -> usize {
    let q = state.hosts[0].queue_len;
    q
}
fn declare() -> StateNeeds { StateNeeds::WORK_LEFT | StateNeeds::QUEUE_LEN }
fn write_only() { let v = HostView { queue_len: 0, work_left: 0.0 }; consume(v); }
";
        let items = parse_file(src);
        let pick = &items.fns[0];
        assert!(pick.reads_queue_len.is_some());
        assert!(pick.reads_work_left.is_none());
        let declare = &items.fns[1];
        assert_eq!(declare.state_consts, ["WORK_LEFT", "QUEUE_LEN"]);
        // struct-literal field *writes* are not reads
        let wo = &items.fns[2];
        assert!(wo.reads_queue_len.is_none());
        assert!(wo.reads_work_left.is_none());
    }

    #[test]
    fn deny_alloc_and_waivers_thread_through() {
        let src = "
// dses-lint: deny(alloc)
fn hot() { helper(); }
fn helper() {
    let v = Vec::new();
    let m = HashMap::new(); // dses-lint: allow(determinism) -- keyed only
}
";
        let items = parse_file(src);
        assert!(items.fns[0].deny_alloc);
        assert!(!items.fns[1].deny_alloc);
        assert!(!items.fns[1].allocs[0].waived);
        assert!(items.fns[1].nondet[0].waived);
    }

    #[test]
    fn params_record_types_with_generic_bounds_substituted() {
        let src = "
fn run<P: Dispatcher + ?Sized, S>(trace: &Trace, policy: &mut P, speeds: &S, n: usize)
where
    S: SpeedModel,
{
    policy.reset();
    trace.arrivals();
    speeds.rate(0);
}
";
        let items = parse_file(src);
        let f = &items.fns[0];
        assert_eq!(
            f.params,
            [
                ("trace".to_string(), "Trace".to_string()),
                ("policy".to_string(), "Dispatcher".to_string()),
                ("speeds".to_string(), "SpeedModel".to_string()),
                ("n".to_string(), "usize".to_string()),
            ]
        );
        assert!(matches!(
            f.calls[0].target,
            CallTarget::Method { ref name, recv: Recv::Ident(ref r) }
                if name == "reset" && r == "policy"
        ));
    }

    #[test]
    fn receiver_shapes_and_shadowing() {
        let src = "
struct W { inner: Box<dyn Dispatcher> }
fn f(ws: &mut Workspace, x: Trace) {
    self.hosts.truncate(2);
    ws.collector.reset();
    for x in 0..3 {
        x.go();
    }
    make().go();
}
";
        let items = parse_file(src);
        assert!(items.fields.iter().any(|d| d.field == "inner" && d.fty == "Dispatcher"));
        let f = &items.fns[0];
        assert!(f.shadowed.contains(&"x".to_string()));
        let recvs: Vec<&Recv> = f
            .calls
            .iter()
            .filter_map(|c| match &c.target {
                CallTarget::Method { recv, .. } => Some(recv),
                _ => None,
            })
            .collect();
        assert_eq!(*recvs[0], Recv::SelfField("hosts".to_string()));
        assert_eq!(
            *recvs[1],
            Recv::IdentField("ws".to_string(), "collector".to_string())
        );
        assert_eq!(*recvs[2], Recv::Ident("x".to_string()));
        assert_eq!(*recvs[3], Recv::Unknown);
    }

    #[test]
    fn test_regions_mark_items() {
        let src = "
fn lib_fn() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() { helper(); }
}
";
        let items = parse_file(src);
        assert!(!items.fns[0].in_test);
        assert!(items.fns[1].in_test);
        assert!(items.fns[2].in_test);
    }
}
