//! Workspace walking: find every `.rs` file, classify it, lint it.
//!
//! Classification is by path convention (the same ones Cargo uses):
//!
//! * `crates/<c>/src/**`            → library code (`FileKind::Lib`) —
//!   unless the crate has no `src/lib.rs`, in which case the whole
//!   crate is a binary (`cli`);
//! * `crates/<c>/src/bin/**`, `src/main.rs` → binary code;
//! * `crates/<c>/{tests,benches,examples}/**`, workspace-root
//!   `tests/**` and `examples/**` → test code;
//! * any path containing a `fixtures` component is skipped entirely
//!   (inert lint-test data, deliberately full of violations).

use crate::config::Config;
use crate::graph::Graph;
use crate::items::DirectiveKind;
use crate::report::{Finding, Report, Severity};
use crate::rules::{check_file, tier_of, FileInput, FileKind, RootKind};
use std::path::{Path, PathBuf};

/// Locate the workspace root: walk up from `start` to the first
/// directory containing both `Cargo.toml` and `crates/`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Load `lint.toml` from the workspace root, falling back to the
/// embedded default when absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Config::default_workspace()),
    }
}

/// One classified, loaded workspace source file — the unit both the
/// per-file engine and the semantic tier consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate directory name (`sim`, `core`, … or `integration`).
    pub crate_id: String,
    /// Target kind.
    pub kind: FileKind,
    /// Set when the file is a crate root.
    pub root: Option<RootKind>,
    /// File contents.
    pub src: String,
}

/// Walk the workspace under `root` and load every lintable source file,
/// classified and sorted by path.
pub fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir, &mut files)?;
    }
    for extra in ["tests", "examples"] {
        let d = root.join(extra);
        if d.is_dir() {
            collect_rs(&d, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in &files {
        let rel = workspace_rel(root, file);
        if rel.split('/').any(|c| c == "fixtures" || c == "target") {
            continue;
        }
        let Some((crate_id, kind, root_kind)) = classify(root, &rel) else {
            continue;
        };
        let src =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        out.push(SourceFile {
            rel,
            crate_id,
            kind,
            root: root_kind,
            src,
        });
    }
    Ok(out)
}

/// Lint the whole workspace under `root`. With `semantic`, also build
/// the workspace item graph and run the interprocedural analyses; with
/// `dataflow`, additionally run the per-function CFG tier (divide
/// budgets, loop-alloc, grow-once, demand-monomorphism); with
/// `mirrors`, additionally prove the declared mirror-group bit-identity
/// contracts. All tiers route through the same [`Report`], so every
/// output format renders them uniformly.
///
/// The tiers run concurrently on std threads: the item graph is built
/// once and shared (directive used-flags are atomic), the per-file
/// engine is chunked across workers, and each active workspace tier
/// gets its own thread. Findings are merged in a fixed order (per-file
/// by path, then semantic, dataflow, mirrors) before the final sort,
/// so the report is deterministic regardless of scheduling.
pub fn lint_workspace(
    root: &Path,
    cfg: &Config,
    semantic: bool,
    dataflow: bool,
    mirrors: bool,
) -> Result<Report, String> {
    let files = collect_workspace(root)?;
    let graph = (semantic || dataflow || mirrors)
        .then(|| Graph::build_scoped(&files, crate::semantic::layering_closure(cfg)));
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, 8);
    let chunk = files.len().div_ceil(workers).max(1);
    let mut report = Report::default();
    let (file_chunks, sem_out, flow_out, mirror_out) = std::thread::scope(|s| {
        let file_handles: Vec<_> = files
            .chunks(chunk)
            .map(|batch| {
                s.spawn(move || {
                    batch
                        .iter()
                        .map(|f| {
                            let input = FileInput {
                                path: &f.rel,
                                crate_id: &f.crate_id,
                                kind: f.kind,
                                root: f.root,
                                src: &f.src,
                            };
                            check_file(&input, cfg)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let g = graph.as_ref();
        let sem = g
            .filter(|_| semantic)
            .map(|g| s.spawn(move || crate::semantic::check_graph(root, g, cfg)));
        let flow = g
            .filter(|_| dataflow)
            .map(|g| s.spawn(move || crate::dataflow::check_graph(g, cfg)));
        let mir = g
            .filter(|_| mirrors)
            .map(|g| s.spawn(move || crate::mirrors::check_graph(g, cfg)));
        let file_chunks: Vec<Vec<Vec<Finding>>> = file_handles
            .into_iter()
            // dses-lint: allow(panic-hygiene) -- a worker only panics if a rule itself panicked; propagate it
            .map(|h| h.join().expect("lint worker panicked"))
            .collect();
        let take = |h: Option<std::thread::ScopedJoinHandle<'_, Vec<Finding>>>| {
            // dses-lint: allow(panic-hygiene) -- same propagation for the tier threads
            h.map_or_else(Vec::new, |h| h.join().expect("lint tier panicked"))
        };
        (file_chunks, take(sem), take(flow), take(mir))
    });
    for per_file in file_chunks.into_iter().flatten() {
        report.findings.extend(per_file);
        report.files_scanned += 1;
    }
    report.findings.extend(sem_out);
    report.findings.extend(flow_out);
    report.findings.extend(mirror_out);
    if let Some(g) = &graph {
        cross_tier_unused_waivers(g, semantic, dataflow, mirrors, &mut report.findings);
    }
    report.sort();
    Ok(report)
}

/// Judge waivers that name only workspace-tier rules: the per-file
/// engine cannot see whether the semantic/dataflow/mirror analyses
/// consumed them, but after those tiers have run over the shared graph
/// the used-flags are authoritative. A waiver naming a rule whose tier
/// did not run this invocation is left alone — it may well be consumed
/// by a fuller run.
fn cross_tier_unused_waivers(
    g: &Graph<'_>,
    semantic: bool,
    dataflow: bool,
    mirrors: bool,
    out: &mut Vec<Finding>,
) {
    let ran = |tier: &str| match tier {
        "semantic" => semantic,
        "dataflow" => dataflow,
        "mirrors" => mirrors,
        _ => false,
    };
    for pf in &g.files {
        for d in &pf.items.directives {
            let DirectiveKind::Allow { rules, .. } = &d.kind else {
                continue;
            };
            let judgeable = !rules.is_empty()
                && rules.iter().all(|r| {
                    let t = tier_of(r);
                    t != "file" && ran(t)
                });
            if judgeable && !d.is_used() {
                out.push(Finding {
                    file: pf.file.rel.clone(),
                    line: d.line,
                    rule: "unused-waiver",
                    message: format!(
                        "waiver suppresses nothing: `{}` produced no finding here this run \
                         — delete it or fix the location",
                        rules.join(", ")
                    ),
                    waived: false,
                    severity: Severity::Warn,
                });
            }
        }
    }
}

/// Lint an explicit list of files (absolute or root-relative paths).
pub fn lint_files(root: &Path, files: &[PathBuf], cfg: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    for file in files {
        let abs = if file.is_absolute() {
            file.clone()
        } else {
            root.join(file)
        };
        let rel = workspace_rel(root, &abs);
        if rel.split('/').any(|c| c == "fixtures" || c == "target") {
            continue;
        }
        let Some((crate_id, kind, root_kind)) = classify(root, &rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        let input = FileInput {
            path: &rel,
            crate_id: &crate_id,
            kind,
            root: root_kind,
            src: &src,
        };
        report.findings.extend(check_file(&input, cfg));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// `/`-separated path of `abs` relative to `root` (falls back to the
/// full path if `abs` is outside the workspace).
fn workspace_rel(root: &Path, abs: &Path) -> String {
    let p = abs.strip_prefix(root).unwrap_or(abs);
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Derive `(crate_id, kind, root)` from a workspace-relative path.
/// Returns `None` for paths that are not lintable Rust sources.
fn classify(root: &Path, rel: &str) -> Option<(String, FileKind, Option<RootKind>)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    // workspace-root tests/ and examples/ belong to the integration crate
    if parts.first() == Some(&"tests") || parts.first() == Some(&"examples") {
        return Some(("integration".to_string(), FileKind::Test, None));
    }
    if parts.first() != Some(&"crates") || parts.len() < 3 {
        return None;
    }
    let crate_id = parts[1].to_string();
    let section = parts[2];
    let kind = match section {
        "src" => {
            let bin_only = !root
                .join("crates")
                .join(&crate_id)
                .join("src/lib.rs")
                .is_file();
            if bin_only || parts.get(3) == Some(&"bin") || parts.last() == Some(&"main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        "tests" | "benches" | "examples" => FileKind::Test,
        _ => return None,
    };
    let root_kind = match (parts.get(2), parts.get(3), parts.len()) {
        (Some(&"src"), Some(&"lib.rs"), 4) => Some(RootKind::LibRoot),
        (Some(&"src"), Some(&"main.rs"), 4) if kind == FileKind::Bin => {
            // main.rs is only a *crate* root when there is no lib.rs
            if root
                .join("crates")
                .join(&crate_id)
                .join("src/lib.rs")
                .is_file()
            {
                None
            } else {
                Some(RootKind::BinRoot)
            }
        }
        _ => None,
    };
    Some((crate_id, kind, root_kind))
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .expect("crates/lint has a workspace two levels up");
        let lib = classify(&root, "crates/sim/src/fast.rs");
        assert_eq!(lib, Some(("sim".into(), FileKind::Lib, None)));
        let libroot = classify(&root, "crates/sim/src/lib.rs");
        assert_eq!(
            libroot,
            Some(("sim".into(), FileKind::Lib, Some(RootKind::LibRoot)))
        );
        let cli = classify(&root, "crates/cli/src/args.rs");
        assert_eq!(cli, Some(("cli".into(), FileKind::Bin, None)));
        let cli_main = classify(&root, "crates/cli/src/main.rs");
        assert_eq!(
            cli_main,
            Some(("cli".into(), FileKind::Bin, Some(RootKind::BinRoot)))
        );
        let bench_bin = classify(&root, "crates/bench/src/bin/perf_report.rs");
        assert_eq!(bench_bin, Some(("bench".into(), FileKind::Bin, None)));
        let test = classify(&root, "crates/lint/tests/rules.rs");
        assert_eq!(test, Some(("lint".into(), FileKind::Test, None)));
        let ws_test = classify(&root, "tests/kernels.rs");
        assert_eq!(ws_test, Some(("integration".into(), FileKind::Test, None)));
        assert_eq!(classify(&root, "README.md"), None);
    }

    #[test]
    fn finds_workspace_root_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("lint.toml").is_file() || root.join("Cargo.toml").is_file());
    }
}
