//! Workspace walking: find every `.rs` file, classify it, lint it.
//!
//! Classification is by path convention (the same ones Cargo uses):
//!
//! * `crates/<c>/src/**`            → library code (`FileKind::Lib`) —
//!   unless the crate has no `src/lib.rs`, in which case the whole
//!   crate is a binary (`cli`);
//! * `crates/<c>/src/bin/**`, `src/main.rs` → binary code;
//! * `crates/<c>/{tests,benches,examples}/**`, workspace-root
//!   `tests/**` and `examples/**` → test code;
//! * any path containing a `fixtures` component is skipped entirely
//!   (inert lint-test data, deliberately full of violations).

use crate::config::Config;
use crate::report::Report;
use crate::rules::{check_file, FileInput, FileKind, RootKind};
use std::path::{Path, PathBuf};

/// Locate the workspace root: walk up from `start` to the first
/// directory containing both `Cargo.toml` and `crates/`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Load `lint.toml` from the workspace root, falling back to the
/// embedded default when absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Config::default_workspace()),
    }
}

/// One classified, loaded workspace source file — the unit both the
/// per-file engine and the semantic tier consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate directory name (`sim`, `core`, … or `integration`).
    pub crate_id: String,
    /// Target kind.
    pub kind: FileKind,
    /// Set when the file is a crate root.
    pub root: Option<RootKind>,
    /// File contents.
    pub src: String,
}

/// Walk the workspace under `root` and load every lintable source file,
/// classified and sorted by path.
pub fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir, &mut files)?;
    }
    for extra in ["tests", "examples"] {
        let d = root.join(extra);
        if d.is_dir() {
            collect_rs(&d, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in &files {
        let rel = workspace_rel(root, file);
        if rel.split('/').any(|c| c == "fixtures" || c == "target") {
            continue;
        }
        let Some((crate_id, kind, root_kind)) = classify(root, &rel) else {
            continue;
        };
        let src =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        out.push(SourceFile {
            rel,
            crate_id,
            kind,
            root: root_kind,
            src,
        });
    }
    Ok(out)
}

/// Lint the whole workspace under `root`. With `semantic`, also build
/// the workspace item graph and run the interprocedural analyses; with
/// `dataflow`, additionally run the per-function CFG tier (divide
/// budgets, loop-alloc, grow-once, demand-monomorphism). All tiers
/// route through the same [`Report`], so every output format renders
/// them uniformly.
pub fn lint_workspace(
    root: &Path,
    cfg: &Config,
    semantic: bool,
    dataflow: bool,
) -> Result<Report, String> {
    let files = collect_workspace(root)?;
    let mut report = Report::default();
    for f in &files {
        let input = FileInput {
            path: &f.rel,
            crate_id: &f.crate_id,
            kind: f.kind,
            root: f.root,
            src: &f.src,
        };
        report.findings.extend(check_file(&input, cfg));
        report.files_scanned += 1;
    }
    if semantic {
        report
            .findings
            .extend(crate::semantic::check_workspace(root, &files, cfg));
    }
    if dataflow {
        report
            .findings
            .extend(crate::dataflow::check_workspace(&files, cfg));
    }
    report.sort();
    Ok(report)
}

/// Lint an explicit list of files (absolute or root-relative paths).
pub fn lint_files(root: &Path, files: &[PathBuf], cfg: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    for file in files {
        let abs = if file.is_absolute() {
            file.clone()
        } else {
            root.join(file)
        };
        let rel = workspace_rel(root, &abs);
        if rel.split('/').any(|c| c == "fixtures" || c == "target") {
            continue;
        }
        let Some((crate_id, kind, root_kind)) = classify(root, &rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        let input = FileInput {
            path: &rel,
            crate_id: &crate_id,
            kind,
            root: root_kind,
            src: &src,
        };
        report.findings.extend(check_file(&input, cfg));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// `/`-separated path of `abs` relative to `root` (falls back to the
/// full path if `abs` is outside the workspace).
fn workspace_rel(root: &Path, abs: &Path) -> String {
    let p = abs.strip_prefix(root).unwrap_or(abs);
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Derive `(crate_id, kind, root)` from a workspace-relative path.
/// Returns `None` for paths that are not lintable Rust sources.
fn classify(root: &Path, rel: &str) -> Option<(String, FileKind, Option<RootKind>)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    // workspace-root tests/ and examples/ belong to the integration crate
    if parts.first() == Some(&"tests") || parts.first() == Some(&"examples") {
        return Some(("integration".to_string(), FileKind::Test, None));
    }
    if parts.first() != Some(&"crates") || parts.len() < 3 {
        return None;
    }
    let crate_id = parts[1].to_string();
    let section = parts[2];
    let kind = match section {
        "src" => {
            let bin_only = !root
                .join("crates")
                .join(&crate_id)
                .join("src/lib.rs")
                .is_file();
            if bin_only || parts.get(3) == Some(&"bin") || parts.last() == Some(&"main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        "tests" | "benches" | "examples" => FileKind::Test,
        _ => return None,
    };
    let root_kind = match (parts.get(2), parts.get(3), parts.len()) {
        (Some(&"src"), Some(&"lib.rs"), 4) => Some(RootKind::LibRoot),
        (Some(&"src"), Some(&"main.rs"), 4) if kind == FileKind::Bin => {
            // main.rs is only a *crate* root when there is no lib.rs
            if root
                .join("crates")
                .join(&crate_id)
                .join("src/lib.rs")
                .is_file()
            {
                None
            } else {
                Some(RootKind::BinRoot)
            }
        }
        _ => None,
    };
    Some((crate_id, kind, root_kind))
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .expect("crates/lint has a workspace two levels up");
        let lib = classify(&root, "crates/sim/src/fast.rs");
        assert_eq!(lib, Some(("sim".into(), FileKind::Lib, None)));
        let libroot = classify(&root, "crates/sim/src/lib.rs");
        assert_eq!(
            libroot,
            Some(("sim".into(), FileKind::Lib, Some(RootKind::LibRoot)))
        );
        let cli = classify(&root, "crates/cli/src/args.rs");
        assert_eq!(cli, Some(("cli".into(), FileKind::Bin, None)));
        let cli_main = classify(&root, "crates/cli/src/main.rs");
        assert_eq!(
            cli_main,
            Some(("cli".into(), FileKind::Bin, Some(RootKind::BinRoot)))
        );
        let bench_bin = classify(&root, "crates/bench/src/bin/perf_report.rs");
        assert_eq!(bench_bin, Some(("bench".into(), FileKind::Bin, None)));
        let test = classify(&root, "crates/lint/tests/rules.rs");
        assert_eq!(test, Some(("lint".into(), FileKind::Test, None)));
        let ws_test = classify(&root, "tests/kernels.rs");
        assert_eq!(ws_test, Some(("integration".into(), FileKind::Test, None)));
        assert_eq!(classify(&root, "README.md"), None);
    }

    #[test]
    fn finds_workspace_root_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("lint.toml").is_file() || root.join("Cargo.toml").is_file());
    }
}
