//! The linter must pass on the workspace that ships it: every committed
//! violation is either fixed or carries a documented waiver. Also
//! exercises the installed binary end-to-end — exit codes and `--json` —
//! against both the real tree and a synthetic violating one.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    let cfg = dses_lint::driver::load_config(root).expect("lint.toml parses");
    let report =
        dses_lint::driver::lint_workspace(root, &cfg, false, false, false).expect("workspace walk");
    let errors: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(errors.is_empty(), "workspace has unwaived findings:\n{}", errors.join("\n"));
    assert!(report.files_scanned > 100, "suspiciously few files scanned: {}", report.files_scanned);
    // the documented waivers (the queueing memo among them) are honoured
    let waived = report.findings.iter().filter(|f| f.waived).count();
    assert!(waived >= 40, "expected the committed waiver surface, got {waived}");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.waived && f.file == "crates/queueing/src/cutoff.rs" && f.rule == "determinism"),
        "the cutoff memo waiver should be visible in the report"
    );
}

/// The shipped workspace must also be clean under the semantic tier:
/// every transitive-alloc / layering / state-needs finding is either
/// fixed or carries a documented waiver.
#[test]
fn workspace_lints_clean_under_semantic_tier() {
    let root = workspace_root();
    let cfg = dses_lint::driver::load_config(root).expect("lint.toml parses");
    let report =
        dses_lint::driver::lint_workspace(root, &cfg, true, false, false).expect("workspace walk");
    let errors: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has unwaived semantic findings:\n{}",
        errors.join("\n")
    );
}

/// The shipped workspace must be clean under all three tiers at once —
/// the exact configuration `ci.sh` gates on. Every divide-budget,
/// loop-alloc, grow-once, and demand-monomorphism finding on the real
/// tree is fixed or carries a documented waiver.
#[test]
fn workspace_lints_clean_under_all_three_tiers() {
    let root = workspace_root();
    let cfg = dses_lint::driver::load_config(root).expect("lint.toml parses");
    let report =
        dses_lint::driver::lint_workspace(root, &cfg, true, true, false).expect("workspace walk");
    let errors: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has unwaived dataflow findings:\n{}",
        errors.join("\n")
    );
    // the divide-budget annotations on the sim kernels are live: the
    // dataflow tier actually visited them (waived or not, they appear)
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule != "divide-budget" || f.waived),
        "divide budgets must hold without unwaived findings"
    );
}

/// The configuration `ci.sh` actually gates on: all four tiers at
/// once. Every mirror group declared on the real kernels — the Lindley
/// updates, the work-left variants, the moments pushes, the record
/// paths, the block-Welford ulp group — compares clean, and the run
/// reports zero unused waivers across every tier.
#[test]
fn workspace_lints_clean_under_all_four_tiers() {
    let root = workspace_root();
    let cfg = dses_lint::driver::load_config(root).expect("lint.toml parses");
    let report =
        dses_lint::driver::lint_workspace(root, &cfg, true, true, true).expect("workspace walk");
    let errors: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has unwaived findings under the four-tier run:\n{}",
        errors.join("\n")
    );
    // satellite of the mirror tier: the cross-tier waiver accounting
    // holds — no waiver in the tree suppresses nothing
    let stale: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule == "unused-waiver")
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
        .collect();
    assert!(stale.is_empty(), "dead waivers in the tree:\n{}", stale.join("\n"));
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn dses-lint");
    assert!(
        out.status.success(),
        "dses-lint --workspace failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s)"), "{text}");
}

/// Build a minimal violating workspace under `target/tmp` and assert the
/// binary gates it: nonzero exit, findings visible in `--json`.
#[test]
fn binary_exits_nonzero_on_violations() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-badcase");
    let src_dir = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(dir.join("crates/sim/Cargo.toml"), "[package]\nname = \"sim\"\n")
        .expect("write");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\npub fn f(x: f64) -> bool { x == 0.5 }\n",
    )
    .expect("write");

    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .args(["--workspace", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("spawn dses-lint");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\": \"determinism\""), "{json}");
    assert!(json.contains("\"rule\": \"float-totality\""), "{json}");
    assert!(json.contains("\"rule\": \"header-conformance\""), "{json}");
    assert!(json.contains("\"clean\": false"), "{json}");
}

#[test]
fn binary_rejects_unknown_flags_with_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .arg("--frobnicate")
        .output()
        .expect("spawn dses-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_the_catalogue() {
    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn dses-lint");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in dses_lint::rules::RULE_IDS {
        assert!(text.contains(rule), "missing {rule} in {text}");
    }
}
