//! End-to-end fixtures for the semantic tier: two miniature workspaces
//! under `tests/fixtures/semantic/`. The `bad` one seeds exactly one
//! violation per semantic rule — a 3-hop transitive allocation, a
//! nondeterminism source two calls deep in an out-of-scope crate, an
//! upward dependency (manifest *and* `use`-path evidence), an
//! under-declared and an over-declared `StateNeeds` impl, and a waiver
//! stranded in dead code. The `good` one exercises the same surface
//! with every declaration consistent, and must come back clean.

use std::path::PathBuf;

use dses_lint::{Report, Severity};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/semantic")
        .join(which)
}

fn lint(which: &str) -> Report {
    let root = fixture_root(which);
    let cfg = dses_lint::driver::load_config(&root).expect("fixture lint.toml parses");
    dses_lint::driver::lint_workspace(&root, &cfg, true, false, false).expect("fixture workspace walk")
}

/// One unwaived finding for `rule` whose message contains `needle`.
fn find<'r>(
    report: &'r Report,
    rule: &str,
    needle: &str,
) -> Option<&'r dses_lint::Finding> {
    report
        .findings
        .iter()
        .find(|f| !f.waived && f.rule == rule && f.message.contains(needle))
}

#[test]
fn bad_workspace_transitive_alloc_names_the_full_chain() {
    let report = lint("bad");
    let f = find(&report, "no-alloc-transitive", "Vec::with_capacity")
        .expect("the 3-hop allocation chain is detected");
    assert_eq!(f.severity, Severity::Deny);
    assert!(
        f.message.contains("kernel → hop_one → hop_two → hop_three"),
        "chain should name every hop: {}",
        f.message
    );
    // flagged at the root deny(alloc) fn, where the reviewer can act
    assert_eq!(f.file, "crates/sim/src/lib.rs");
}

#[test]
fn bad_workspace_transitive_determinism_crosses_the_crate_boundary() {
    let report = lint("bad");
    let f = find(&report, "determinism-transitive", "HashMap")
        .expect("the two-calls-deep HashMap in the out-of-scope crate is detected");
    assert_eq!(f.severity, Severity::Deny);
    // seeded in util (out of determinism scope), flagged in sim (in scope)
    assert_eq!(f.file, "crates/sim/src/lib.rs");
    assert!(
        f.message.contains("crates/util/src/lib.rs"),
        "message should point at the seed: {}",
        f.message
    );
}

#[test]
fn bad_workspace_layering_flags_both_evidence_kinds() {
    let report = lint("bad");
    // Cargo.toml evidence: dist declares a path dependency on sim
    let cargo = find(&report, "layering", "may not depend on `sim`")
        .expect("manifest evidence is detected");
    assert_eq!(cargo.file, "crates/dist/Cargo.toml");
    assert_eq!(cargo.severity, Severity::Deny);
    // use-path evidence: dist/src/lib.rs imports dses_sim
    let path = find(&report, "layering", "references `dses_sim`")
        .expect("use-path evidence is detected");
    assert_eq!(path.file, "crates/dist/src/lib.rs");
    assert_eq!(path.severity, Severity::Deny);
}

#[test]
fn bad_workspace_state_needs_under_and_over_declaration() {
    let report = lint("bad");
    let under = find(&report, "state-needs", "Shortest declares StateNeeds::NOTHING")
        .expect("under-declaration is detected");
    assert_eq!(under.severity, Severity::Deny, "under-declaration is a correctness bug");
    assert!(
        under.message.contains(".queue_len") && under.message.contains("shortest_of"),
        "message should show the read and the path to it: {}",
        under.message
    );
    let over = find(&report, "state-needs", "RoundRobin declares StateNeeds::ALL")
        .expect("over-declaration is detected");
    assert_eq!(over.severity, Severity::Warn, "over-declaration only wastes work");
    assert!(over.message.contains("never consults"), "{}", over.message);
}

#[test]
fn bad_workspace_stranded_waiver_is_reported() {
    let report = lint("bad");
    let f = find(&report, "unused-waiver", "unreachable from every")
        .expect("the waiver in dead code is detected");
    assert_eq!(f.severity, Severity::Warn);
    assert!(f.message.contains("orphan"), "{}", f.message);
}

#[test]
fn good_workspace_is_clean_under_the_semantic_tier() {
    let report = lint("good");
    let noise: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.waived)
        .filter(|f| {
            dses_lint::rules::SEMANTIC_RULES.contains(&f.rule) || f.rule == "unused-waiver"
        })
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        noise.is_empty(),
        "good fixture should be semantically clean:\n{}",
        noise.join("\n")
    );
    // the reachable panic-hygiene waiver is honoured, not flagged
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.waived && f.rule == "panic-hygiene" && f.file == "crates/sim/src/lib.rs"),
        "the reachable waiver should be visible and honoured"
    );
}
