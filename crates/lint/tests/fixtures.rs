//! Fixture tests: every rule has one violating fixture (each planted
//! construct is flagged) and one clean fixture (nothing unwaived).
//!
//! The fixtures live under `tests/fixtures/<rule>/{bad,good}.rs`; the
//! driver skips any `fixtures` path component, so the self-check on the
//! real workspace never sees them. Here they are fed straight to
//! [`check_file`] with an explicitly constructed [`FileInput`], which is
//! also what pins the classification each rule is tested under.

use dses_lint::{check_file, Config, FileInput, FileKind, RootKind};

/// Lint a fixture as library code of the `sim` crate (result-affecting,
/// so every content rule is armed).
fn lint_lib(src: &str, root: Option<RootKind>) -> Vec<dses_lint::Finding> {
    let cfg = Config::default_workspace();
    let input = FileInput {
        path: "crates/sim/src/fixture.rs",
        crate_id: "sim",
        kind: FileKind::Lib,
        root,
        src,
    };
    check_file(&input, &cfg)
}

/// Unwaived deny findings for `rule`, as (line, message) pairs.
fn unwaived(findings: &[dses_lint::Finding], rule: &str) -> Vec<(u32, String)> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.waived && f.severity == dses_lint::Severity::Deny)
        .map(|f| (f.line, f.message.clone()))
        .collect()
}

#[test]
fn determinism_bad_flags_every_construct() {
    let findings = lint_lib(include_str!("fixtures/determinism/bad.rs"), None);
    let hits = unwaived(&findings, "determinism");
    // 2 use lines + HashSet::new + HashMap type + HashMap::new +
    // Instant import + Instant::now + std::env
    assert!(hits.len() >= 7, "expected >= 7 determinism hits: {hits:?}");
    let all = format!("{hits:?}");
    for needle in ["HashMap", "HashSet", "Instant", "std::env"] {
        assert!(all.contains(needle), "missing {needle} in {all}");
    }
}

#[test]
fn determinism_good_is_clean_and_waivers_are_honoured() {
    let findings = lint_lib(include_str!("fixtures/determinism/good.rs"), None);
    assert!(unwaived(&findings, "determinism").is_empty(), "{findings:?}");
    assert!(unwaived(&findings, "waiver-syntax").is_empty(), "{findings:?}");
    // the waived HashMap sites are still reported, marked waived
    let waived = findings.iter().filter(|f| f.waived).count();
    assert!(waived >= 2, "expected the memo waivers to be recorded: {findings:?}");
}

#[test]
fn no_alloc_bad_flags_every_allocation() {
    let findings = lint_lib(include_str!("fixtures/no_alloc/bad.rs"), None);
    let hits = unwaived(&findings, "no-alloc");
    // Vec::new, to_vec, collect, Box::new, format!, String::from,
    // with_capacity — one finding per allocating line
    let lines: Vec<u32> = hits.iter().map(|(line, _)| *line).collect();
    assert_eq!(lines, vec![6, 8, 9, 10, 11, 12, 13], "{hits:?}");
    let all = format!("{hits:?}");
    for needle in ["to_vec", "collect", "format", "with_capacity"] {
        assert!(all.contains(needle), "missing {needle} in {all}");
    }
    // `cold_setup` (line 20) is not opted in: its `to_vec` is not flagged
}

#[test]
fn no_alloc_good_is_clean() {
    let findings = lint_lib(include_str!("fixtures/no_alloc/good.rs"), None);
    assert!(unwaived(&findings, "no-alloc").is_empty(), "{findings:?}");
}

#[test]
fn panic_hygiene_bad_flags_every_site() {
    let findings = lint_lib(include_str!("fixtures/panic_hygiene/bad.rs"), None);
    let hits = unwaived(&findings, "panic-hygiene");
    assert_eq!(hits.len(), 5, "unwrap/expect/panic!/todo!/unimplemented!: {hits:?}");
}

#[test]
fn panic_hygiene_good_is_clean() {
    let findings = lint_lib(include_str!("fixtures/panic_hygiene/good.rs"), None);
    assert!(unwaived(&findings, "panic-hygiene").is_empty(), "{findings:?}");
    // assert!/unreachable! are the blessed forms — no findings at all
    // beyond the one honoured waiver
    assert_eq!(findings.iter().filter(|f| f.waived).count(), 1, "{findings:?}");
}

#[test]
fn float_totality_bad_flags_partial_cmp_and_bare_eq() {
    let findings = lint_lib(include_str!("fixtures/float_totality/bad.rs"), None);
    let hits = unwaived(&findings, "float-totality");
    // partial_cmp().unwrap(), partial_cmp().expect(), == 1.0, != 0.0
    assert_eq!(hits.len(), 4, "{hits:?}");
}

#[test]
fn float_totality_good_is_clean() {
    let findings = lint_lib(include_str!("fixtures/float_totality/good.rs"), None);
    assert!(unwaived(&findings, "float-totality").is_empty(), "{findings:?}");
}

#[test]
fn float_totality_is_off_in_blessed_files() {
    let cfg = Config::default_workspace();
    let input = FileInput {
        path: "crates/sim/src/fast.rs", // blessed in lint.toml
        crate_id: "sim",
        kind: FileKind::Lib,
        root: None,
        src: include_str!("fixtures/float_totality/bad.rs"),
    };
    let findings = check_file(&input, &cfg);
    assert!(unwaived(&findings, "float-totality").is_empty(), "{findings:?}");
}

#[test]
fn header_bad_flags_missing_preamble() {
    let findings = lint_lib(
        include_str!("fixtures/header_conformance/bad.rs"),
        Some(RootKind::LibRoot),
    );
    let hits = unwaived(&findings, "header-conformance");
    assert!(!hits.is_empty(), "{findings:?}");
    assert!(format!("{hits:?}").contains("forbid(unsafe_code)"), "{hits:?}");
}

#[test]
fn header_good_is_clean() {
    let findings = lint_lib(
        include_str!("fixtures/header_conformance/good.rs"),
        Some(RootKind::LibRoot),
    );
    assert!(unwaived(&findings, "header-conformance").is_empty(), "{findings:?}");
}

#[test]
fn header_rule_ignores_non_roots() {
    let findings = lint_lib(include_str!("fixtures/header_conformance/bad.rs"), None);
    assert!(unwaived(&findings, "header-conformance").is_empty(), "{findings:?}");
}

#[test]
fn test_code_is_exempt_from_content_rules() {
    let cfg = Config::default_workspace();
    for fixture in [
        include_str!("fixtures/determinism/bad.rs"),
        include_str!("fixtures/panic_hygiene/bad.rs"),
        include_str!("fixtures/float_totality/bad.rs"),
    ] {
        let input = FileInput {
            path: "tests/fixture.rs",
            crate_id: "integration",
            kind: FileKind::Test,
            root: None,
            src: fixture,
        };
        let findings = check_file(&input, &cfg);
        assert!(
            findings.iter().all(|f| f.waived || f.severity == dses_lint::Severity::Warn),
            "test code should only get waiver hygiene: {findings:?}"
        );
    }
}

#[test]
fn non_result_affecting_crates_skip_determinism() {
    let cfg = Config::default_workspace();
    let input = FileInput {
        path: "crates/bench/src/fixture.rs",
        crate_id: "bench", // not in the determinism crate list
        kind: FileKind::Lib,
        root: None,
        src: include_str!("fixtures/determinism/bad.rs"),
    };
    let findings = check_file(&input, &cfg);
    assert!(unwaived(&findings, "determinism").is_empty(), "{findings:?}");
}
