//! End-to-end fixtures for the dataflow tier: two miniature workspaces
//! under `tests/fixtures/dataflow/`. The `bad` one seeds exactly one
//! violation per dataflow rule — a per-iteration divide under a
//! `divides(0)` annotation, a `Vec` built per job on a record path, a
//! workspace resize reachable from a dispatch root outside the reset
//! boundary, and a `Demand` bitset read inside a const-generic body.
//! The `good` one repairs each violation the idiomatic way (hoisted
//! reciprocal, caller-owned buffer, reset-confined growth, tier decided
//! before monomorphization) and must come back clean.

use std::path::PathBuf;
use std::process::Command;

use dses_lint::{Report, Severity};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/dataflow")
        .join(which)
}

fn lint(which: &str) -> Report {
    let root = fixture_root(which);
    let cfg = dses_lint::driver::load_config(&root).expect("fixture lint.toml parses");
    dses_lint::driver::lint_workspace(&root, &cfg, false, true, false).expect("fixture workspace walk")
}

/// One unwaived finding for `rule` whose message contains `needle`.
fn find<'r>(
    report: &'r Report,
    rule: &str,
    needle: &str,
) -> Option<&'r dses_lint::Finding> {
    report
        .findings
        .iter()
        .find(|f| !f.waived && f.rule == rule && f.message.contains(needle))
}

#[test]
fn bad_workspace_divide_in_marched_loop_breaks_the_declared_budget() {
    let report = lint("bad");
    let f = find(&report, "divide-budget", "march")
        .expect("the per-iteration divide under divides(0) is detected");
    assert_eq!(f.severity, Severity::Deny);
    assert!(
        f.message.contains("declares divides(0)"),
        "the finding should quote the annotation: {}",
        f.message
    );
    assert!(
        f.message.contains("s / speed"),
        "the finding should show the offending divide: {}",
        f.message
    );
    // the honest dispatch kernel (one declared, one performed) is clean
    assert!(
        find(&report, "divide-budget", "dispatch").is_none(),
        "a divide within budget must not be flagged"
    );
}

#[test]
fn bad_workspace_per_job_vec_on_the_record_path_is_flagged() {
    let report = lint("bad");
    let f = find(&report, "loop-alloc", "Vec::new")
        .expect("the per-job Vec on the record path is detected");
    assert_eq!(f.severity, Severity::Deny);
    assert!(
        f.message.contains("record_all"),
        "the finding should name the function: {}",
        f.message
    );
}

#[test]
fn bad_workspace_mid_run_workspace_growth_is_flagged_with_its_path() {
    let report = lint("bad");
    let f = find(&report, "grow-once", "resize")
        .expect("the mid-run workspace resize is detected");
    assert_eq!(f.severity, Severity::Deny);
    assert!(
        f.message.contains("dispatch") && f.message.contains("ensure"),
        "the finding should show the path from the dispatch root: {}",
        f.message
    );
}

#[test]
fn bad_workspace_demand_read_in_monomorphized_body_is_flagged() {
    let report = lint("bad");
    let f = find(&report, "demand-monomorphism", "record_tiered")
        .expect("the runtime Demand read in a const-generic body is detected");
    assert_eq!(f.severity, Severity::Deny);
}

#[test]
fn good_workspace_is_clean_under_the_dataflow_tier() {
    let report = lint("good");
    let noise: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.waived)
        .filter(|f| {
            dses_lint::rules::DATAFLOW_RULES.contains(&f.rule) || f.rule == "unused-waiver"
        })
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        noise.is_empty(),
        "good fixture should be clean under the dataflow tier:\n{}",
        noise.join("\n")
    );
}

/// The dataflow tier routes through the same report pipeline as every
/// other tier: the binary gates the bad fixture with exit 1, and
/// `--format github` renders each dataflow rule as a workflow
/// annotation with file/line coordinates.
#[test]
fn binary_gates_the_bad_fixture_and_renders_github_annotations() {
    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .args(["--workspace", "--dataflow", "--format", "github", "--root"])
        .arg(fixture_root("bad"))
        .output()
        .expect("spawn dses-lint");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in dses_lint::rules::DATAFLOW_RULES {
        assert!(
            text.contains(&format!("title=dses-lint {rule}")),
            "missing github annotation for {rule}:\n{text}"
        );
    }
    assert!(
        text.contains("::error file=crates/sim/src/lib.rs,line="),
        "annotations should carry file/line coordinates:\n{text}"
    );
}
