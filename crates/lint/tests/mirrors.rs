//! End-to-end fixtures for the mirror tier: two miniature workspaces
//! under `tests/fixtures/mirrors/`. The `bad` one plants one violation
//! per failure class — a reassociated Lindley `+`, a swapped
//! `min`/`max`, a hoisted reciprocal nobody declared, an `f32`
//! round-trip inside an annotated kernel, a stale hoist, and an
//! orphaned one-member group. The `good` one carries the real
//! workspace's pairing shapes (live divide vs hoisted service call,
//! live reciprocal vs declared hoist parameter, an ulp group, a
//! const-guarded specialization) and must come back clean.
//!
//! A mutation-style test then copies the *real* workspace aside,
//! reassociates one `+` in the marched-chain Lindley update, and
//! asserts the tier catches it — the property `ci.sh` gates on.

use std::path::{Path, PathBuf};
use std::process::Command;

use dses_lint::{Report, Severity};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/mirrors")
        .join(which)
}

fn lint(which: &str) -> Report {
    let root = fixture_root(which);
    let cfg = dses_lint::driver::load_config(&root).expect("fixture lint.toml parses");
    dses_lint::driver::lint_workspace(&root, &cfg, false, false, true)
        .expect("fixture workspace walk")
}

/// One unwaived finding for `rule` whose message contains `needle`.
fn find<'r>(report: &'r Report, rule: &str, needle: &str) -> Option<&'r dses_lint::Finding> {
    report
        .findings
        .iter()
        .find(|f| !f.waived && f.rule == rule && f.message.contains(needle))
}

#[test]
fn bad_workspace_reassociated_lindley_update_diverges_by_provenance() {
    let report = lint("bad");
    let f = find(&report, "mirror-divergence", "accept_marched")
        .expect("the swapped `+` operands are detected");
    assert_eq!(f.severity, Severity::Deny);
    assert!(
        f.message.contains("group `lindley`") && f.message.contains("reference `accept`"),
        "the finding should name the group and the reference member: {}",
        f.message
    );
    assert!(
        f.message.contains("provenance"),
        "a pure operand swap is a provenance divergence: {}",
        f.message
    );
    assert!(
        f.message.contains("crates/sim/src/lib.rs:"),
        "the reference span rides in the message: {}",
        f.message
    );
}

#[test]
fn bad_workspace_swapped_min_max_diverges_by_op_kind() {
    let report = lint("bad");
    let f = find(&report, "mirror-divergence", "clamp_lo_lanes")
        .expect("the min-for-max swap is detected");
    assert!(
        f.message.contains("`min` here but `max` in the reference"),
        "the finding should name both op kinds: {}",
        f.message
    );
}

#[test]
fn bad_workspace_undeclared_hoist_cannot_unify_with_the_live_reciprocal() {
    let report = lint("bad");
    let f = find(&report, "mirror-divergence", "push_with_inv")
        .expect("the undeclared reciprocal parameter is detected");
    assert!(
        f.message.contains("group `welford`"),
        "the finding should name the group: {}",
        f.message
    );
}

#[test]
fn bad_workspace_f32_roundtrip_is_a_hard_mixed_precision_error() {
    let report = lint("bad");
    let f = find(&report, "mirror-mixed-precision", "lossy")
        .expect("the f32 constant inside an annotated kernel is detected");
    assert_eq!(f.severity, Severity::Deny);
    assert!(
        f.message.contains("pure `f64`"),
        "the finding should state the contract: {}",
        f.message
    );
    // both twins are flagged — identical skeletons do not excuse f32
    assert!(
        find(&report, "mirror-mixed-precision", "lossy_twin").is_some(),
        "the shape-identical twin must be flagged too"
    );
    // and the group itself has no divergence: precision is a separate axis
    assert!(
        find(&report, "mirror-divergence", "lossy").is_none(),
        "identical skeletons must not also report divergence"
    );
}

#[test]
fn bad_workspace_unconsumed_hoist_is_stale() {
    let report = lint("bad");
    let f = find(&report, "mirror-stale-hoist", "inv_total")
        .expect("the hoist that matches no parameter or call is detected");
    assert!(
        f.message.contains("scaled_twin"),
        "the finding should name the annotated function: {}",
        f.message
    );
}

#[test]
fn bad_workspace_single_member_group_is_an_orphan() {
    let report = lint("bad");
    let f = find(&report, "mirror-orphan", "lonely")
        .expect("the one-member unguarded group is detected");
    assert!(
        f.message.contains("group `lonely`"),
        "the finding should name the group: {}",
        f.message
    );
}

#[test]
fn good_workspace_is_clean_under_the_mirror_tier() {
    let report = lint("good");
    let noise: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.waived)
        .filter(|f| dses_lint::rules::MIRROR_RULES.contains(&f.rule) || f.rule == "unused-waiver")
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        noise.is_empty(),
        "good fixture should be clean under the mirror tier:\n{}",
        noise.join("\n")
    );
}

/// The mirror tier routes through the same report pipeline as every
/// other tier: the binary gates the bad fixture with exit 1, and
/// `--format github` renders each mirror rule as a workflow annotation
/// with file/line coordinates.
#[test]
fn binary_gates_the_bad_fixture_and_renders_github_annotations() {
    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .args(["--workspace", "--mirrors", "--format", "github", "--root"])
        .arg(fixture_root("bad"))
        .output()
        .expect("spawn dses-lint");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in dses_lint::rules::MIRROR_RULES {
        assert!(
            text.contains(&format!("title=dses-lint {rule}")),
            "missing github annotation for {rule}:\n{text}"
        );
    }
    assert!(
        text.contains("::error file=crates/sim/src/lib.rs,line="),
        "annotations should carry file/line coordinates:\n{text}"
    );
}

/// `--json` findings carry tier provenance so downstream tooling can
/// split the report without re-deriving the rule→tier map.
#[test]
fn json_findings_carry_the_mirrors_tier_tag() {
    let out = Command::new(env!("CARGO_BIN_EXE_dses-lint"))
        .args(["--workspace", "--mirrors", "--json", "--root"])
        .arg(fixture_root("bad"))
        .output()
        .expect("spawn dses-lint");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"rule\": \"mirror-divergence\", \"tier\": \"mirrors\""),
        "{json}"
    );
}

/// Recursive copy skipping build products and inert fixture trees.
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for e in std::fs::read_dir(from).expect("read_dir") {
        let e = e.expect("dir entry");
        let name = e.file_name();
        if name == "target" || name == "fixtures" {
            continue;
        }
        let src = e.path();
        let dst = to.join(&name);
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy");
        }
    }
}

/// Mutation-style check of the property `ci.sh` gates on: copy the real
/// workspace aside, reassociate exactly one `+` in the marched-chain
/// Lindley update, and the mirror tier must flag the copy against the
/// event-engine reference.
#[test]
fn planted_reassociation_in_the_real_kernel_fails_the_mirror_tier() {
    let real = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("mirror-mutation");
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale copy");
    }
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::copy(real.join("lint.toml"), dir.join("lint.toml")).expect("copy lint.toml");
    copy_tree(&real.join("crates"), &dir.join("crates"));

    let fast = dir.join("crates/sim/src/fast.rs");
    let src = std::fs::read_to_string(&fast).expect("read fast.rs");
    let before = "let completion = start + speeds.service(ch.host, ch.sizes[i]);";
    let after = "let completion = speeds.service(ch.host, ch.sizes[i]) + start;";
    assert_eq!(src.matches(before).count(), 1, "mutation anchor moved — update this test");
    std::fs::write(&fast, src.replacen(before, after, 1)).expect("write mutation");

    let cfg = dses_lint::driver::load_config(&dir).expect("lint.toml parses");
    let report = dses_lint::driver::lint_workspace(&dir, &cfg, false, false, true)
        .expect("workspace walk");
    let hit = report.findings.iter().find(|f| {
        !f.waived && f.rule == "mirror-divergence" && f.message.contains("march_chains")
    });
    assert!(
        hit.is_some(),
        "the reassociated Lindley update must diverge from group `lindley`:\n{}",
        report.render_text(true)
    );
}
