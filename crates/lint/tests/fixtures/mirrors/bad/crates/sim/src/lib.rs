//! Bad mirror fixture: each mirror rule has at least one seeded
//! violation, in the shapes the real workspace pairs take.
//!
//! - `accept_marched` reassociates the Lindley `+` relative to
//!   `accept` — bitwise different, caught as operand provenance
//!   (mirror-divergence).
//! - `clamp_lo_lanes` swaps `max` for `min` — caught as an op-kind
//!   mismatch (mirror-divergence).
//! - `push_with_inv` takes the reciprocal as a parameter but declares
//!   no `hoist(inv_n)`, so its operand cannot unify with `push`'s
//!   live `1.0 / n` (mirror-divergence).
//! - `lossy` / `lossy_twin` round through `f32`
//!   (mirror-mixed-precision).
//! - `scaled_twin` declares `hoist(inv_total)` that nothing consumes
//!   (mirror-stale-hoist).
//! - `lonely` is a one-member group with no const-bool guards
//!   (mirror-orphan).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Lindley update — the reference member of `lindley`.
// dses-lint: mirrors(lindley)
pub fn accept(free: f64, now: f64, size: f64, speed: f64) -> f64 {
    let start = free.max(now);
    let work = size / speed;
    start + work
}

/// Reassociated copy: same ops, swapped `+` operands. IEEE addition
/// commutes in value but the skeleton tracks provenance per slot, so
/// the contract (same code, same bits, reviewable by diff) still fails.
// dses-lint: mirrors(lindley)
pub fn accept_marched(free: f64, now: f64, size: f64, speed: f64) -> f64 {
    let start = free.max(now);
    let work = size / speed;
    work + start
}

/// Winsorize from below — the reference member of `clamp`.
// dses-lint: mirrors(clamp)
pub fn clamp_lo(x: f64, lo: f64) -> f64 {
    x.max(lo)
}

/// "Vectorized" copy that swapped the intrinsic.
// dses-lint: mirrors(clamp)
pub fn clamp_lo_lanes(x: f64, lo: f64) -> f64 {
    x.min(lo)
}

/// Welford mean step with the live reciprocal — reference of `welford`.
// dses-lint: mirrors(welford)
pub fn push(mean: f64, x: f64, n: f64) -> f64 {
    mean + (x - mean) * (1.0 / n)
}

/// Hoisted-reciprocal twin that forgot to declare `hoist(inv_n)`: the
/// parameter read stays a plain leaf and cannot unify with the
/// reference's folded reciprocal.
// dses-lint: mirrors(welford)
pub fn push_with_inv(mean: f64, x: f64, inv_n: f64) -> f64 {
    mean + (x - mean) * inv_n
}

/// Accumulates through an `f32` constant — the precision break.
// dses-lint: mirrors(lossy)
pub fn lossy(a: f64, b: f64) -> f64 {
    let bump = 1.0f32 as f64;
    a + b * bump
}

/// Twin with the identical shape; the group diverges nowhere, but both
/// members are still hard mixed-precision errors.
// dses-lint: mirrors(lossy)
pub fn lossy_twin(a: f64, b: f64) -> f64 {
    let bump = 1.0f32 as f64;
    a + b * bump
}

/// Weighted value — the reference member of `scaled`.
// dses-lint: mirrors(scaled)
pub fn scaled(a: f64, w: f64) -> f64 {
    a * w
}

/// Declares a hoist for a parameter that no longer exists.
// dses-lint: mirrors(scaled)
// dses-lint: hoist(inv_total)
pub fn scaled_twin(a: f64, w: f64) -> f64 {
    a * w
}

/// Annotated but never paired, and not const-guarded either.
// dses-lint: mirrors(lonely)
pub fn lonely(a: f64, b: f64) -> f64 {
    a.max(b)
}
