//! Good mirror fixture: the real workspace's pairing shapes, clean.
//!
//! - `accept` / `march` pair a live Lindley divide with a hoisted
//!   service-table call (`hoist(service)`).
//! - `push` / `push_with_inv` pair a live `1.0 / n` reciprocal with a
//!   declared hoisted parameter (`hoist(inv_n)`).
//! - `mean_seq` / `mean_lanes` form an ulp group: same arithmetic
//!   multiset after divide→multiply canonicalization, different order.
//! - `record_core` is a const-guarded specialization: every demand
//!   combination computes a subsequence of the all-demands-on path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-host service-rate table.
pub struct Speeds {
    /// Relative speed per host.
    pub speed: Vec<f64>,
}

impl Speeds {
    /// Service time of a `size` job on `host`.
    #[must_use]
    pub fn service(&self, host: usize, size: f64) -> f64 {
        size / self.speed[host]
    }
}

/// Lindley update with the divide written out — reference of `lindley`.
// dses-lint: mirrors(lindley)
pub fn accept(free: f64, now: f64, size: f64, speed: f64) -> f64 {
    let start = free.max(now);
    let work = size / speed;
    start + work
}

/// Kernel copy that routes the divide through the service table; the
/// declared hoist substitutes the call with the divide it performs.
// dses-lint: mirrors(lindley)
// dses-lint: hoist(service)
pub fn march(free: f64, now: f64, size: f64, speeds: &Speeds) -> f64 {
    let start = free.max(now);
    let work = speeds.service(0, size);
    start + work
}

/// Welford mean step with the live reciprocal — reference of `welford`.
// dses-lint: mirrors(welford)
pub fn push(mean: f64, x: f64, n: f64) -> f64 {
    mean + (x - mean) * (1.0 / n)
}

/// The hoisted-reciprocal twin, with the hoist declared.
// dses-lint: mirrors(welford)
// dses-lint: hoist(inv_n)
pub fn push_with_inv(mean: f64, x: f64, inv_n: f64) -> f64 {
    mean + (x - mean) * inv_n
}

/// Sequential block mean — reference of the ulp group `block-mean`.
// dses-lint: mirrors(block-mean, ulp)
pub fn mean_seq(sum: f64, x: f64, n: f64) -> f64 {
    (sum + x) / n
}

/// Lane-reduced mean: reassociated and divide-free, ulp-close by the
/// block error argument, never claimed bit-identical.
// dses-lint: mirrors(block-mean, ulp)
pub fn mean_lanes(sum: f64, x: f64, n: f64) -> f64 {
    (x + sum) * (1.0 / n)
}

/// Demand-monomorphized record core: the EXTREMA tier adds the
/// compare-and-select, never reorders the shared arithmetic.
// dses-lint: mirrors(record-tiers)
pub fn record_core<const EXTREMA: bool>(mean: f64, x: f64, lo: f64) -> f64 {
    let d = x - mean;
    let m = mean + d;
    if EXTREMA {
        m.max(lo)
    } else {
        m
    }
}
