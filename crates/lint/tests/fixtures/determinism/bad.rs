//! Fixture: iteration-order-dependent containers and ambient inputs in
//! a result-affecting crate. Every construct below must be flagged.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen = HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let _t = Instant::now();
    let _home = std::env::var("HOME");
    seen.len()
}
