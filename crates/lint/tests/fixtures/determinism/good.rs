//! Fixture: the deterministic counterparts — ordered containers, no
//! clocks, no environment reads — plus one properly waived memo.

use std::collections::{BTreeMap, BTreeSet};

// dses-lint: allow(determinism) -- memo keyed by exact bit patterns, never iterated
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen = BTreeSet::new();
    for &x in xs {
        seen.insert(x);
    }
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let _memo: HashMap<u64, f64> = HashMap::new(); // dses-lint: allow(determinism) -- keyed lookups only
    seen.len()
}
