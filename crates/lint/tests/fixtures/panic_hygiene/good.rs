//! Fixture: panic hygiene done right — fallible APIs, documented
//! invariant waivers, and the assertion forms that are always allowed.

pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn head(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "head() requires a non-empty slice");
    // dses-lint: allow(panic-hygiene) -- asserted non-empty on the line above
    *xs.first().unwrap()
}

pub fn classify(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!("callers pass 0 only, validated at the boundary"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Result<u8, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
    }
}
