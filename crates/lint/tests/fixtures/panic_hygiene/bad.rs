//! Fixture: unwaived panics in library code.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller passes digits")
}

pub fn todo_branch(x: u8) -> u8 {
    match x {
        0 => 1,
        1 => panic!("one is not supported"),
        2 => todo!(),
        _ => unimplemented!(),
    }
}
