//! Good fixture: clean under every semantic rule.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// What host state a policy needs.
pub struct StateNeeds;

impl StateNeeds {
    /// Queue lengths only.
    pub const QUEUE_LEN: u8 = 2;
}

/// One host's view.
pub struct HostView {
    /// Jobs queued.
    pub queue_len: usize,
}

/// Full system view handed to a policy.
pub struct SystemState<'a> {
    /// All hosts.
    pub hosts: &'a [HostView],
}

/// A task-assignment policy.
pub trait Dispatcher {
    /// Declared state needs.
    fn state_needs(&self) -> u8;
    /// Pick a host for the next job.
    fn dispatch(&mut self, s: &SystemState) -> usize;
}

/// Declares exactly the state it reads.
pub struct Shortest;

impl Dispatcher for Shortest {
    fn state_needs(&self) -> u8 {
        StateNeeds::QUEUE_LEN
    }
    fn dispatch(&mut self, s: &SystemState) -> usize {
        shortest_of(s)
    }
}

/// Index of the shortest queue.
fn shortest_of(s: &SystemState) -> usize {
    let mut best = 0;
    for (i, h) in s.hosts.iter().enumerate() {
        if h.queue_len < s.hosts[best].queue_len {
            best = i;
        }
    }
    best
}

/// Hot kernel: allocation-free through every hop, including the one
/// into the crate below.
// dses-lint: deny(alloc)
pub fn kernel(n: usize) -> usize {
    dses_dist::scale(hop(n))
}

fn hop(n: usize) -> usize {
    n.saturating_add(1)
}

/// Head-of-queue accessor used by the test below, so its waiver sits
/// on a reachable function.
pub fn first_queue(s: &SystemState) -> usize {
    // dses-lint: allow(panic-hygiene) -- fixture: length asserted by every caller
    s.hosts.first().map(|h| h.queue_len).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn first_queue_reads_the_head() {
        let hosts = [super::HostView { queue_len: 3 }];
        let s = super::SystemState { hosts: &hosts };
        assert_eq!(super::first_queue(&s), 3);
        assert_eq!(super::kernel(1), 6);
    }
}
