//! Bottom utility crate: deterministic and allocation-free.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic, allocation-free scaling.
pub fn scale(n: usize) -> usize {
    n.saturating_mul(3)
}
