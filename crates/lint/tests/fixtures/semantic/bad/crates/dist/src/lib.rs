//! Bottom crate reaching upward — a layering violation both in the
//! manifest and in path evidence.
#![forbid(unsafe_code)]

use dses_sim::StateNeeds;

/// Forwards a constant from the crate above — the upward reference.
pub fn needs_nothing() -> u8 {
    StateNeeds::NOTHING
}
