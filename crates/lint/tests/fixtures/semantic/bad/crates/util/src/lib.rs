//! Out-of-determinism-scope helper crate holding a nondeterminism
//! source two calls below its public surface.
#![forbid(unsafe_code)]

/// Keyed lookup through an iteration-order-dependent table.
pub fn lookup(n: u64) -> u64 {
    table(n)
}

fn table(n: u64) -> u64 {
    let mut m = std::collections::HashMap::new();
    m.insert(n, n);
    m.len() as u64
}
