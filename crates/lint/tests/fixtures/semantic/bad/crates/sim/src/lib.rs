//! Bad fixture: each semantic rule has one seeded violation here or in
//! a sibling crate of this workspace.
#![forbid(unsafe_code)]

/// What host state a policy needs.
pub struct StateNeeds;

impl StateNeeds {
    /// No state consulted.
    pub const NOTHING: u8 = 0;
    /// Queue lengths.
    pub const QUEUE_LEN: u8 = 2;
    /// Queue lengths and work left.
    pub const ALL: u8 = 3;
}

/// One host's view.
pub struct HostView {
    /// Jobs queued.
    pub queue_len: usize,
}

/// Full system view handed to a policy.
pub struct SystemState<'a> {
    /// All hosts.
    pub hosts: &'a [HostView],
}

/// A task-assignment policy.
pub trait Dispatcher {
    /// Declared state needs.
    fn state_needs(&self) -> u8;
    /// Pick a host for the next job.
    fn dispatch(&mut self, s: &SystemState) -> usize;
}

/// Declares NOTHING but reads queue lengths through a helper.
pub struct Shortest;

impl Dispatcher for Shortest {
    fn state_needs(&self) -> u8 {
        StateNeeds::NOTHING
    }
    fn dispatch(&mut self, s: &SystemState) -> usize {
        shortest_of(s)
    }
}

/// Index of the shortest queue — the read `Shortest` fails to declare.
fn shortest_of(s: &SystemState) -> usize {
    let mut best = 0;
    for (i, h) in s.hosts.iter().enumerate() {
        if h.queue_len < s.hosts[best].queue_len {
            best = i;
        }
    }
    best
}

/// Declares ALL but never looks at the state.
pub struct RoundRobin {
    /// Next host index.
    pub next: usize,
}

impl Dispatcher for RoundRobin {
    fn state_needs(&self) -> u8 {
        StateNeeds::ALL
    }
    fn dispatch(&mut self, s: &SystemState) -> usize {
        self.next = (self.next + 1) % s.hosts.len();
        self.next
    }
}

/// Hot kernel: must not allocate, even transitively.
// dses-lint: deny(alloc)
pub fn kernel(n: usize) -> usize {
    hop_one(n)
}

fn hop_one(n: usize) -> usize {
    hop_two(n)
}

fn hop_two(n: usize) -> usize {
    hop_three(n)
}

fn hop_three(n: usize) -> usize {
    let v: Vec<u8> = Vec::with_capacity(n);
    v.capacity() + n
}

/// Caches through an out-of-scope helper — transitively nondeterministic.
pub fn cached(n: u64) -> u64 {
    dses_util::lookup(n)
}

fn orphan(x: Option<u32>) -> u32 {
    // dses-lint: allow(panic-hygiene) -- fixture: waiver stranded in dead code
    x.unwrap()
}
