//! Fixture: an opted-in function that only writes through caller-owned
//! buffers — the shape of the workspace's `*_into` sweep kernels.

// dses-lint: deny(alloc)
pub fn hot_loop_into(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for &x in xs {
        // push into reserved capacity is fine; only fresh allocation
        // constructs are flagged
        out.push(x * x);
    }
}

pub fn cold_setup(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
