//! Fixture: a function opted into the allocation rule that allocates
//! through every construct the rule knows about.

// dses-lint: deny(alloc)
pub fn hot_loop(xs: &[f64]) -> f64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(xs);
    let copied = xs.to_vec();
    let squares: Vec<f64> = xs.iter().map(|x| x * x).collect();
    let boxed = Box::new(copied);
    let label = format!("{} elements", boxed.len());
    let owned = String::from("tmp");
    let mut sized = Vec::with_capacity(xs.len());
    sized.push(owned.len() as f64 + label.len() as f64);
    squares.iter().sum::<f64>() + sized[0]
}

pub fn cold_setup(xs: &[f64]) -> Vec<f64> {
    // not opted in: allocation here is fine
    xs.to_vec()
}
