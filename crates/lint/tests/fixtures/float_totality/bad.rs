//! Fixture: NaN-unsound float comparisons outside the blessed helpers.

pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
}

pub fn sorted(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs here"));
}

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

pub fn is_nonzero(x: f64) -> bool {
    x != 0.0
}
