//! Fixture: total-order float handling — `total_cmp`, range guards, and
//! one waived exact-boundary check.

pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::total_cmp)
}

pub fn sorted(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

pub fn is_unit(x: f64) -> bool {
    (x - 1.0).abs() < 1e-12
}

pub fn is_degenerate(p: f64) -> bool {
    // dses-lint: allow(float-totality) -- intentional exact-underflow guard
    p == 0.0
}

pub fn int_compare(a: u64, b: u64) -> bool {
    a == b // integer equality is not a float comparison
}
