//! Fixture: the full workspace preamble on a crate root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A documented export.
pub fn exported() -> u8 {
    7
}
