//! Fixture: a crate root missing the workspace preamble — no
//! `#![forbid(unsafe_code)]`, no `#![warn(missing_docs)]`.

pub fn exported() -> u8 {
    7
}
