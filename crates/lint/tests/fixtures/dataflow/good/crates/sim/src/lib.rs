//! Good dataflow fixture: the same surface as `bad`, clean under every
//! dataflow rule.
//!
//! - `march` hoists the speed reciprocal above the loop, so its
//!   `divides(0)` annotation is honest (the cold divide costs nothing).
//! - `record_all_into` reuses a caller-provided buffer: no allocation
//!   in the loop.
//! - Workspace growth happens only in `SimWorkspace::reset`, behind the
//!   setup boundary.
//! - `record_tiered` is monomorphized over a decision made *before*
//!   instantiation; the runtime body never consults the bitset.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The demand bitset (fixture copy of the real thing).
pub struct Demand(pub u32);

impl Demand {
    /// Bit test.
    #[must_use]
    pub fn contains(&self, bit: u32) -> bool {
        self.0 & bit != 0
    }
}

/// Resolve the tier once, outside the monomorphized kernels — the
/// legal place to read the bitset.
#[must_use]
pub fn plan_tail(demand: &Demand) -> bool {
    demand.contains(1)
}

/// Reusable per-run buffers.
pub struct SimWorkspace {
    /// Per-host completion clocks.
    pub free_at: Vec<f64>,
}

impl SimWorkspace {
    /// Shape the workspace for `hosts` hosts, keeping capacity — the
    /// only place the clock buffer may grow.
    pub fn reset(&mut self, hosts: usize) {
        self.free_at.clear();
        self.free_at.resize(hosts, 0.0);
    }
}

/// Marched-chain kernel with the reciprocal hoisted above the loop:
/// the annotation is honest because the divide is loop-weighted cold.
// dses-lint: divides(0)
pub fn march(sizes: &[f64], speed: f64, out: &mut [f64]) {
    let inv = 1.0 / speed;
    let mut clock = 0.0;
    for (s, o) in sizes.iter().zip(out) {
        clock += s * inv;
        *o = clock;
    }
}

/// Record path writing into a caller-owned buffer — nothing allocates
/// per job.
pub fn record_all_into(sizes: &[f64], out: &mut [f64]) {
    for (s, o) in sizes.iter().zip(out) {
        *o = *s;
    }
}

/// Assignment loop over the workspace: reset shapes the buffers at the
/// door (setup boundary), then one honest service divide per job.
// dses-lint: divides(1)
pub fn dispatch(ws: &mut SimWorkspace, sizes: &[f64], speed: f64) -> f64 {
    ws.reset(2);
    let mut last = 0.0;
    for &s in sizes {
        let h = pick(&ws.free_at);
        ws.free_at[h] += s / speed;
        last = ws.free_at[h];
    }
    last
}

/// Index of the earliest-free host (total order, no NaN surprises).
fn pick(free_at: &[f64]) -> usize {
    let mut best = 0;
    for (i, f) in free_at.iter().enumerate() {
        if f.total_cmp(&free_at[best]).is_lt() {
            best = i;
        }
    }
    best
}

/// Monomorphized record path: the tier was decided by
/// [`plan_tail`] before instantiation, so the body is branch-free on
/// demand state.
pub fn record_tiered<const TAIL: bool>(s: f64, acc: &mut f64) {
    *acc += s;
    if TAIL {
        *acc += s * s;
    }
}
