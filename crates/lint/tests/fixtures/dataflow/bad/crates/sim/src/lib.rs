//! Bad dataflow fixture: each dataflow rule has one seeded violation.
//!
//! - `march` declares `divides(0)` but divides per iteration of the
//!   marched-chain loop (divide-budget).
//! - `record_all` constructs a `Vec` per job on the record path
//!   (loop-alloc).
//! - `dispatch` reaches `SimWorkspace::ensure`, which resizes a
//!   workspace buffer outside the reset path (grow-once).
//! - `record_tiered` is monomorphized over the demand tier yet re-reads
//!   the `Demand` bitset at runtime (demand-monomorphism).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The demand bitset (fixture copy of the real thing).
pub struct Demand(pub u32);

impl Demand {
    /// Bit test.
    #[must_use]
    pub fn contains(&self, bit: u32) -> bool {
        self.0 & bit != 0
    }
}

/// Reusable per-run buffers.
pub struct SimWorkspace {
    /// Per-host completion clocks.
    pub free_at: Vec<f64>,
}

impl SimWorkspace {
    /// Shape the workspace for `hosts` hosts, keeping capacity.
    pub fn reset(&mut self, hosts: usize) {
        self.free_at.clear();
        self.free_at.resize(hosts, 0.0);
    }

    /// Grows the clock buffer mid-run — the grow-once violation.
    fn ensure(&mut self, hosts: usize) {
        if self.free_at.len() < hosts {
            self.free_at.resize(hosts, 0.0);
        }
    }
}

/// Marched-chain kernel that declares itself division-free but pays a
/// divide per job — the divide-budget violation.
// dses-lint: divides(0)
pub fn march(sizes: &[f64], speed: f64, out: &mut [f64]) {
    let mut clock = 0.0;
    for (s, o) in sizes.iter().zip(out) {
        clock += s / speed;
        *o = clock;
    }
}

/// Record path that allocates one row per job — the loop-alloc
/// violation.
#[must_use]
pub fn record_all(sizes: &[f64]) -> Vec<Vec<f64>> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let mut row = Vec::new();
        row.push(s);
        rows.push(row);
    }
    rows
}

/// Assignment loop over the workspace: one honest service divide per
/// job, but it grows the workspace through [`SimWorkspace::ensure`] on
/// the way in.
// dses-lint: divides(1)
pub fn dispatch(ws: &mut SimWorkspace, sizes: &[f64], speed: f64) -> f64 {
    ws.ensure(2);
    let mut last = 0.0;
    for &s in sizes {
        let h = pick(&ws.free_at);
        ws.free_at[h] += s / speed;
        last = ws.free_at[h];
    }
    last
}

/// Index of the earliest-free host (total order, no NaN surprises).
fn pick(free_at: &[f64]) -> usize {
    let mut best = 0;
    for (i, f) in free_at.iter().enumerate() {
        if f.total_cmp(&free_at[best]).is_lt() {
            best = i;
        }
    }
    best
}

/// Monomorphized record path that re-reads the bitset the const
/// parameter was supposed to compile away — the demand-monomorphism
/// violation.
pub fn record_tiered<const TAIL: bool>(demand: &Demand, s: f64, acc: &mut f64) {
    if demand.contains(1) {
        *acc += s;
    }
    if TAIL {
        *acc += s * s;
    }
}
