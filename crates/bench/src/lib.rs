//! Shared plumbing for the paper-exhibit regenerators and micro-benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of
//! Schroeder & Harchol-Balter (HPDC 2000); this library holds the common
//! workload setup, load grids, rendering helpers, and a dependency-free
//! timing harness ([`harness`]) so every exhibit reports the same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_workload::WorkloadPreset;

/// Parse `--threads <n>` (or `--threads=<n>`) from this process's
/// command line: worker threads for an exhibit's simulation fan-out.
/// `0` — the default when the flag is absent — means one worker per
/// available core. Exhibits are bit-for-bit identical for every value;
/// the flag only changes wall-clock time.
#[must_use]
pub fn threads_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if let Some(v) = a.strip_prefix("--threads=") {
            v.to_string()
        } else if a == "--threads" {
            args.next().unwrap_or_default()
        } else {
            continue;
        };
        return value.parse().unwrap_or_else(|_| {
            eprintln!("invalid --threads value {value:?}; expected a non-negative integer");
            std::process::exit(2);
        });
    }
    0
}

/// The worker count [`threads_arg`] resolves to (`0` → all cores).
#[must_use]
pub fn workers_arg() -> usize {
    dses_sim::effective_workers({
        let t = threads_arg();
        (t > 0).then_some(t)
    })
}

/// Parse `--metrics full|auto|means` (or `--metrics=<mode>`) from this
/// process's command line: the collector's demand tier for an exhibit's
/// runs. `auto` — the default when the flag is absent — lets each entry
/// point demand exactly the fields it reads; demanded fields are
/// bitwise identical across modes, so the committed exhibit captures
/// are byte-for-byte the same under `full` and `auto`. `means` forces
/// the slimmest tier everywhere (a throughput knob; undemanded fields
/// read as deterministic empties).
#[must_use]
pub fn metrics_arg() -> MetricsMode {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if let Some(v) = a.strip_prefix("--metrics=") {
            v.to_string()
        } else if a == "--metrics" {
            args.next().unwrap_or_default()
        } else {
            continue;
        };
        return match value.as_str() {
            "full" => MetricsMode::Full,
            "auto" => MetricsMode::Auto,
            "means" => MetricsMode::Means,
            other => {
                eprintln!("invalid --metrics value {other:?}; expected full, auto, or means");
                std::process::exit(2);
            }
        };
    }
    MetricsMode::Auto
}

/// The load grid used by the simulation figures (the paper plots up to
/// 0.8 "because otherwise they become unreadable" but discusses all
/// loads under 1; we include 0.9).
#[must_use]
pub fn load_grid() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
}

/// A coarser grid for expensive sweeps.
#[must_use]
pub fn coarse_load_grid() -> Vec<f64> {
    vec![0.3, 0.5, 0.7, 0.9]
}

/// Default number of simulated jobs per point for exhibit runs.
/// Big enough for stable means on the heavy-tailed workloads, small
/// enough that every figure regenerates in seconds in release mode.
pub const EXHIBIT_JOBS: usize = 200_000;

/// Default warm-up trim.
pub const EXHIBIT_WARMUP: usize = 5_000;

/// Default seed for exhibit runs (the paper's methodology: one trace,
/// rescaled per load — our builder reuses the same size stream per seed).
pub const EXHIBIT_SEED: u64 = 1997;

/// Build the standard exhibit experiment for a preset. Honors the
/// `--threads <n>` and `--metrics <mode>` flags on the binary's command
/// line (see [`threads_arg`], [`metrics_arg`]), so every exhibit
/// accepts the same knobs.
#[must_use]
pub fn exhibit_experiment(preset: &WorkloadPreset, hosts: usize) -> Experiment<Mixture> {
    Experiment::new(preset.size_dist.clone())
        .hosts(hosts)
        .jobs(EXHIBIT_JOBS)
        .warmup_jobs(EXHIBIT_WARMUP)
        .seed(EXHIBIT_SEED)
        .threads(threads_arg())
        .metrics_mode(metrics_arg())
}

/// Render a set of policy sweeps as two tables (mean slowdown and
/// variance of slowdown vs load), like the top/bottom panels of the
/// paper's figures.
#[must_use]
pub fn render_sweeps(title: &str, loads: &[f64], sweeps: &[LoadSweep]) -> String {
    let mut headers: Vec<String> = vec!["rho".to_string()];
    headers.extend(sweeps.iter().map(|s| s.policy.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut mean_table = Table::new(format!("{title} — mean slowdown"), &headers_ref);
    let mut var_table = Table::new(format!("{title} — variance of slowdown"), &headers_ref);
    for (i, &rho) in loads.iter().enumerate() {
        let mut mean_row = vec![format!("{rho:.2}")];
        let mut var_row = vec![format!("{rho:.2}")];
        for s in sweeps {
            mean_row.push(fmt_num(s.points[i].mean_slowdown));
            var_row.push(fmt_num(s.points[i].var_slowdown));
        }
        mean_table.push_row(mean_row);
        var_table.push_row(var_row);
    }
    format!("{}\n{}", mean_table.render(), var_table.render())
}

/// Run the given policies over `loads` and render the figure.
///
/// Dispatches through [`Experiment::sweep_grid`]: traces are shared per
/// load and the policy × load grid fans out over worker threads, but the
/// rendered exhibit is bit-for-bit what the sequential per-policy sweeps
/// produced.
#[must_use]
pub fn run_figure(
    title: &str,
    experiment: &Experiment<Mixture>,
    specs: &[PolicySpec],
    loads: &[f64],
) -> String {
    let sweeps = experiment.sweep_grid(specs, loads);
    render_sweeps(title, loads, &sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_increasing_and_subcritical() {
        for g in [load_grid(), coarse_load_grid()] {
            assert!(g.windows(2).all(|w| w[0] < w[1]));
            assert!(g.iter().all(|&r| r > 0.0 && r < 1.0));
        }
    }

    #[test]
    fn exhibit_experiment_is_configured() {
        let p = dses_workload::psc_c90();
        let e = exhibit_experiment(&p, 2);
        assert_eq!(e.num_hosts(), 2);
    }

    #[test]
    fn render_sweeps_produces_both_panels() {
        let p = dses_workload::psc_c90();
        let e = exhibit_experiment(&p, 2).jobs(2_000).warmup_jobs(0);
        let loads = [0.3, 0.6];
        let text = run_figure("test", &e, &[PolicySpec::LeastWorkLeft], &loads);
        assert!(text.contains("mean slowdown"));
        assert!(text.contains("variance of slowdown"));
        assert!(text.contains("Least-Work-Left"));
        assert!(text.contains("0.60"));
    }
}
