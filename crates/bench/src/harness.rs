//! A small, dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so the bench targets cannot pull in
//! Criterion; this module provides the minimum that is still honest:
//! warm-up, an auto-scaled iteration count targeting a fixed measurement
//! window, and median-of-samples reporting (the median is robust to the
//! occasional scheduler hiccup that wrecks a mean).
//!
//! Bench targets are plain `fn main()` programs (`harness = false`) that
//! call [`Bench::run`] per case; run them with `cargo bench -p dses-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Number of measurement samples per case.
const SAMPLES: usize = 7;

/// One timed case's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// case label
    pub name: String,
    /// median time per iteration
    pub per_iter: Duration,
    /// elements processed per iteration (0 = unset)
    pub elements: u64,
}

impl Measurement {
    /// Elements processed per second, if `elements` was set.
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        (self.elements > 0).then(|| self.elements as f64 / self.per_iter.as_secs_f64())
    }
}

/// A named group of timed cases, printed as they complete.
pub struct Bench {
    group: String,
    results: Vec<Measurement>,
}

impl Bench {
    /// Start a bench group with the given display name.
    #[must_use]
    pub fn new(group: impl Into<String>) -> Self {
        let group = group.into();
        println!("\n== {group} ==");
        Self { group, results: Vec::new() }
    }

    /// Time `f`, reporting per-iteration latency.
    pub fn run<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &Measurement {
        self.run_with_elements(name, 0, f)
    }

    /// Time `f`, additionally reporting throughput over `elements`
    /// processed per call (e.g. jobs simulated).
    pub fn run_with_elements<R>(
        &mut self,
        name: &str,
        elements: u64,
        mut f: impl FnMut() -> R,
    ) -> &Measurement {
        // Warm up and size the batch so one sample lasts ~SAMPLE_TARGET.
        let mut iters: u64 = 1;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET / 2 {
                break elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
            }
            iters = iters.saturating_mul(2);
        };
        let batch = (SAMPLE_TARGET.as_nanos() / per_iter_estimate.as_nanos().max(1))
            .clamp(1, u128::from(u32::MAX)) as u32;
        let mut samples: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed() / batch
            })
            .collect();
        samples.sort_unstable();
        let per_iter = samples[samples.len() / 2];
        let m = Measurement { name: name.to_string(), per_iter, elements };
        match m.throughput() {
            Some(rate) => println!(
                "{:<44} {:>14}/iter  {:>12}/s",
                m.name,
                fmt_duration(per_iter),
                fmt_rate(rate)
            ),
            None => println!("{:<44} {:>14}/iter", m.name, fmt_duration(per_iter)),
        }
        let idx = self.results.len();
        self.results.push(m);
        &self.results[idx]
    }

    /// All measurements taken so far, in run order.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// The group display name.
    #[must_use]
    pub fn group(&self) -> &str {
        &self.group
    }
}

/// Render a duration with a sensible unit (ns/µs/ms/s).
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Render an element rate with K/M/G suffixes.
#[must_use]
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cover_all_unit_ranges() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_duration(Duration::from_micros(45)), "45.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_rate(12.3), "12.3");
        assert_eq!(fmt_rate(4.2e4), "42.00 K");
        assert_eq!(fmt_rate(7.5e6), "7.50 M");
        assert_eq!(fmt_rate(1.1e9), "1.10 G");
    }

    #[test]
    fn throughput_requires_elements() {
        let with = Measurement {
            name: "a".into(),
            per_iter: Duration::from_millis(10),
            elements: 1_000,
        };
        assert!((with.throughput().unwrap() - 100_000.0).abs() < 1e-6);
        let without = Measurement { name: "b".into(), per_iter: Duration::from_millis(10), elements: 0 };
        assert!(without.throughput().is_none());
    }
}
