//! Figure 2 — simulation comparison of the *load-balancing* policies on
//! a 2-host system under the C90 workload: mean slowdown (top panel) and
//! variance of slowdown (bottom panel) vs system load.
//!
//! Paper's reading: Random is unacceptable at every load; SITA-E and
//! Least-Work-Left are similar at low load, and SITA-E wins by ×3–4 at
//! medium/high load; the variance gaps are larger still.

use dses_bench::{exhibit_experiment, load_grid, run_figure};
use dses_core::prelude::*;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 2);
    let loads = load_grid();
    let specs = [
        PolicySpec::Random,
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaE,
    ];
    println!(
        "{}",
        run_figure(
            "Figure 2 — balancing policies, 2 hosts, C90 workload (simulation)",
            &experiment,
            &specs,
            &loads,
        )
    );
}
