//! Figures 11 and 13 (appendices B and C) — the Figure-5 load-fraction
//! plot (fraction of total load on Host 1 under SITA-U-opt/-fair vs the
//! ρ/2 rule of thumb) repeated on the J90 and CTC workloads.

use dses_bench::{exhibit_experiment, load_grid};
use dses_core::prelude::*;
use dses_core::report::Table;
use dses_core::rule_of_thumb::rule_of_thumb_fraction;

fn main() {
    for (fig, preset) in [
        ("Figure 11 — load fraction on Host 1, J90", dses_workload::psc_j90()),
        ("Figure 13 — load fraction on Host 1, CTC", dses_workload::ctc_sp2()),
    ] {
        let experiment = exhibit_experiment(&preset, 2);
        let mut table = Table::new(
            fig,
            &["rho", "SITA-U-opt", "SITA-U-fair", "rule-of-thumb rho/2"],
        );
        for &rho in &load_grid() {
            let frac = |spec: &PolicySpec| -> String {
                match experiment.try_run(spec, rho) {
                    Ok(r) => format!("{:.3}", r.load_fraction(0)),
                    Err(_) => "-".to_string(),
                }
            };
            table.push_row(vec![
                format!("{rho:.2}"),
                frac(&PolicySpec::SitaUOpt),
                frac(&PolicySpec::SitaUFair),
                format!("{:.3}", rule_of_thumb_fraction(rho)),
            ]);
        }
        println!("{}", table.render());
    }
}
