//! §1.4 / §3.3 quantitative-claims check — the paper's headline numbers,
//! verified against this reproduction:
//!
//! 1. Random vs Least-Work-Left: ×2–10 mean slowdown, ×~30 variance.
//! 2. Random vs SITA-E: ×6–10 mean slowdown, orders of magnitude in
//!    variance.
//! 3. SITA-U over SITA-E: ≥ an order of magnitude (mean and variance)
//!    across the interesting load range.
//! 4. Under SITA-E on the C90 workload, ~98.7 % of jobs go to Host 1.
//! 5. Least-Work-Left ≡ Central-Queue, job-for-job.
//! 6. Rule-of-thumb cutoffs land within ~10 % of the optimised ones.

use dses_bench::{exhibit_experiment, EXHIBIT_SEED};
use dses_core::prelude::*;
use dses_core::report::{fmt_num, fmt_ratio, Table};
use dses_sim::validate::max_response_deviation;
use dses_sim::{simulate_dispatch, EventEngine};

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 2);

    println!("Paper-claims check (C90 stand-in, 2 hosts)\n");

    // -- claims 1–3: slowdown/variance factors across loads
    let mut table = Table::new(
        "slowdown factors vs load",
        &[
            "rho",
            "Random/LWL (mean)",
            "Random/LWL (var)",
            "Random/SITA-E (mean)",
            "SITA-E/U-fair (mean)",
            "SITA-E/U-fair (var)",
        ],
    );
    for &rho in &[0.3, 0.5, 0.7, 0.8] {
        let random = experiment.run(&PolicySpec::Random, rho);
        let lwl = experiment.run(&PolicySpec::LeastWorkLeft, rho);
        let sita_e = experiment.run(&PolicySpec::SitaE, rho);
        let fair = experiment.run(&PolicySpec::SitaUFair, rho);
        table.push_row(vec![
            format!("{rho:.1}"),
            fmt_ratio(random.slowdown.mean - 1.0, lwl.slowdown.mean - 1.0),
            fmt_ratio(random.slowdown.variance, lwl.slowdown.variance),
            fmt_ratio(random.slowdown.mean - 1.0, sita_e.slowdown.mean - 1.0),
            fmt_ratio(sita_e.slowdown.mean - 1.0, fair.slowdown.mean - 1.0),
            fmt_ratio(sita_e.slowdown.variance, fair.slowdown.variance),
        ]);
    }
    println!("{}", table.render());
    println!("(ratios on queueing slowdown E[W/X] = E[S]-1, the paper's Theorem-1 quantity)\n");

    // -- claim 4: job fraction to Host 1 under SITA-E
    let r = experiment.run(&PolicySpec::SitaE, 0.7);
    println!(
        "SITA-E at rho=0.7: {:.1}% of jobs to Host 1 (paper: ~98.7%), load fraction {:.3}\n",
        100.0 * r.job_fraction(0),
        r.load_fraction(0),
    );

    // -- claim 5: LWL ≡ Central-Queue, exactly, per job
    let trace = preset.trace(50_000, 0.7, 2, EXHIBIT_SEED);
    let cfg = MetricsConfig {
        collect_records: true,
        ..MetricsConfig::default()
    };
    let mut lwl_policy = dses_core::policies::LeastWorkLeft;
    let lwl = simulate_dispatch(&trace, 2, &mut lwl_policy, 0, cfg);
    let cq = EventEngine::new(2, cfg).run_central_queue(&trace, QueueDiscipline::Fcfs);
    let dev = max_response_deviation(
        lwl.records.as_ref().unwrap(),
        cq.records.as_ref().unwrap(),
    );
    println!(
        "Least-Work-Left vs Central-Queue on 50k jobs: max per-job response deviation = {}\n",
        fmt_num(dev)
    );

    // -- claim 6: rule of thumb within ~10% of optimised SITA-U
    let mut rot_table = Table::new(
        "rule-of-thumb vs optimised cutoff (mean slowdown)",
        &["rho", "SITA-U-opt", "SITA-U-rot", "penalty"],
    );
    for &rho in &[0.3, 0.5, 0.7, 0.8] {
        let opt = experiment.run(&PolicySpec::SitaUOpt, rho);
        let rot = experiment.run(&PolicySpec::SitaRuleOfThumb, rho);
        rot_table.push_row(vec![
            format!("{rho:.1}"),
            fmt_num(opt.slowdown.mean),
            fmt_num(rot.slowdown.mean),
            fmt_ratio(rot.slowdown.mean - 1.0, opt.slowdown.mean - 1.0),
        ]);
    }
    println!("{}", rot_table.render());
}
