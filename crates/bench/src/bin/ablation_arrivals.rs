//! Ablation: decomposing §6's burstiness effect.
//!
//! Bursty arrivals hurt through two distinct channels — high marginal
//! interarrival *variability* and positive *correlation* (bursts). The
//! paper's trace-scaled experiment bundles both. We separate them: record
//! an MMPP gap sequence once, then drive the same job-size stream with
//!
//! 1. Poisson arrivals (C² = 1, no correlation) — the §2.2 baseline;
//! 2. the gaps **shuffled** (same marginal C², correlation destroyed);
//! 3. the gaps **in order** (marginal C² *and* correlation).
//!
//! Any difference between rows 2 and 3 is attributable purely to
//! correlation.

use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_workload::{burstiness_report, Mmpp2, ReplayArrivals};
use std::sync::Arc;

fn main() {
    let workers = dses_bench::workers_arg();
    let preset = dses_workload::psc_c90();
    let rho = 0.7;
    let hosts = 2;
    let jobs = 200_000;
    use dses_dist::Distribution as _;
    let rate = rho * hosts as f64 / preset.size_dist.mean();
    // record the bursty gap sequence once
    let recorded = WorkloadBuilder::new(preset.size_dist.clone())
        .jobs(jobs)
        .arrivals(Mmpp2::bursty(rate, 20.0, 50.0))
        .seed(1997)
        .build();
    let gaps = ReplayArrivals::gaps_of(&recorded);

    let experiment = Experiment::new(preset.size_dist.clone())
        .hosts(hosts)
        .jobs(jobs)
        .warmup_jobs(5_000)
        .seed(1997);

    let build = |arrivals: Box<dyn FnOnce() -> Trace>| arrivals();
    let poisson_trace = build(Box::new(|| {
        WorkloadBuilder::new(preset.size_dist.clone())
            .jobs(jobs)
            .poisson_load(rho, hosts)
            .seed(1997)
            .build()
    }));
    let shuffled_trace = build(Box::new(|| {
        WorkloadBuilder::new(preset.size_dist.clone())
            .jobs(jobs)
            .arrivals(ReplayArrivals::shuffled(gaps.clone(), 11))
            .seed(1997)
            .build()
    }));
    let ordered_trace = build(Box::new(|| {
        WorkloadBuilder::new(preset.size_dist.clone())
            .jobs(jobs)
            .arrivals(ReplayArrivals::ordered(gaps.clone()))
            .seed(1997)
            .build()
    }));

    let mut table = Table::new(
        format!("burstiness decomposition at rho = {rho}, C90, 2 hosts (mean slowdown)"),
        &["arrivals", "gap C^2", "lag-1 corr", "LWL", "SITA-U-fair", "LWL/fair"],
    );
    // The arrivals × policy grid fans out over --threads workers; cells
    // are collected by index, so the table is identical for any count.
    let traces: Arc<Vec<Arc<Trace>>> = Arc::new(
        [poisson_trace, shuffled_trace, ordered_trace].into_iter().map(Arc::new).collect(),
    );
    let cells: Vec<f64> = {
        let experiment = Arc::new(experiment);
        let traces = Arc::clone(&traces);
        dses_sim::par_map_indexed(traces.len() * 2, workers, move |g| {
            let (t, s) = (g / 2, g % 2);
            let spec = if s == 0 { PolicySpec::LeastWorkLeft } else { PolicySpec::SitaUFair };
            experiment
                .try_run_on_trace(&spec, &traces[t])
                .map(|r| r.slowdown.mean)
                .unwrap_or(f64::NAN)
        })
    };
    for (t, label) in ["Poisson", "trace gaps, shuffled", "trace gaps, ordered"]
        .into_iter()
        .enumerate()
    {
        let trace = &traces[t];
        let b = burstiness_report(trace, 1, 2);
        let (lwl, fair) = (cells[t * 2], cells[t * 2 + 1]);
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", b.interarrival_scv),
            format!("{:+.3}", b.gap_autocorrelation[0]),
            fmt_num(lwl),
            fmt_num(fair),
            format!("{:.1}x", lwl / fair),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: marginal gap variability alone (row 2) already hurts both");
    println!("policies; adding correlation (row 3) multiplies the damage again. The");
    println!("LWL/fair ratio shrinks down the rows — §6's mechanism, isolated: arrival");
    println!("correlation is the one burden size-based splitting cannot smooth.");
}
