//! Table 1 — characteristics of the trace data.
//!
//! Paper: per-system duration, number of jobs, mean service requirement,
//! min, max, and squared coefficient of variation. Here: the calibrated
//! stand-in distributions and the statistics of an actual sampled trace,
//! so the reader can verify the synthetic workloads land on the published
//! numbers.

use dses_bench::{EXHIBIT_SEED};
use dses_core::report::Table;
use dses_workload::presets::all_presets;

fn main() {
    println!("Table 1 — characteristics of the (calibrated stand-in) trace data\n");
    let mut analytic = Table::new(
        "calibrated size distributions (analytic)",
        &["system", "mean (s)", "min (s)", "max (s)", "C^2", "tail jobs", "tail load"],
    );
    let mut sampled = Table::new(
        "sampled traces (100k jobs, seed fixed)",
        &["system", "mean (s)", "min (s)", "max (s)", "C^2", "top-1.3% load"],
    );
    for preset in all_presets() {
        use dses_dist::Distribution as _;
        let d = &preset.size_dist;
        let (lo, hi) = d.support();
        analytic.push_row(vec![
            preset.name.to_string(),
            format!("{:.1}", d.mean()),
            format!("{lo:.1}"),
            format!("{hi:.0}"),
            format!("{:.2}", d.scv()),
            format!("{:.3}", preset.targets.tail_jobs),
            format!("{:.2}", preset.targets.tail_load),
        ]);
        let trace = preset.trace(100_000, 0.5, 2, EXHIBIT_SEED);
        let s = trace.size_summary();
        let (_, top_load) = s.top_fraction_load(0.013);
        sampled.push_row(vec![
            preset.name.to_string(),
            format!("{:.1}", s.mean()),
            format!("{:.1}", s.min()),
            format!("{:.0}", s.max()),
            format!("{:.2}", s.scv()),
            format!("{top_load:.3}"),
        ]);
    }
    println!("{}", analytic.render());
    println!("{}", sampled.render());
    println!("paper targets: C90 C^2=43, J90 C^2=38 (Cray traces: biggest 1.3% of jobs = half the load),");
    println!("CTC 12h cap => much lower C^2. Sample C^2 sits below the analytic value because the");
    println!("extreme tail is undersampled at 100k jobs — the same effect a real year-long trace shows.");
}
