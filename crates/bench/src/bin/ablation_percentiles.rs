//! Ablation: tail percentiles of slowdown.
//!
//! The paper reports means and variances; its second performance goal —
//! "the lower the variance, the more predictable the slowdown" (§1.2) —
//! is operationally about the *tail*. This exhibit adds the p50/p90/
//! p95/p99 slowdown per policy (streaming P² estimators, no record
//! buffering), showing that SITA-U's variance win is a tail win: the
//! paper's fairness policy improves the p99 experienced by real jobs by
//! more than it improves the mean.

use dses_bench::{exhibit_experiment};
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 2).percentiles(true);
    let rho = 0.7;
    let specs = [
        PolicySpec::Random,
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaE,
        PolicySpec::SitaUOpt,
        PolicySpec::SitaUFair,
    ];
    let mut table = Table::new(
        format!("slowdown percentiles at rho = {rho}, C90, 2 hosts"),
        &["policy", "mean", "p50", "p90", "p95", "p99"],
    );
    for spec in &specs {
        match experiment.try_run(spec, rho) {
            Ok(r) => {
                let p = r.slowdown_percentiles.expect("percentiles enabled");
                let get = |q: f64| {
                    p.iter()
                        .find(|(qq, _)| (qq - q).abs() < 1e-9)
                        .map(|&(_, v)| fmt_num(v))
                        .unwrap_or_else(|| "-".into())
                };
                table.push_row(vec![
                    spec.name(),
                    fmt_num(r.slowdown.mean),
                    get(0.5),
                    get(0.9),
                    get(0.95),
                    get(0.99),
                ]);
            }
            Err(_) => table.push_row(vec![spec.name(), "-".into(), "-".into(), "-".into(), "-".into(), "-".into()]),
        }
    }
    println!("{}", table.render());
    // analytic p99 for the exactly-modelled SITA policies, from the
    // transform-inverted slowdown tail
    use dses_dist::Distribution as _;
    let d = &preset.size_dist;
    let lambda = rho * 2.0 / d.mean();
    let mut analytic = dses_core::report::Table::new(
        "analytic p99 slowdown (transform inversion), same operating point",
        &["policy", "analytic p99"],
    );
    for (name, cutoffs) in [
        ("SITA-E", dses_queueing::cutoff::sita_e_cutoffs(d, 2).ok()),
        (
            "SITA-U-fair",
            dses_queueing::cutoff::sita_u_fair_cutoff(d, lambda)
                .ok()
                .map(|c| vec![c]),
        ),
    ] {
        let cell = cutoffs
            .map(|c| {
                fmt_num(dses_queueing::transform::sita_slowdown_quantile(
                    d, lambda, &c, 0.99,
                ))
            })
            .unwrap_or_else(|| "-".into());
        analytic.push_row(vec![name.to_string(), cell]);
    }
    println!("{}", analytic.render());
    println!("(percentiles are independent streaming P2 estimates; on strongly bimodal");
    println!("slowdown distributions adjacent quantiles can cross by the estimator's");
    println!("error, as Least-Work-Left's p90/p95 do here)");
    println!("Reading: the median job is barely delayed under any policy — the whole");
    println!("game is the tail. SITA-U compresses p99 by an order of magnitude over");
    println!("SITA-E and two over Random: 'predictable slowdown' made concrete.");
}
