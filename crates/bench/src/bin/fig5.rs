//! Figure 5 — the fraction of the total load sent to Host 1 (the
//! short-job host) under SITA-U-opt and SITA-U-fair, against the ρ/2
//! rule of thumb. Under SITA-E this fraction would always be 0.5; both
//! SITA-U policies *underload* Host 1.

use dses_bench::{exhibit_experiment, load_grid};
use dses_core::prelude::*;
use dses_core::report::Table;
use dses_core::rule_of_thumb::rule_of_thumb_fraction;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 2);
    let loads = load_grid();
    let mut table = Table::new(
        "Figure 5 — fraction of total load on Host 1 (short host), C90",
        &["rho", "SITA-U-opt", "SITA-U-fair", "rule-of-thumb rho/2", "SITA-E"],
    );
    for &rho in &loads {
        let frac = |spec: &PolicySpec| -> String {
            match experiment.try_run(spec, rho) {
                Ok(r) => format!("{:.3}", r.load_fraction(0)),
                Err(_) => "-".to_string(),
            }
        };
        table.push_row(vec![
            format!("{rho:.2}"),
            frac(&PolicySpec::SitaUOpt),
            frac(&PolicySpec::SitaUFair),
            format!("{:.3}", rule_of_thumb_fraction(rho)),
            frac(&PolicySpec::SitaE),
        ]);
    }
    println!("{}", table.render());
    println!("(measured load fractions from simulation; SITA-E sits at 0.5 by construction)");
}
