//! Run every exhibit regenerator in sequence (Table 1, Figures 2–13,
//! claims check). Equivalent to running each `figN`/`table1`/`claims`
//! binary; provided so `cargo run -p dses-bench --release --bin
//! all_exhibits | tee exhibits.txt` captures the whole evaluation at
//! once.

use std::process::Command;

fn main() {
    // forwarded to every child exhibit (0 = all cores; Auto = per-caller demand)
    let threads = dses_bench::threads_arg();
    let metrics = dses_bench::metrics_arg();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10_12",
        "fig11_13", "claims", "ablation_cutoff", "ablation_workload", "ablation_noise",
        "ablation_multihost", "ablation_tags", "ablation_prediction", "ablation_hetero", "ablation_percentiles", "ablation_arrivals", "ablation_diurnal", "validation",
    ];
    for bin in bins {
        println!("================================================================");
        println!("==== {bin}");
        println!("================================================================");
        let path = dir.join(bin);
        let mut cmd = Command::new(&path);
        if threads > 0 {
            cmd.arg("--threads").arg(threads.to_string());
        }
        cmd.arg("--metrics")
            .arg(dses_core::report::metrics_mode_label(metrics));
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!(
                "could not run {bin} ({e}); build it first: cargo build --release -p dses-bench --bins"
            ),
        }
    }
}
