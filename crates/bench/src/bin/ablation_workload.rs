//! Ablation: workload variability.
//!
//! §8: "The best task assignment policy depends on characteristics of
//! the distribution of job processing requirements. Thus workload
//! characterization is important." This exhibit holds the mean and load
//! fixed and sweeps the job-size squared coefficient of variation from
//! sub-exponential to supercomputing-like, printing where the
//! LWL-vs-SITA ranking flips.

use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};

fn main() {
    let rho = 0.7;
    let mean = 1000.0;
    // Ranking is by mean waiting time: distributions with density at 0
    // (Exponential, Hyperexp) have E[1/X] = ∞, so sampled mean *slowdown*
    // is noise-dominated by the tiniest jobs and SITA-U-fair's
    // equal-slowdown cutoff is undefined there ("-" below).
    let mut table = Table::new(
        format!("policy ranking vs job-size variability (2 hosts, rho = {rho}, mean waiting time)"),
        &["size C^2", "distribution", "LWL", "SITA-E", "SITA-U-fair", "winner"],
    );
    // sweep via distributions that can represent each regime
    use std::sync::Arc;
    let cases: Vec<(f64, &str, Arc<dyn Distribution>)> = vec![
        (0.25, "Erlang-4", Arc::new(Erlang::with_mean(4, mean).unwrap())),
        (1.0, "Exponential", Arc::new(Exponential::with_mean(mean).unwrap())),
        (4.0, "Hyperexp", Arc::new(HyperExponential::fit_mean_scv(mean, 4.0).unwrap())),
        (16.0, "Hyperexp", Arc::new(HyperExponential::fit_mean_scv(mean, 16.0).unwrap())),
        (
            43.0,
            "body-tail BP",
            Arc::new(
                dses_dist::fit::fit_body_tail(dses_dist::fit::BodyTailTargets {
                    mean,
                    scv: 43.0,
                    min: mean / 80.0,
                    max: mean * 500.0,
                    tail_jobs: 0.013,
                    tail_load: 0.5,
                })
                .unwrap(),
            ),
        ),
    ];
    // The distribution × policy grid fans out over --threads workers;
    // cells are collected by index, so the table is identical for any
    // worker count.
    let specs = [PolicySpec::LeastWorkLeft, PolicySpec::SitaE, PolicySpec::SitaUFair];
    let cells: Vec<f64> = {
        let dists: Arc<Vec<Arc<dyn Distribution>>> =
            Arc::new(cases.iter().map(|(_, _, d)| Arc::clone(d)).collect());
        let specs = specs.clone();
        dses_sim::par_map_indexed(cases.len() * specs.len(), dses_bench::workers_arg(), move |g| {
            let (c, s) = (g / specs.len(), g % specs.len());
            Experiment::new(Arc::clone(&dists[c]))
                .hosts(2)
                .jobs(150_000)
                .warmup_jobs(5_000)
                .seed(1997)
                .try_run(&specs[s], rho)
                .map(|r| r.waiting.mean / mean) // waiting in units of E[X]
                .unwrap_or(f64::NAN)
        })
    };
    for (c, (scv, family, _)) in cases.into_iter().enumerate() {
        let (lwl, sita_e, fair) = (cells[c * 3], cells[c * 3 + 1], cells[c * 3 + 2]);
        let winner = [("LWL", lwl), ("SITA-E", sita_e), ("SITA-U-fair", fair)]
            .into_iter()
            .filter(|(_, v)| v.is_finite())
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
            .unwrap_or("-");
        table.push_row(vec![
            format!("{scv:.2}"),
            family.to_string(),
            fmt_num(lwl),
            fmt_num(sita_e),
            fmt_num(fair),
            winner.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: at low variability pooling wins (the §1.3 exponential folklore);");
    println!("as C^2 grows, size-based assignment takes over and unbalancing compounds it.");
}
