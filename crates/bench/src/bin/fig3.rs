//! Figure 3 — the Figure-2 comparison on a **4-host** system.
//!
//! Paper's reading: Least-Work-Left and SITA-E both improve markedly
//! from 2 to 4 hosts (Random is unchanged); SITA-E still wins at
//! `ρ ≥ 0.5`, by ×2–4 in mean slowdown and ×25 in variance.

use dses_bench::{exhibit_experiment, load_grid, run_figure};
use dses_core::prelude::*;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 4);
    let loads = load_grid();
    let specs = [
        PolicySpec::Random,
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaE,
    ];
    println!(
        "{}",
        run_figure(
            "Figure 3 — balancing policies, 4 hosts, C90 workload (simulation)",
            &experiment,
            &specs,
            &loads,
        )
    );
}
