//! Ablation: TAGS — size-interval assignment without size knowledge.
//!
//! The paper's reference \[10\] (Harchol-Balter, ICDCS 2000) shows the
//! SITA idea survives even when job sizes are *unknown*: start every job
//! on Host 1 and kill-and-restart anything that outlives the cutoff.
//! This exhibit prices the restart overhead: TAGS vs size-aware SITA at
//! the same cutoffs, plus the extra capacity TAGS burns.

use dses_core::policies::tags::{simulate_tags, tags_work};
use dses_core::policies::SizeInterval;
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_sim::simulate_dispatch;

fn main() {
    let preset = dses_workload::psc_c90();
    let d = &preset.size_dist;
    let mut table = Table::new(
        "TAGS vs size-aware SITA at the same 2-host cutoff, C90",
        &["rho", "cutoff", "SITA mean S", "TAGS mean S", "TAGS excess work %"],
    );
    for rho in [0.3, 0.5, 0.6, 0.7] {
        let trace = preset.trace(150_000, rho, 2, 1997);
        let lambda = trace.arrival_rate();
        // TAGS needs spare capacity for restarts; size the cutoff with
        // the SITA-U-opt solver as a reasonable shared choice
        let cutoff = match dses_queueing::cutoff::sita_u_opt_cutoff(d, lambda) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let cfg = MetricsConfig {
            warmup_jobs: 5_000,
            ..MetricsConfig::default()
        };
        let mut sita = SizeInterval::new(vec![cutoff], "SITA");
        let sita_r = simulate_dispatch(&trace, 2, &mut sita, 7, cfg);
        let tags_r = simulate_tags(&trace, &[cutoff], cfg);
        // wasted work fraction: (tags_work − size) summed over jobs
        let offered: f64 = trace.sizes().iter().sum();
        let with_restart: f64 = trace
            .sizes()
            .iter()
            .map(|&s| tags_work(s, &[cutoff]))
            .sum();
        let excess = 100.0 * (with_restart - offered) / offered;
        table.push_row(vec![
            format!("{rho:.1}"),
            format!("{cutoff:.0}"),
            fmt_num(sita_r.slowdown.mean),
            fmt_num(tags_r.slowdown.mean),
            format!("{excess:.2}%"),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: with a heavy tail, almost no job crosses the cutoff, so TAGS'");
    println!("restart overhead is small and size-oblivious assignment stays close to");
    println!("the size-aware ideal at low/medium load; the gap opens with load as the");
    println!("long host absorbs both the giants and the restarted work.");
}
