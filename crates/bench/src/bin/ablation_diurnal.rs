//! Ablation: diurnal (day/night) arrival cycles.
//!
//! Real centers see deterministic submission rhythms on top of random
//! burstiness. A sinusoidally modulated Poisson process at the same mean
//! load probes whether SITA's advantage survives *cyclic* rate swings —
//! including amplitudes where the daily peak transiently exceeds the
//! system's stability point.

use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_workload::DiurnalPoisson;

fn main() {
    let preset = dses_workload::psc_c90();
    let rho = 0.7;
    let hosts = 2;
    let jobs = 200_000;
    use dses_dist::Distribution as _;
    let rate = rho * hosts as f64 / preset.size_dist.mean();
    // one "day" spans roughly 2000 mean interarrivals
    let period = 2_000.0 / rate;
    let experiment = Experiment::new(preset.size_dist.clone())
        .hosts(hosts)
        .jobs(jobs)
        .warmup_jobs(5_000)
        .seed(1997);
    let mut table = Table::new(
        format!("diurnal modulation at mean load {rho}, C90, 2 hosts (mean slowdown)"),
        &["amplitude", "peak load", "LWL", "SITA-E", "SITA-U-fair"],
    );
    for amplitude in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let trace = WorkloadBuilder::new(preset.size_dist.clone())
            .jobs(jobs)
            .arrivals(DiurnalPoisson::new(rate, amplitude, period))
            .seed(1997)
            .build();
        let run = |spec: &PolicySpec| -> String {
            experiment
                .try_run_on_trace(spec, &trace)
                .map(|r| fmt_num(r.slowdown.mean))
                .unwrap_or_else(|_| "-".into())
        };
        table.push_row(vec![
            format!("{amplitude:.1}"),
            format!("{:.2}", rho * (1.0 + amplitude)),
            run(&PolicySpec::LeastWorkLeft),
            run(&PolicySpec::SitaE),
            run(&PolicySpec::SitaUFair),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: cyclic modulation behaves like slow, predictable burstiness —");
    println!("everyone suffers as the daily peak approaches saturation (peak load 1.26");
    println!("at amplitude 0.8 means transient overload every afternoon), but the");
    println!("policy ordering is untouched: size-based unbalancing keeps its lead.");
}
