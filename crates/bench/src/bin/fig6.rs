//! Figure 6 — systems with more than 2 hosts at system load 0.7:
//! mean slowdown vs the number of hosts for Least-Work-Left and the
//! grouped ("modified") SITA policies of §5, which reuse the 2-host
//! cutoff to split the hosts into a short group and a long group with
//! Least-Work-Left inside each.
//!
//! Paper's reading: grouped SITA-E beats LWL for small host counts but
//! loses for large ones (idle hosts become common and LWL exploits
//! them); the grouped SITA-U policies stay ahead until the host count is
//! very large (paper: policies comparable beyond ~70 hosts).

use dses_bench::{exhibit_experiment, EXHIBIT_JOBS};
use dses_core::cutoffs::CutoffMethod;
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};

fn main() {
    let preset = dses_workload::psc_c90();
    let rho = 0.7;
    let host_counts = [2usize, 4, 8, 16, 24, 32, 48, 64, 80];
    let mut table = Table::new(
        "Figure 6 — mean slowdown vs number of hosts at rho = 0.7, C90",
        &["hosts", "Least-Work-Left", "SITA-E(/LWL)", "SITA-U-opt(/LWL)", "SITA-U-fair(/LWL)"],
    );
    for &h in &host_counts {
        // keep total simulated work comparable across host counts
        let experiment = exhibit_experiment(&preset, h).jobs(EXHIBIT_JOBS.max(25_000 * h));
        let run = |spec: &PolicySpec| -> String {
            match experiment.try_run(spec, rho) {
                Ok(r) => fmt_num(r.slowdown.mean),
                Err(_) => "-".to_string(),
            }
        };
        let (sita_e, sita_o, sita_f) = if h == 2 {
            (
                run(&PolicySpec::SitaE),
                run(&PolicySpec::SitaUOpt),
                run(&PolicySpec::SitaUFair),
            )
        } else {
            (
                run(&PolicySpec::Grouped { method: CutoffMethod::EqualLoad }),
                run(&PolicySpec::Grouped { method: CutoffMethod::OptSlowdown }),
                run(&PolicySpec::Grouped { method: CutoffMethod::Fair }),
            )
        };
        table.push_row(vec![
            h.to_string(),
            run(&PolicySpec::LeastWorkLeft),
            sita_e,
            sita_o,
            sita_f,
        ]);
    }
    println!("{}", table.render());
    println!("(2-host rows use the plain SITA policies; larger systems use the grouped policies of §5)");
}
