//! Ablation: cutoff sensitivity.
//!
//! §8's sharpest observation: "What appear to just be parameters of the
//! task assignment policy (e.g., duration cutoffs) can have a greater
//! effect on performance than anything else." This exhibit sweeps the
//! 2-host SITA cutoff across the feasible range at a fixed load and
//! prints the whole slowdown curve, with the SITA-E, SITA-U-opt,
//! SITA-U-fair and rule-of-thumb positions marked.

use dses_core::cutoffs::{resolve_cutoff, CutoffMethod};
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};

fn main() {
    let preset = dses_workload::psc_c90();
    let d = preset.size_dist.clone();
    let rho = 0.7;
    let experiment = Experiment::new(d.clone())
        .hosts(2)
        .jobs(150_000)
        .warmup_jobs(5_000)
        .seed(1997);
    let lambda = 2.0 * rho / d.mean();

    let mut table = Table::new(
        format!("cutoff sensitivity at rho = {rho}, C90, 2 hosts"),
        &["cutoff (s)", "load frac host 1", "mean slowdown", "var slowdown"],
    );
    // log-spaced cutoffs across the stable range
    let anchors: Vec<(String, f64)> = {
        let mut named = Vec::new();
        for (label, method) in [
            ("SITA-E", CutoffMethod::EqualLoad),
            ("SITA-U-opt", CutoffMethod::OptSlowdown),
            ("SITA-U-fair", CutoffMethod::Fair),
            ("rho/2 rule", CutoffMethod::RuleOfThumb),
        ] {
            if let Ok(c) = resolve_cutoff(&d, lambda, 2, method) {
                named.push((label.to_string(), c[0]));
            }
        }
        named
    };
    let lo: f64 = 500.0;
    let hi: f64 = 500_000.0;
    let n = 14;
    let mut points: Vec<(String, f64)> = (0..=n)
        .map(|i| {
            let c = lo * (hi / lo).powf(i as f64 / n as f64);
            (String::new(), c)
        })
        .collect();
    points.extend(anchors.iter().cloned());
    points.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (label, cutoff) in points {
        let spec = PolicySpec::SitaFixed {
            cutoffs: vec![cutoff],
        };
        match experiment.try_run(&spec, rho) {
            Ok(r) => table.push_row(vec![
                if label.is_empty() {
                    format!("{cutoff:.0}")
                } else {
                    format!("{cutoff:.0}  <- {label}")
                },
                format!("{:.3}", r.load_fraction(0)),
                fmt_num(r.slowdown.mean),
                fmt_num(r.slowdown.variance),
            ]),
            Err(_) => table.push_row(vec![
                format!("{cutoff:.0}"),
                "-".into(),
                "unstable".into(),
                "-".into(),
            ]),
        }
    }
    println!("{}", table.render());
    println!("Reading: an order of magnitude separates a good cutoff from a bad one —");
    println!("the cutoff *is* the policy. The optimised anchors sit at the curve's floor.");
}
