//! Figure 7 — non-Poisson (bursty) arrivals, §6.
//!
//! The paper replaces the Poisson process with the traces' own
//! interarrival sequence, scaled to each target load. We stand in a
//! 2-state MMPP (bursty and correlated, like the measured arrivals) and
//! scale it the same way. Cutoffs stay the analytic Poisson ones — the
//! paper checked that the experimentally derived cutoffs agree.
//!
//! Paper's reading: the SITA-U policies still win over Least-Work-Left
//! for the realistic load range (0.6–0.9), but LWL takes over at very
//! high load (ρ ≳ 0.95), because it alone smooths arrival-process
//! variability.

use dses_bench::{exhibit_experiment, EXHIBIT_SEED};
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_workload::Mmpp2;

fn main() {
    let preset = dses_workload::psc_c90();
    let hosts = 2;
    let experiment = exhibit_experiment(&preset, hosts);
    let loads = [0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98];
    let specs = [
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaUOpt,
        PolicySpec::SitaUFair,
    ];
    let mut table = Table::new(
        "Figure 7 — bursty (MMPP-scaled) arrivals, mean slowdown, 2 hosts, C90",
        &["rho", "Least-Work-Left", "SITA-U-opt", "SITA-U-fair"],
    );
    use dses_dist::Distribution as _;
    let mean_size = preset.size_dist.mean();
    for &rho in &loads {
        // bursty arrival stream at the target load (burst rate 20x calm,
        // ~50 arrivals per bursty visit), same size stream per seed
        let rate = rho * hosts as f64 / mean_size;
        let trace = WorkloadBuilder::new(preset.size_dist.clone())
            .jobs(200_000)
            .arrivals(Mmpp2::bursty(rate, 20.0, 50.0))
            .seed(EXHIBIT_SEED)
            .build();
        let mut row = vec![format!("{rho:.2}")];
        for spec in &specs {
            let cell = match experiment.try_run_on_trace(spec, &trace) {
                Ok(r) => fmt_num(r.slowdown.mean),
                Err(_) => "-".to_string(),
            };
            row.push(cell);
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    // quantify the burstiness the table ran under, at a reference load
    let rate = 0.7 * hosts as f64 / mean_size;
    let sample = WorkloadBuilder::new(preset.size_dist.clone())
        .jobs(100_000)
        .arrivals(Mmpp2::bursty(rate, 20.0, 50.0))
        .seed(EXHIBIT_SEED)
        .build();
    let report = dses_workload::burstiness_report(&sample, 3, 4);
    println!(
        "arrival burstiness at rho=0.7: interarrival C^2 = {:.2}, lag-1 autocorr = {:.3}, IDC(1000x gap) = {:.1}",
        report.interarrival_scv,
        report.gap_autocorrelation[0],
        report.idc.last().map(|&(_, v)| v).unwrap_or(f64::NAN),
    );
    println!("(Poisson reference: C^2 = 1, autocorr = 0, IDC = 1. SITA cutoffs from the Poisson analysis, per §6.)");
}
