//! Figures 10 and 12 (appendices B and C) — the full policy comparison
//! of Figures 2 + 4 repeated on the **J90** and **CTC** workloads.
//!
//! Paper's reading: the J90 results are "virtually identical" to C90;
//! the CTC trace has far lower variance (12-hour cap) yet the comparative
//! ranking of the policies is unchanged.

use dses_bench::{exhibit_experiment, load_grid, run_figure};
use dses_core::prelude::*;

fn main() {
    let loads = load_grid();
    let specs = [
        PolicySpec::Random,
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaE,
        PolicySpec::SitaUOpt,
        PolicySpec::SitaUFair,
    ];
    for (fig, preset) in [
        ("Figure 10 — all policies, 2 hosts, J90 workload (simulation)", dses_workload::psc_j90()),
        ("Figure 12 — all policies, 2 hosts, CTC workload (simulation)", dses_workload::ctc_sp2()),
    ] {
        let experiment = exhibit_experiment(&preset, 2);
        println!("{}", run_figure(fig, &experiment, &specs, &loads));
    }
}
