//! Figure 4 — SITA-E (the best load balancer) vs the paper's
//! load-unbalancing policies SITA-U-opt and SITA-U-fair, 2 hosts, C90:
//! mean slowdown and variance of slowdown vs load (simulation).
//!
//! Paper's reading: both SITA-U policies improve on SITA-E by ×4–10 in
//! mean slowdown and ×10–100 in variance over ρ ∈ [0.3, 0.8], and
//! SITA-U-fair is only slightly worse than SITA-U-opt.

use dses_bench::{exhibit_experiment, load_grid, run_figure};
use dses_core::prelude::*;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 2);
    let loads = load_grid();
    let specs = [
        PolicySpec::SitaE,
        PolicySpec::SitaUOpt,
        PolicySpec::SitaUFair,
    ];
    println!(
        "{}",
        run_figure(
            "Figure 4 — SITA-E vs SITA-U-opt vs SITA-U-fair, 2 hosts, C90 (simulation)",
            &experiment,
            &specs,
            &loads,
        )
    );
}
