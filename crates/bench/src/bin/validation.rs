//! Validation: analysis vs simulation, side by side.
//!
//! The paper validates its simulator with Theorem-1 analysis
//! (appendix A: "in very close agreement with the simulation results").
//! This exhibit makes the agreement quantitative for this reproduction:
//! per policy and load, the analytic prediction, the simulated value,
//! and the relative gap. Exact models (Random = M/G/1, SITA = banded
//! M/G/1s) should agree within simulation noise; Least-Work-Left uses
//! the Lee–Longton approximation and is expected to drift high.

use dses_bench::{exhibit_experiment};
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_queueing::policies::AnalyticPolicy;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = exhibit_experiment(&preset, 2);
    let pairs = [
        (AnalyticPolicy::Random, PolicySpec::Random),
        (AnalyticPolicy::LeastWorkLeft, PolicySpec::LeastWorkLeft),
        (AnalyticPolicy::SitaE, PolicySpec::SitaE),
        (AnalyticPolicy::SitaUOpt, PolicySpec::SitaUOpt),
        (AnalyticPolicy::SitaUFair, PolicySpec::SitaUFair),
    ];
    let mut table = Table::new(
        "analytic vs simulated mean slowdown (C90, 2 hosts)",
        &["policy", "rho", "analytic", "simulated", "rel gap"],
    );
    for (analytic_p, sim_p) in pairs {
        for rho in [0.3, 0.5, 0.7] {
            let ana = experiment
                .analytic(analytic_p, rho)
                .map(|m| m.mean_slowdown)
                .unwrap_or(f64::NAN);
            let sim = experiment
                .try_run(&sim_p, rho)
                .map(|r| r.slowdown.mean)
                .unwrap_or(f64::NAN);
            let gap = (sim - ana) / ana;
            table.push_row(vec![
                sim_p.name(),
                format!("{rho:.1}"),
                fmt_num(ana),
                fmt_num(sim),
                format!("{:+.1}%", 100.0 * gap),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Random and the SITA family use exact M/G/1 models: gaps there are pure");
    println!("simulation noise (finite trace, heavy tail). Least-Work-Left's analytic");
    println!("column is the Lee–Longton M/G/h approximation — conservative by design.");
}
