//! End-to-end performance report for the parallel sweep path.
//!
//! Times one fixed exhibit-style sweep grid (C90 workload, 2 hosts,
//! 4 policies × 9 loads) sequentially (`threads = 1`) and in parallel
//! (all cores), and measures peak heap allocation of a single run in
//! streaming-metrics mode vs full-record mode. Results go to stdout and
//! to `BENCH_parallel.json` in the current directory.
//!
//! Run with `cargo run --release -p dses-bench --bin perf_report`
//! (release strongly recommended: the grid simulates ~1.4M jobs).

use dses_bench::harness::{fmt_duration, fmt_rate};
use dses_bench::load_grid;
use dses_core::policies::LeastWorkLeft;
use dses_core::prelude::*;
use dses_sim::{available_workers, simulate_dispatch, MetricsConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A pass-through allocator that tracks live and peak heap bytes, so the
/// streaming-vs-record comparison can report real allocation numbers
/// without any external profiler.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Reset the peak-tracking watermark to the current live size, run `f`,
/// and return the peak heap growth (bytes above the starting live size)
/// observed while it ran.
fn peak_heap_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(base))
}

fn main() {
    let preset = dses_workload::psc_c90();
    let specs = [
        PolicySpec::Random,
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaE,
        PolicySpec::SitaUFair,
    ];
    let loads = load_grid();
    let jobs_per_point = 40_000usize;
    let total_jobs = (jobs_per_point * specs.len() * loads.len()) as u64;
    let workers = available_workers();
    let base = Experiment::new(preset.size_dist.clone())
        .hosts(2)
        .jobs(jobs_per_point)
        .warmup_jobs(1_000)
        .seed(1997);

    println!("perf_report: {} policies x {} loads, {jobs_per_point} jobs/point, {workers} cores", specs.len(), loads.len());

    let start = Instant::now();
    let sequential = base.clone().threads(1).sweep_grid(&specs, &loads);
    let seq_secs = start.elapsed().as_secs_f64();
    println!("  sequential (1 thread):  {:>10}   {:>10}/s", fmt_duration(start.elapsed()), fmt_rate(total_jobs as f64 / seq_secs));

    let start = Instant::now();
    let parallel = base.clone().threads(0).sweep_grid(&specs, &loads);
    let par_secs = start.elapsed().as_secs_f64();
    println!("  parallel  ({workers} threads): {:>10}   {:>10}/s", fmt_duration(start.elapsed()), fmt_rate(total_jobs as f64 / par_secs));

    // Bit-for-bit check, not just a timing: the parallel grid must be the
    // sequential grid.
    let identical = sequential
        .iter()
        .zip(&parallel)
        .all(|(a, b)| {
            a.policy == b.policy
                && a.points.iter().zip(&b.points).all(|(x, y)| {
                    x.mean_slowdown.to_bits() == y.mean_slowdown.to_bits()
                        && x.var_slowdown.to_bits() == y.var_slowdown.to_bits()
                        && x.measured == y.measured
                })
        });
    let speedup = seq_secs / par_secs;
    println!("  speedup {speedup:.2}x, results identical: {identical}");

    // Streaming vs full-record metrics: same trace, same policy, measure
    // peak heap growth of the run itself.
    let trace = base.trace(0.7);
    let (_, peak_streaming) = peak_heap_of(|| {
        let mut p = LeastWorkLeft;
        simulate_dispatch(&trace, 2, &mut p, 0, MetricsConfig::streaming())
    });
    let (_, peak_records) = peak_heap_of(|| {
        let mut p = LeastWorkLeft;
        simulate_dispatch(&trace, 2, &mut p, 0, MetricsConfig::full_records())
    });
    println!(
        "  peak heap per run: streaming {} B, full records {} B ({:.1}x)",
        peak_streaming,
        peak_records,
        peak_records as f64 / peak_streaming.max(1) as f64
    );

    let json = format!(
        "{{\n  \"grid\": {{\"workload\": \"c90\", \"hosts\": 2, \"policies\": {}, \"loads\": {}, \"jobs_per_point\": {jobs_per_point}, \"total_jobs\": {total_jobs}}},\n  \"cores\": {workers},\n  \"sequential_secs\": {seq_secs:.4},\n  \"parallel_secs\": {par_secs:.4},\n  \"speedup\": {speedup:.3},\n  \"jobs_per_sec_sequential\": {:.0},\n  \"jobs_per_sec_parallel\": {:.0},\n  \"bit_identical\": {identical},\n  \"peak_heap_bytes_streaming\": {peak_streaming},\n  \"peak_heap_bytes_records\": {peak_records}\n}}\n",
        specs.len(),
        loads.len(),
        total_jobs as f64 / seq_secs,
        total_jobs as f64 / par_secs,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
    if !identical {
        eprintln!("ERROR: parallel sweep diverged from sequential");
        std::process::exit(1);
    }
}
