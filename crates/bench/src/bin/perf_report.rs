//! End-to-end performance report for the simulation and solver hot paths.
//!
//! Three sections, each with a built-in correctness check (timings are
//! worthless if the optimised path changes answers):
//!
//! 1. **Parallel sweep** — one fixed exhibit-style grid (C90 workload,
//!    2 hosts) sequentially vs on all cores, bit-identical results
//!    required. Written to `BENCH_parallel.json`.
//! 2. **Specialized kernels** — per-policy jobs/sec through the fast
//!    engine's policy-specialized loops vs the same policy forced through
//!    the full-state loop, record-for-record identical schedules
//!    required. Written to `BENCH_kernel.json`.
//! 3. **Cutoff solvers** — SITA-U solves/sec on the raw distribution vs
//!    through the [`TruncatedMoments`] memoizing view, bit-identical
//!    cutoffs required. Also in `BENCH_kernel.json`.
//! 4. **Worker pool** — the persistent pool behind `par_map_indexed` vs
//!    spawning a scoped thread team per batch, bit-identical grids
//!    required. Written to `BENCH_pool.json`.
//! 5. **Workspace reuse** — `simulate_dispatch_into` through one reused
//!    [`SimWorkspace`] vs a freshly allocated workspace per run,
//!    bit-identical results *and* zero steady-state allocations per run
//!    (verified by the counting allocator) required. Also in
//!    `BENCH_pool.json`.
//! 6. **SIMD kernels** — vectorized static/work-left loops and fused
//!    replication lanes vs the scalar specialized loop. Written to
//!    `BENCH_simd.json`.
//! 7. **Segmented kernels** — the two-phase segmented static split
//!    (choose → partition → per-host Lindley chains → replay) vs the
//!    direct vector kernel, the scalar loop, and the fused-segmented
//!    pass, with record-level identity and zero-alloc gates on the
//!    segmented paths. Written to `BENCH_segmented.json`.
//! 8. **Collector tiers** — the metrics contract's demand tiers: the
//!    full record path vs the MEANS-slimmed path vs the block-batched
//!    merge, with full-demand record identity, MEANS-tier bit identity
//!    on every demanded field, batched ulp bounds, and zero-alloc gates.
//!    Written to `BENCH_metrics.json`.
//! 9. **Lint tiers** — the four-tier `dses-lint` static gate `ci.sh`
//!    runs on every build, timed per tier configuration on the shipped
//!    tree, with a cleanliness gate in both modes. Written to
//!    `BENCH_lint.json`.
//!
//! Run with `cargo run --release -p dses-bench --bin perf_report`
//! (release strongly recommended: the full grid simulates ~1.4M jobs).
//! Pass `--smoke` for a seconds-scale CI run that performs every
//! identity check on tiny inputs and writes no files; the exit code is
//! nonzero if any check fails in either mode.

use dses_bench::harness::{fmt_duration, fmt_rate};
use dses_bench::load_grid;
use dses_core::policies::{LeastWorkLeft, RandomPolicy, RoundRobin, ShortestQueue, SizeInterval};
use dses_core::prelude::*;
use dses_core::report::metrics_mode_label;
use dses_dist::{BoundedPareto, Distribution, Moments, Rng64};
use dses_queueing::cutoff::{
    sita_e_cutoffs, sita_u_fair_cutoff, sita_u_opt_cutoff, sita_u_opt_cutoffs_multi,
    TruncatedMoments,
};
use dses_sim::metrics::JobRecord;
use dses_sim::{
    available_workers, par_map_indexed, par_map_indexed_scoped, simulate_dispatch,
    simulate_dispatch_fused_into, simulate_dispatch_fused_mode_into, simulate_dispatch_into,
    simulate_dispatch_segmented_into, simulate_dispatch_unsegmented_into, Demand, MetricsConfig,
    SegmentedMode, SimResult, SimWorkspace, StateNeeds, SystemState,
};
use dses_workload::{Job, Trace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A pass-through allocator that tracks live and peak heap bytes, so the
/// streaming-vs-record comparison can report real allocation numbers
/// without any external profiler.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static COUNT: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
    COUNT.fetch_add(1, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Reset the peak-tracking watermark to the current live size, run `f`,
/// and return the peak heap growth (bytes above the starting live size)
/// observed while it ran.
fn peak_heap_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(base))
}

/// Number of heap allocations (including reallocations) performed while
/// `f` ran. Meaningful on this thread only — run it with no concurrent
/// work.
fn alloc_count_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = COUNT.load(Ordering::Relaxed);
    let out = f();
    (out, COUNT.load(Ordering::Relaxed) - base)
}

/// Wraps a policy so it claims `StateNeeds::ALL` (the trait default):
/// this is exactly the pre-specialization fast engine, and serves as the
/// "before" side of the kernel comparison.
struct ForceFull(Box<dyn Dispatcher>);

impl Dispatcher for ForceFull {
    fn dispatch(&mut self, job: &Job, state: &SystemState<'_>, rng: &mut Rng64) -> usize {
        self.0.dispatch(job, state, rng)
    }
    fn name(&self) -> String {
        self.0.name()
    }
    fn reset(&mut self) {
        self.0.reset();
    }
}

/// Wraps a policy so it keeps its declared [`StateNeeds`] but reports no
/// dispatch kernel (`DispatchKernel::Opaque`, the trait default). The
/// engine then runs the pre-vectorization specialized loop — one virtual
/// `dispatch` call per job — which is the "scalar" side of the SIMD
/// kernel comparison (where [`ForceFull`] is the pre-*specialization*
/// engine).
struct ForceOpaque(Box<dyn Dispatcher>);

impl Dispatcher for ForceOpaque {
    fn dispatch(&mut self, job: &Job, state: &SystemState<'_>, rng: &mut Rng64) -> usize {
        self.0.dispatch(job, state, rng)
    }
    fn name(&self) -> String {
        self.0.name()
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn state_needs(&self) -> StateNeeds {
        self.0.state_needs()
    }
}

/// Fastest of `reps` timed runs, in seconds.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn records_bitwise_equal(a: &[JobRecord], b: &[JobRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.id == y.id
                && x.host == y.host
                && x.arrival.to_bits() == y.arrival.to_bits()
                && x.size.to_bits() == y.size.to_bits()
                && x.start.to_bits() == y.start.to_bits()
                && x.completion.to_bits() == y.completion.to_bits()
        })
}

struct KernelRow {
    policy: &'static str,
    loop_kind: &'static str,
    full_jps: f64,
    specialized_jps: f64,
    identical: bool,
}

/// Section 2: specialized kernels vs the full-state loop, per policy.
fn kernel_bench(smoke: bool) -> Vec<KernelRow> {
    let preset = dses_workload::psc_c90();
    let hosts = 8;
    let jobs = if smoke { 4_000 } else { 200_000 };
    let reps = if smoke { 1 } else { 3 };
    let trace = preset.trace(jobs, 0.7, hosts, 1997);
    let cutoffs = sita_e_cutoffs(&preset.size_dist, hosts).expect("SITA-E cutoffs");
    println!("kernel specialization: {hosts} hosts, {jobs} jobs, C90 at rho=0.7");

    type Builder<'a> = Box<dyn Fn() -> Box<dyn Dispatcher> + 'a>;
    let builders: Vec<(&'static str, &'static str, Builder<'_>)> = vec![
        ("Random", "static", Box::new(|| Box::new(RandomPolicy))),
        (
            "Round-Robin",
            "static",
            Box::new(|| Box::new(RoundRobin::default())),
        ),
        (
            "SITA-E",
            "static",
            Box::new(|| Box::new(SizeInterval::new(cutoffs.clone(), "SITA-E"))),
        ),
        (
            "Least-Work-Left",
            "work-left",
            Box::new(|| Box::new(LeastWorkLeft)),
        ),
        (
            "Shortest-Queue",
            "queue-len",
            Box::new(|| Box::new(ShortestQueue)),
        ),
    ];

    let mut rows = Vec::new();
    for (name, loop_kind, build) in &builders {
        let mut specialized = build();
        let spec_secs = best_of(reps, || {
            simulate_dispatch(&trace, hosts, specialized.as_mut(), 7, MetricsConfig::streaming())
        });
        let mut full = ForceFull(build());
        let full_secs = best_of(reps, || {
            simulate_dispatch(&trace, hosts, &mut full, 7, MetricsConfig::streaming())
        });
        // correctness: the specialized loop must produce the identical
        // schedule, record for record
        let a = simulate_dispatch(
            &trace,
            hosts,
            build().as_mut(),
            7,
            MetricsConfig::full_records(),
        );
        let b = simulate_dispatch(
            &trace,
            hosts,
            &mut ForceFull(build()),
            7,
            MetricsConfig::full_records(),
        );
        let identical =
            records_bitwise_equal(a.records.as_deref().unwrap(), b.records.as_deref().unwrap());
        let row = KernelRow {
            policy: name,
            loop_kind,
            full_jps: jobs as f64 / full_secs,
            specialized_jps: jobs as f64 / spec_secs,
            identical,
        };
        println!(
            "  {:<16} {:<9} full {:>10}/s  specialized {:>10}/s  ({:.2}x, identical: {})",
            row.policy,
            row.loop_kind,
            fmt_rate(row.full_jps),
            fmt_rate(row.specialized_jps),
            row.specialized_jps / row.full_jps,
            row.identical
        );
        rows.push(row);
    }
    rows
}

/// The queue-length kernel's headline row for `BENCH_pool.json`. Its
/// per-arrival expiry check is O(1) — a tournament heap over the FIFO
/// deque fronts — where the full loop scans every host's completion
/// heap, so the win grows with host count: measured at 16 hosts and
/// rho = 0.8 (the 8-host rho = 0.7 row stays in the kernel table for
/// continuity with earlier reports).
fn sq_kernel_bench(smoke: bool) -> KernelRow {
    let preset = dses_workload::psc_c90();
    let hosts = 16;
    let jobs = if smoke { 6_000 } else { 200_000 };
    let reps = if smoke { 2 } else { 5 };
    let trace = preset.trace(jobs, 0.8, hosts, 1997);
    println!("queue-length kernel at scale: {hosts} hosts, {jobs} jobs, C90 at rho=0.8");
    let spec_secs = best_of(reps, || {
        simulate_dispatch(&trace, hosts, &mut ShortestQueue, 7, MetricsConfig::streaming())
    });
    let full_secs = best_of(reps, || {
        let mut full = ForceFull(Box::new(ShortestQueue));
        simulate_dispatch(&trace, hosts, &mut full, 7, MetricsConfig::streaming())
    });
    let a = simulate_dispatch(&trace, hosts, &mut ShortestQueue, 7, MetricsConfig::full_records());
    let b = {
        let mut full = ForceFull(Box::new(ShortestQueue));
        simulate_dispatch(&trace, hosts, &mut full, 7, MetricsConfig::full_records())
    };
    let identical =
        records_bitwise_equal(a.records.as_deref().unwrap(), b.records.as_deref().unwrap());
    let row = KernelRow {
        policy: "Shortest-Queue",
        loop_kind: "queue-len",
        full_jps: jobs as f64 / full_secs,
        specialized_jps: jobs as f64 / spec_secs,
        identical,
    };
    println!(
        "  full-heap {:>10}/s  fifo-deque {:>10}/s  ({:.2}x, identical: {})",
        fmt_rate(row.full_jps),
        fmt_rate(row.specialized_jps),
        row.specialized_jps / row.full_jps,
        row.identical
    );
    row
}

fn sim_results_bitwise_equal(a: &[SimResult], b: &[SimResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.measured == y.measured
                && x.slowdown.mean.to_bits() == y.slowdown.mean.to_bits()
                && x.slowdown.variance.to_bits() == y.slowdown.variance.to_bits()
                && x.response.mean.to_bits() == y.response.mean.to_bits()
                && x.makespan.to_bits() == y.makespan.to_bits()
        })
}

struct PoolBench {
    tasks: usize,
    jobs_per_task: usize,
    workers: usize,
    scoped_secs: f64,
    pooled_secs: f64,
    identical: bool,
}

/// Section 4: the persistent worker pool vs spawning a scoped thread
/// team per batch — the same grid of independent simulation runs through
/// both executors.
fn pool_bench(smoke: bool) -> PoolBench {
    let preset = dses_workload::psc_c90();
    let jobs = if smoke { 1_500 } else { 20_000 };
    let tasks = if smoke { 16 } else { 64 };
    let reps = if smoke { 1 } else { 3 };
    let workers = available_workers();
    let trace = Arc::new(preset.trace(jobs, 0.7, 2, 1997));
    println!("worker pool vs scoped spawn: {tasks} runs x {jobs} jobs, {workers} workers");
    let run_one = |i: usize, trace: &Trace| {
        simulate_dispatch(trace, 2, &mut LeastWorkLeft, i as u64, MetricsConfig::streaming())
    };
    let scoped_secs = best_of(reps, || {
        par_map_indexed_scoped(tasks, workers, |i| run_one(i, &trace))
    });
    let pooled_secs = best_of(reps, || {
        let trace = Arc::clone(&trace);
        par_map_indexed(tasks, workers, move |i| run_one(i, &trace))
    });
    // correctness: sequential loop, scoped team, and pool must agree to
    // the bit (collection is by grid index in both executors)
    let reference: Vec<SimResult> = (0..tasks).map(|i| run_one(i, &trace)).collect();
    let scoped = par_map_indexed_scoped(tasks, workers, |i| run_one(i, &trace));
    let pooled = {
        let trace = Arc::clone(&trace);
        par_map_indexed(tasks, workers, move |i| run_one(i, &trace))
    };
    let identical = sim_results_bitwise_equal(&reference, &scoped)
        && sim_results_bitwise_equal(&reference, &pooled);
    let bench = PoolBench {
        tasks,
        jobs_per_task: jobs,
        workers,
        scoped_secs,
        pooled_secs,
        identical,
    };
    println!(
        "  scoped spawn {:>10}/batch  pool {:>10}/batch  ({:.2}x, identical: {})",
        fmt_duration(std::time::Duration::from_secs_f64(bench.scoped_secs)),
        fmt_duration(std::time::Duration::from_secs_f64(bench.pooled_secs)),
        bench.scoped_secs / bench.pooled_secs,
        bench.identical
    );
    bench
}

struct WorkspaceBench {
    jobs: usize,
    hosts: usize,
    fresh_jps: f64,
    reused_jps: f64,
    steady_allocs_per_run: usize,
    identical: bool,
}

/// Section 5: `simulate_dispatch_into` through one long-lived
/// [`SimWorkspace`] vs a freshly allocated workspace per run, plus the
/// headline claim: a reused workspace performs **zero** heap allocations
/// per run in steady state (streaming metrics), measured by the counting
/// allocator.
fn workspace_bench(smoke: bool) -> WorkspaceBench {
    let preset = dses_workload::psc_c90();
    let jobs = if smoke { 4_000 } else { 200_000 };
    let reps = if smoke { 1 } else { 3 };
    let hosts = 4;
    let trace = preset.trace(jobs, 0.7, hosts, 1997);
    println!("workspace reuse: {hosts} hosts, {jobs} jobs, streaming metrics");

    let fresh_secs = best_of(reps, || {
        let mut ws = SimWorkspace::new();
        let mut out = SimResult::empty();
        simulate_dispatch_into(
            &trace,
            hosts,
            &mut LeastWorkLeft,
            7,
            MetricsConfig::streaming(),
            &mut ws,
            &mut out,
        );
        out.measured
    });

    let mut ws = SimWorkspace::new();
    let mut out = SimResult::empty();
    let mut sq = ShortestQueue;
    // warm the workspace to this shape once (both kernels), then measure
    simulate_dispatch_into(&trace, hosts, &mut LeastWorkLeft, 7, MetricsConfig::streaming(), &mut ws, &mut out);
    simulate_dispatch_into(&trace, hosts, &mut sq, 7, MetricsConfig::streaming(), &mut ws, &mut out);
    let reused_secs = best_of(reps, || {
        simulate_dispatch_into(
            &trace,
            hosts,
            &mut LeastWorkLeft,
            7,
            MetricsConfig::streaming(),
            &mut ws,
            &mut out,
        );
        out.measured
    });

    // the zero-allocation claim: steady-state runs through the warmed
    // workspace — work-left and queue-length kernels alike — must not
    // touch the allocator at all
    let count_runs = if smoke { 2 } else { 5 };
    let (_, allocs) = alloc_count_of(|| {
        for _ in 0..count_runs {
            simulate_dispatch_into(&trace, hosts, &mut LeastWorkLeft, 7, MetricsConfig::streaming(), &mut ws, &mut out);
            simulate_dispatch_into(&trace, hosts, &mut sq, 7, MetricsConfig::streaming(), &mut ws, &mut out);
        }
    });
    let steady_allocs_per_run = allocs / (2 * count_runs);

    // correctness: a run through the well-used workspace must equal a
    // fresh-workspace run record-for-record
    let identical = {
        let mut fresh_ws = SimWorkspace::new();
        let mut fresh_out = SimResult::empty();
        simulate_dispatch_into(&trace, hosts, &mut sq, 7, MetricsConfig::full_records(), &mut fresh_ws, &mut fresh_out);
        simulate_dispatch_into(&trace, hosts, &mut sq, 7, MetricsConfig::full_records(), &mut ws, &mut out);
        records_bitwise_equal(
            fresh_out.records.as_deref().unwrap(),
            out.records.as_deref().unwrap(),
        )
    };

    let bench = WorkspaceBench {
        jobs,
        hosts,
        fresh_jps: jobs as f64 / fresh_secs,
        reused_jps: jobs as f64 / reused_secs,
        steady_allocs_per_run,
        identical,
    };
    println!(
        "  fresh workspace {:>10}/s  reused {:>10}/s  ({:.2}x, identical: {})",
        fmt_rate(bench.fresh_jps),
        fmt_rate(bench.reused_jps),
        bench.reused_jps / bench.fresh_jps,
        bench.identical
    );
    println!(
        "  steady-state allocations per run (counted over {} runs): {}",
        2 * count_runs,
        bench.steady_allocs_per_run
    );
    bench
}

/// Replication lanes per fused pass in the SIMD section (matches the
/// `Experiment::replicate` fuse width).
const SIMD_LANES: usize = 8;

struct SimdRow {
    policy: &'static str,
    hosts: usize,
    scalar_jps: f64,
    vectorized_jps: f64,
    fused_jps: f64,
    identical: bool,
    vectorized_allocs: usize,
    fused_allocs: usize,
}

/// Section 6: the vectorizable static/work-left kernels and the fused
/// replication pass, against the scalar (opaque-kernel) specialized loop
/// — per policy, across host counts, with record-level identity and the
/// zero-allocation gate on both new paths. The h = 1024 column doubles
/// as the workspace-sizing audit: a warmed workspace must not touch the
/// allocator even with kilobyte-scale host banks and lane banks.
fn simd_bench(smoke: bool) -> Vec<SimdRow> {
    let preset = dses_workload::psc_c90();
    let jobs = if smoke { 4_000 } else { 400_000 };
    let id_jobs = if smoke { 4_000 } else { 50_000 };
    let reps = if smoke { 1 } else { 5 };
    let count_runs = if smoke { 2 } else { 5 };
    println!(
        "simd kernels: scalar (opaque) vs vectorized vs fused x{SIMD_LANES}, {jobs} jobs, C90 at rho=0.7"
    );

    let mut rows = Vec::new();
    for &hosts in &[8usize, 64, 1024] {
        let trace = preset.trace(jobs, 0.7, hosts, 1997);
        let id_trace = preset.trace(id_jobs, 0.7, hosts, 1998);
        let cutoffs = sita_e_cutoffs(&preset.size_dist, hosts).expect("SITA-E cutoffs");
        type Builder<'a> = Box<dyn Fn() -> Box<dyn Dispatcher> + 'a>;
        let builders: Vec<(&'static str, Builder<'_>)> = vec![
            ("Random", Box::new(|| Box::new(RandomPolicy))),
            ("Round-Robin", Box::new(|| Box::new(RoundRobin::default()))),
            (
                "SITA-E",
                Box::new(|| Box::new(SizeInterval::new(cutoffs.clone(), "SITA-E"))),
            ),
            ("Least-Work-Left", Box::new(|| Box::new(LeastWorkLeft))),
        ];
        for (name, build) in &builders {
            // --- timings ---
            let mut vect = build();
            let vect_secs = best_of(reps, || {
                simulate_dispatch(&trace, hosts, vect.as_mut(), 7, MetricsConfig::streaming())
            });
            let mut scal = ForceOpaque(build());
            let scal_secs = best_of(reps, || {
                simulate_dispatch(&trace, hosts, &mut scal, 7, MetricsConfig::streaming())
            });
            let traces = vec![&trace; SIMD_LANES];
            let seeds: Vec<u64> = (0..SIMD_LANES as u64).collect();
            let cfgs = vec![MetricsConfig::streaming(); SIMD_LANES];
            let mut policies: Vec<Box<dyn Dispatcher>> =
                (0..SIMD_LANES).map(|_| build()).collect();
            let mut fws = SimWorkspace::new();
            let mut fouts: Vec<SimResult> = Vec::new();
            simulate_dispatch_fused_into(
                &traces, hosts, &mut policies, &seeds, &cfgs, &mut fws, &mut fouts,
            );
            let fused_secs = best_of(reps, || {
                simulate_dispatch_fused_into(
                    &traces, hosts, &mut policies, &seeds, &cfgs, &mut fws, &mut fouts,
                );
                fouts[0].measured
            });

            // --- record-level identity: vectorized vs scalar vs full ---
            let a = simulate_dispatch(
                &id_trace,
                hosts,
                build().as_mut(),
                7,
                MetricsConfig::full_records(),
            );
            let b = simulate_dispatch(
                &id_trace,
                hosts,
                &mut ForceOpaque(build()),
                7,
                MetricsConfig::full_records(),
            );
            let c = simulate_dispatch(
                &id_trace,
                hosts,
                &mut ForceFull(build()),
                7,
                MetricsConfig::full_records(),
            );
            let mut identical = records_bitwise_equal(
                a.records.as_deref().unwrap(),
                b.records.as_deref().unwrap(),
            ) && records_bitwise_equal(
                a.records.as_deref().unwrap(),
                c.records.as_deref().unwrap(),
            );

            // --- fused identity: every lane equals its solo run ---
            let id_traces = vec![&id_trace; SIMD_LANES];
            let id_cfgs = vec![MetricsConfig::full_records(); SIMD_LANES];
            let mut id_policies: Vec<Box<dyn Dispatcher>> =
                (0..SIMD_LANES).map(|_| build()).collect();
            let mut id_outs: Vec<SimResult> = Vec::new();
            simulate_dispatch_fused_into(
                &id_traces,
                hosts,
                &mut id_policies,
                &seeds,
                &id_cfgs,
                &mut fws,
                &mut id_outs,
            );
            for (r, fused_out) in id_outs.iter().enumerate() {
                let solo = simulate_dispatch(
                    &id_trace,
                    hosts,
                    build().as_mut(),
                    seeds[r],
                    MetricsConfig::full_records(),
                );
                identical = identical
                    && records_bitwise_equal(
                        fused_out.records.as_deref().unwrap(),
                        solo.records.as_deref().unwrap(),
                    );
            }

            // --- zero-allocation gates on warmed workspaces ---
            let mut vws = SimWorkspace::new();
            let mut vout = SimResult::empty();
            simulate_dispatch_into(
                &trace,
                hosts,
                vect.as_mut(),
                7,
                MetricsConfig::streaming(),
                &mut vws,
                &mut vout,
            );
            let (_, v_allocs) = alloc_count_of(|| {
                for _ in 0..count_runs {
                    simulate_dispatch_into(
                        &trace,
                        hosts,
                        vect.as_mut(),
                        7,
                        MetricsConfig::streaming(),
                        &mut vws,
                        &mut vout,
                    );
                }
            });
            // fws last ran the full-records shape; re-warm to streaming
            simulate_dispatch_fused_into(
                &traces, hosts, &mut policies, &seeds, &cfgs, &mut fws, &mut fouts,
            );
            let (_, f_allocs) = alloc_count_of(|| {
                for _ in 0..count_runs {
                    simulate_dispatch_fused_into(
                        &traces, hosts, &mut policies, &seeds, &cfgs, &mut fws, &mut fouts,
                    );
                }
            });

            let row = SimdRow {
                policy: name,
                hosts,
                scalar_jps: jobs as f64 / scal_secs,
                vectorized_jps: jobs as f64 / vect_secs,
                fused_jps: (SIMD_LANES * jobs) as f64 / fused_secs,
                identical,
                vectorized_allocs: v_allocs / count_runs,
                fused_allocs: f_allocs / count_runs,
            };
            println!(
                "  h={:<5} {:<16} scalar {:>10}/s  vector {:>10}/s ({:.2}x)  fused x{} {:>10}/s ({:.2}x, identical: {}, allocs {}+{})",
                row.hosts,
                row.policy,
                fmt_rate(row.scalar_jps),
                fmt_rate(row.vectorized_jps),
                row.vectorized_jps / row.scalar_jps,
                SIMD_LANES,
                fmt_rate(row.fused_jps),
                row.fused_jps / row.scalar_jps,
                row.identical,
                row.vectorized_allocs,
                row.fused_allocs,
            );
            rows.push(row);
        }
    }
    rows
}

struct SegRow {
    policy: &'static str,
    hosts: usize,
    scalar_jps: f64,
    direct_jps: f64,
    segmented_jps: f64,
    fused_direct_jps: f64,
    fused_seg_jps: f64,
    identical: bool,
    segmented_allocs: usize,
    fused_allocs: usize,
}

/// Section 7: the two-phase segmented static kernels against the scalar
/// (opaque-kernel) loop and the direct vector kernel, solo and fused —
/// per static policy, across host counts, with both fused baselines
/// pinned (`Never` = lockstep fused loop, `Force` = segmented lanes) so
/// the Auto heuristic's choice is auditable. Identity is checked at
/// record level three ways (segmented vs direct vs full-state) and per
/// fused lane against its solo segmented run; both segmented paths must
/// pass the warmed zero-allocation gate. The h = 1024 SITA-E row is the
/// §11 cliff: `sita_pick` plus the segmented option are what turned it
/// from 0.28x scalar into a win.
fn segmented_bench(smoke: bool) -> Vec<SegRow> {
    let preset = dses_workload::psc_c90();
    let jobs = if smoke { 4_000 } else { 400_000 };
    let id_jobs = if smoke { 4_000 } else { 50_000 };
    let reps = if smoke { 1 } else { 5 };
    let count_runs = if smoke { 2 } else { 5 };
    println!(
        "segmented kernels: scalar vs direct vector vs segmented vs fused-segmented x{SIMD_LANES}, {jobs} jobs, C90 at rho=0.7"
    );

    let mut rows = Vec::new();
    for &hosts in &[8usize, 64, 1024] {
        let trace = preset.trace(jobs, 0.7, hosts, 2001);
        let id_trace = preset.trace(id_jobs, 0.7, hosts, 2002);
        let cutoffs = sita_e_cutoffs(&preset.size_dist, hosts).expect("SITA-E cutoffs");
        type Builder<'a> = Box<dyn Fn() -> Box<dyn Dispatcher> + 'a>;
        let builders: Vec<(&'static str, Builder<'_>)> = vec![
            ("Random", Box::new(|| Box::new(RandomPolicy))),
            ("Round-Robin", Box::new(|| Box::new(RoundRobin::default()))),
            (
                "SITA-E",
                Box::new(|| Box::new(SizeInterval::new(cutoffs.clone(), "SITA-E"))),
            ),
        ];
        for (name, build) in &builders {
            // --- timings, all vectorized paths through one shared warmed
            // workspace (the workspace is exactly what production sweeps
            // reuse across engines) ---
            let cfg = MetricsConfig::streaming();
            let mut ws = SimWorkspace::new();
            let mut out = SimResult::empty();

            let mut scal = ForceOpaque(build());
            let scal_secs =
                best_of(reps, || simulate_dispatch(&trace, hosts, &mut scal, 7, cfg));

            let mut direct = build();
            simulate_dispatch_unsegmented_into(
                &trace,
                hosts,
                direct.as_mut(),
                7,
                cfg,
                &mut ws,
                &mut out,
            );
            let direct_secs = best_of(reps, || {
                simulate_dispatch_unsegmented_into(
                    &trace,
                    hosts,
                    direct.as_mut(),
                    7,
                    cfg,
                    &mut ws,
                    &mut out,
                );
                out.measured
            });

            let mut seg = build();
            simulate_dispatch_segmented_into(
                &trace,
                hosts,
                seg.as_mut(),
                7,
                cfg,
                &mut ws,
                &mut out,
            );
            let seg_secs = best_of(reps, || {
                simulate_dispatch_segmented_into(
                    &trace,
                    hosts,
                    seg.as_mut(),
                    7,
                    cfg,
                    &mut ws,
                    &mut out,
                );
                out.measured
            });

            let traces = vec![&trace; SIMD_LANES];
            let seeds: Vec<u64> = (0..SIMD_LANES as u64).collect();
            let cfgs = vec![cfg; SIMD_LANES];
            let mut policies: Vec<Box<dyn Dispatcher>> =
                (0..SIMD_LANES).map(|_| build()).collect();
            let mut fouts: Vec<SimResult> = Vec::new();
            simulate_dispatch_fused_mode_into(
                &traces,
                hosts,
                &mut policies,
                &seeds,
                &cfgs,
                SegmentedMode::Force,
                &mut ws,
                &mut fouts,
            );
            let fused_secs = best_of(reps, || {
                simulate_dispatch_fused_mode_into(
                    &traces,
                    hosts,
                    &mut policies,
                    &seeds,
                    &cfgs,
                    SegmentedMode::Force,
                    &mut ws,
                    &mut fouts,
                );
                fouts[0].measured
            });
            simulate_dispatch_fused_mode_into(
                &traces,
                hosts,
                &mut policies,
                &seeds,
                &cfgs,
                SegmentedMode::Never,
                &mut ws,
                &mut fouts,
            );
            let fused_direct_secs = best_of(reps, || {
                simulate_dispatch_fused_mode_into(
                    &traces,
                    hosts,
                    &mut policies,
                    &seeds,
                    &cfgs,
                    SegmentedMode::Never,
                    &mut ws,
                    &mut fouts,
                );
                fouts[0].measured
            });

            // --- record-level identity: segmented vs direct vs full-state ---
            let full = MetricsConfig::full_records();
            let mut a = SimResult::empty();
            simulate_dispatch_segmented_into(
                &id_trace,
                hosts,
                build().as_mut(),
                7,
                full,
                &mut ws,
                &mut a,
            );
            let mut b = SimResult::empty();
            simulate_dispatch_unsegmented_into(
                &id_trace,
                hosts,
                build().as_mut(),
                7,
                full,
                &mut ws,
                &mut b,
            );
            let c = simulate_dispatch(&id_trace, hosts, &mut ForceFull(build()), 7, full);
            let mut identical = records_bitwise_equal(
                a.records.as_deref().unwrap(),
                b.records.as_deref().unwrap(),
            ) && records_bitwise_equal(
                a.records.as_deref().unwrap(),
                c.records.as_deref().unwrap(),
            );

            // --- fused-segmented identity: every lane equals its solo
            // segmented run ---
            let id_traces = vec![&id_trace; SIMD_LANES];
            let id_cfgs = vec![full; SIMD_LANES];
            let mut id_policies: Vec<Box<dyn Dispatcher>> =
                (0..SIMD_LANES).map(|_| build()).collect();
            let mut id_outs: Vec<SimResult> = Vec::new();
            simulate_dispatch_fused_mode_into(
                &id_traces,
                hosts,
                &mut id_policies,
                &seeds,
                &id_cfgs,
                SegmentedMode::Force,
                &mut ws,
                &mut id_outs,
            );
            let mut solo = SimResult::empty();
            for (r, fused_out) in id_outs.iter().enumerate() {
                simulate_dispatch_segmented_into(
                    &id_trace,
                    hosts,
                    build().as_mut(),
                    seeds[r],
                    full,
                    &mut ws,
                    &mut solo,
                );
                identical = identical
                    && records_bitwise_equal(
                        fused_out.records.as_deref().unwrap(),
                        solo.records.as_deref().unwrap(),
                    );
            }

            // --- zero-allocation gates on the warmed workspace ---
            // the workspace last ran the full-records shape; re-warm to
            // streaming before counting
            simulate_dispatch_segmented_into(
                &trace,
                hosts,
                seg.as_mut(),
                7,
                cfg,
                &mut ws,
                &mut out,
            );
            let (_, s_allocs) = alloc_count_of(|| {
                for _ in 0..count_runs {
                    simulate_dispatch_segmented_into(
                        &trace,
                        hosts,
                        seg.as_mut(),
                        7,
                        cfg,
                        &mut ws,
                        &mut out,
                    );
                }
            });
            simulate_dispatch_fused_mode_into(
                &traces,
                hosts,
                &mut policies,
                &seeds,
                &cfgs,
                SegmentedMode::Force,
                &mut ws,
                &mut fouts,
            );
            let (_, f_allocs) = alloc_count_of(|| {
                for _ in 0..count_runs {
                    simulate_dispatch_fused_mode_into(
                        &traces,
                        hosts,
                        &mut policies,
                        &seeds,
                        &cfgs,
                        SegmentedMode::Force,
                        &mut ws,
                        &mut fouts,
                    );
                }
            });

            let row = SegRow {
                policy: name,
                hosts,
                scalar_jps: jobs as f64 / scal_secs,
                direct_jps: jobs as f64 / direct_secs,
                segmented_jps: jobs as f64 / seg_secs,
                fused_direct_jps: (SIMD_LANES * jobs) as f64 / fused_direct_secs,
                fused_seg_jps: (SIMD_LANES * jobs) as f64 / fused_secs,
                identical,
                segmented_allocs: s_allocs / count_runs,
                fused_allocs: f_allocs / count_runs,
            };
            println!(
                "  h={:<5} {:<12} scalar {:>10}/s  direct {:>10}/s  segmented {:>10}/s ({:.2}x direct)  fused x{} {:>10}/s -> seg {:>10}/s ({:.2}x, identical: {}, allocs {}+{})",
                row.hosts,
                row.policy,
                fmt_rate(row.scalar_jps),
                fmt_rate(row.direct_jps),
                fmt_rate(row.segmented_jps),
                row.segmented_jps / row.direct_jps,
                SIMD_LANES,
                fmt_rate(row.fused_direct_jps),
                fmt_rate(row.fused_seg_jps),
                row.fused_seg_jps / row.fused_direct_jps,
                row.identical,
                row.segmented_allocs,
                row.fused_allocs,
            );
            rows.push(row);
        }
    }
    rows
}

struct MetricsRow {
    policy: &'static str,
    hosts: usize,
    full_jps: f64,
    means_jps: f64,
    batched_jps: f64,
    identical: bool,
    ulp_ok: bool,
    means_allocs: usize,
    batched_allocs: usize,
}

/// Bitwise equality of the demanded core of a moment stream: count,
/// mean, and variance. Extrema are deliberately excluded — the MEANS
/// tier reports them as deterministic empties.
fn moments_core_equal(a: &Moments, b: &Moments) -> bool {
    a.count == b.count
        && a.mean.to_bits() == b.mean.to_bits()
        && a.variance.to_bits() == b.variance.to_bits()
}

/// `value` within `rel` relative error of the scalar reference `against`
/// (tiny absolute floor so exact-zero streams compare cleanly).
fn within_rel(value: f64, against: f64, rel: f64) -> bool {
    let err = (value - against).abs();
    err <= rel * against.abs().max(1e-300) || err <= 1e-12
}

/// The documented block-merge contract: counts and extrema exact, mean
/// within 1e-12 relative, variance within 1e-9 relative of the scalar
/// Welford stream.
fn moments_block_close(a: &Moments, b: &Moments) -> bool {
    a.count == b.count
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
        && within_rel(a.mean, b.mean, 1e-12)
        && within_rel(a.variance, b.variance, 1e-9)
}

/// Section 8: the collector's demand tiers — the full record path vs the
/// MEANS-slimmed path vs the block-batched merge — per static policy at
/// h = 8 and h = 1024. Three gates: the full-demand tier must stay
/// record-bitwise identical to the full-state loop, the MEANS tier must
/// reproduce every demanded field bit-for-bit (undemanded fields read as
/// deterministic empties), and the batched tier must land inside its
/// documented ulp bounds (exact counts/extrema/per-host/makespan, mean
/// within 1e-12, variance within 1e-9). Both slim tiers must also pass
/// the warmed zero-allocation gate.
fn metrics_bench(smoke: bool) -> Vec<MetricsRow> {
    let preset = dses_workload::psc_c90();
    let jobs = if smoke { 4_000 } else { 400_000 };
    let id_jobs = if smoke { 4_000 } else { 50_000 };
    let reps = if smoke { 1 } else { 5 };
    let count_runs = if smoke { 2 } else { 5 };
    println!(
        "collector tiers: {} vs {} (demand-slimmed) vs block-batched, {jobs} jobs, C90 at rho=0.7",
        metrics_mode_label(MetricsMode::Full),
        metrics_mode_label(MetricsMode::Means),
    );

    let full_cfg = MetricsConfig::streaming();
    let means_cfg = MetricsConfig {
        demand: Demand::MEANS,
        ..full_cfg
    };
    // timing shape: the batched tier is a throughput knob, so it is
    // benchmarked at MEANS demand; the ulp gate below re-runs it at full
    // demand so extrema and per-host exactness are checked too
    let batched_cfg = MetricsConfig {
        demand: Demand::MEANS,
        batched: true,
        ..full_cfg
    };
    let batched_full_cfg = MetricsConfig {
        batched: true,
        ..full_cfg
    };

    let mut rows = Vec::new();
    for &hosts in &[8usize, 1024] {
        let trace = preset.trace(jobs, 0.7, hosts, 2003);
        let id_trace = preset.trace(id_jobs, 0.7, hosts, 2004);
        let cutoffs = sita_e_cutoffs(&preset.size_dist, hosts).expect("SITA-E cutoffs");
        type Builder<'a> = Box<dyn Fn() -> Box<dyn Dispatcher> + 'a>;
        let builders: Vec<(&'static str, Builder<'_>)> = vec![
            ("Random", Box::new(|| Box::new(RandomPolicy))),
            (
                "SITA-E",
                Box::new(|| Box::new(SizeInterval::new(cutoffs.clone(), "SITA-E"))),
            ),
        ];
        for (name, build) in &builders {
            // --- timings: the same policy and trace through the same
            // warmed workspace, only the collector tier varies ---
            let mut ws = SimWorkspace::new();
            let mut out = SimResult::empty();
            let mut pol = build();
            let mut time_cfg = |cfg: MetricsConfig| {
                simulate_dispatch_into(&trace, hosts, pol.as_mut(), 7, cfg, &mut ws, &mut out);
                best_of(reps, || {
                    simulate_dispatch_into(&trace, hosts, pol.as_mut(), 7, cfg, &mut ws, &mut out);
                    out.measured
                })
            };
            let full_secs = time_cfg(full_cfg);
            let means_secs = time_cfg(means_cfg);
            let batched_secs = time_cfg(batched_cfg);

            // --- full-demand identity: record-bitwise vs the full-state
            // loop (the tiering must not perturb the default path) ---
            let recs = MetricsConfig::full_records();
            let mut a = SimResult::empty();
            simulate_dispatch_into(&id_trace, hosts, build().as_mut(), 7, recs, &mut ws, &mut a);
            let b = simulate_dispatch(&id_trace, hosts, &mut ForceFull(build()), 7, recs);
            let mut identical = records_bitwise_equal(
                a.records.as_deref().unwrap(),
                b.records.as_deref().unwrap(),
            );

            // --- MEANS-tier identity: demanded fields bit-for-bit,
            // undemanded fields deterministic empties ---
            let mut f = SimResult::empty();
            simulate_dispatch_into(&id_trace, hosts, build().as_mut(), 7, full_cfg, &mut ws, &mut f);
            let mut m = SimResult::empty();
            simulate_dispatch_into(&id_trace, hosts, build().as_mut(), 7, means_cfg, &mut ws, &mut m);
            identical = identical
                && moments_core_equal(&m.slowdown, &f.slowdown)
                && moments_core_equal(&m.queueing_slowdown, &f.queueing_slowdown)
                && moments_core_equal(&m.response, &f.response)
                && moments_core_equal(&m.waiting, &f.waiting)
                && m.makespan.to_bits() == f.makespan.to_bits()
                && m.measured == f.measured
                && m.per_host.iter().all(|h| h.jobs == 0 && h.work.to_bits() == 0);

            // --- batched ulp gate at full demand: counts, extrema,
            // per-host tallies, and makespan exact; mean/variance inside
            // the documented merge bounds ---
            let mut bt = SimResult::empty();
            simulate_dispatch_into(
                &id_trace,
                hosts,
                build().as_mut(),
                7,
                batched_full_cfg,
                &mut ws,
                &mut bt,
            );
            let ulp_ok = moments_block_close(&bt.slowdown, &f.slowdown)
                && moments_block_close(&bt.queueing_slowdown, &f.queueing_slowdown)
                && moments_block_close(&bt.response, &f.response)
                && moments_block_close(&bt.waiting, &f.waiting)
                && bt.makespan.to_bits() == f.makespan.to_bits()
                && bt.measured == f.measured
                && bt.per_host.len() == f.per_host.len()
                && bt
                    .per_host
                    .iter()
                    .zip(&f.per_host)
                    .all(|(x, y)| x.jobs == y.jobs && x.work.to_bits() == y.work.to_bits());

            // --- zero-allocation gates on the warmed workspace ---
            simulate_dispatch_into(&trace, hosts, pol.as_mut(), 7, means_cfg, &mut ws, &mut out);
            let (_, m_allocs) = alloc_count_of(|| {
                for _ in 0..count_runs {
                    simulate_dispatch_into(
                        &trace, hosts, pol.as_mut(), 7, means_cfg, &mut ws, &mut out,
                    );
                }
            });
            simulate_dispatch_into(&trace, hosts, pol.as_mut(), 7, batched_cfg, &mut ws, &mut out);
            let (_, b_allocs) = alloc_count_of(|| {
                for _ in 0..count_runs {
                    simulate_dispatch_into(
                        &trace, hosts, pol.as_mut(), 7, batched_cfg, &mut ws, &mut out,
                    );
                }
            });

            let row = MetricsRow {
                policy: name,
                hosts,
                full_jps: jobs as f64 / full_secs,
                means_jps: jobs as f64 / means_secs,
                batched_jps: jobs as f64 / batched_secs,
                identical,
                ulp_ok,
                means_allocs: m_allocs / count_runs,
                batched_allocs: b_allocs / count_runs,
            };
            println!(
                "  h={:<5} {:<8} full {:>10}/s  means {:>10}/s ({:.2}x)  batched {:>10}/s ({:.2}x)  identical: {}  ulp_ok: {}  allocs {}+{}",
                row.hosts,
                row.policy,
                fmt_rate(row.full_jps),
                fmt_rate(row.means_jps),
                row.means_jps / row.full_jps,
                fmt_rate(row.batched_jps),
                row.batched_jps / row.full_jps,
                row.identical,
                row.ulp_ok,
                row.means_allocs,
                row.batched_allocs,
            );
            rows.push(row);
        }
    }
    rows
}

struct ScalingCell {
    hosts: usize,
    threads: usize,
    jps: f64,
}

/// The thread-scaling × host-count table: a batch of independent Random
/// runs fanned over the worker pool at increasing worker counts, per
/// host count. Prints a cargo-tally-style table and reports where
/// scaling stops (the smallest worker count within 5 % of the best
/// throughput) — on a single-core container that is honestly 1.
fn thread_scaling_bench(smoke: bool) -> Vec<ScalingCell> {
    let preset = dses_workload::psc_c90();
    let jobs = if smoke { 2_000 } else { 50_000 };
    let tasks = if smoke { 8 } else { 32 };
    let reps = if smoke { 1 } else { 3 };
    let cores = available_workers();
    println!(
        "thread scaling x hosts: {tasks} Random runs x {jobs} jobs ({cores} cores available)"
    );
    println!("  | hosts | threads | jobs/s     | vs 1 thread |");
    println!("  |-------|---------|------------|-------------|");
    let mut cells = Vec::new();
    for &hosts in &[8usize, 64, 1024] {
        let trace = Arc::new(preset.trace(jobs, 0.7, hosts, 1997));
        let mut base_jps = 0.0f64;
        for &threads in &[1usize, 2, 4, 8] {
            let secs = best_of(reps, || {
                let trace = Arc::clone(&trace);
                par_map_indexed(tasks, threads, move |i| {
                    simulate_dispatch(
                        &trace,
                        hosts,
                        &mut RandomPolicy,
                        i as u64,
                        MetricsConfig::streaming(),
                    )
                })
            });
            let jps = (tasks * jobs) as f64 / secs;
            if threads == 1 {
                base_jps = jps;
            }
            println!(
                "  | {:>5} | {:>7} | {:>10} | {:>10.2}x |",
                hosts,
                threads,
                fmt_rate(jps),
                jps / base_jps
            );
            cells.push(ScalingCell { hosts, threads, jps });
        }
    }
    cells
}

/// Smallest worker count within 5 % of the best throughput for `hosts` —
/// past this, adding threads buys nothing.
fn scaling_stop(cells: &[ScalingCell], hosts: usize) -> usize {
    let best = cells
        .iter()
        .filter(|c| c.hosts == hosts)
        .map(|c| c.jps)
        .fold(0.0f64, f64::max);
    cells
        .iter()
        .filter(|c| c.hosts == hosts && c.jps >= 0.95 * best)
        .map(|c| c.threads)
        .min()
        .unwrap_or(1)
}

/// [`BoundedPareto`] with its closed-form moments hidden: only
/// `sample`/`support`/`cdf`/`quantile` are supplied, so every partial and
/// raw moment falls back to the trait's quantile-space quadrature. This
/// is the bench stand-in for any user-supplied distribution that provides
/// a CDF model but no analytic moments — the class the solver cache
/// exists for.
#[derive(Debug)]
struct NumericOnly(BoundedPareto);

impl Distribution for NumericOnly {
    fn sample(&self, rng: &mut Rng64) -> f64 {
        self.0.sample(rng)
    }
    fn support(&self) -> (f64, f64) {
        self.0.support()
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.0.quantile(p)
    }
}

struct CutoffDistBench {
    dist: &'static str,
    /// Which side `resolve_cutoff` actually takes for this distribution:
    /// "raw" when moments come in closed form (the memo would only add
    /// hash-and-lock overhead), "memoized" for quadrature-fallback dists.
    production: &'static str,
    opt_raw_solves_per_sec: f64,
    opt_cached_solves_per_sec: f64,
    fair_raw_solves_per_sec: f64,
    fair_cached_solves_per_sec: f64,
    identical: bool,
}

struct CutoffBench {
    dists: Vec<CutoffDistBench>,
    multi_opt_secs: f64,
    identical: bool,
}

fn cutoff_dist_bench<D: Distribution>(
    name: &'static str,
    d: &D,
    reps: usize,
) -> CutoffDistBench {
    let lambda = 1.4 / d.mean(); // rho = 0.7 on 2 hosts
    let opt_raw = best_of(reps, || sita_u_opt_cutoff(d, lambda).unwrap());
    let opt_cached = best_of(reps, || {
        let cached = TruncatedMoments::new(d);
        sita_u_opt_cutoff(&cached, lambda).unwrap()
    });
    let fair_raw = best_of(reps, || sita_u_fair_cutoff(d, lambda).unwrap());
    let fair_cached = best_of(reps, || {
        let cached = TruncatedMoments::new(d);
        sita_u_fair_cutoff(&cached, lambda).unwrap()
    });
    // correctness: the memoized solve must return the identical cutoff
    let identical = sita_u_opt_cutoff(d, lambda).unwrap().to_bits()
        == sita_u_opt_cutoff(&TruncatedMoments::new(d), lambda).unwrap().to_bits()
        && sita_u_fair_cutoff(d, lambda).unwrap().to_bits()
            == sita_u_fair_cutoff(&TruncatedMoments::new(d), lambda).unwrap().to_bits();
    let bench = CutoffDistBench {
        dist: name,
        production: if d.closed_form_moments() { "raw" } else { "memoized" },
        opt_raw_solves_per_sec: 1.0 / opt_raw,
        opt_cached_solves_per_sec: 1.0 / opt_cached,
        fair_raw_solves_per_sec: 1.0 / fair_raw,
        fair_cached_solves_per_sec: 1.0 / fair_cached,
        identical,
    };
    println!(
        "  {:<24} opt:  raw {:>9.1} solves/s, cached {:>9.1} solves/s ({:.2}x, production: {})",
        name,
        bench.opt_raw_solves_per_sec,
        bench.opt_cached_solves_per_sec,
        bench.opt_cached_solves_per_sec / bench.opt_raw_solves_per_sec,
        bench.production
    );
    println!(
        "  {:<24} fair: raw {:>9.1} solves/s, cached {:>9.1} solves/s ({:.2}x, identical: {})",
        name,
        bench.fair_raw_solves_per_sec,
        bench.fair_cached_solves_per_sec,
        bench.fair_cached_solves_per_sec / bench.fair_raw_solves_per_sec,
        bench.identical
    );
    bench
}

/// Section 3: SITA-U cutoff solves on the raw distribution vs through a
/// fresh [`TruncatedMoments`] view per solve (what `resolve_cutoff` does).
///
/// Two distribution classes: the production C90 mixture (closed-form
/// moments — queries are tens of nanoseconds, so the cache is expected to
/// be roughly neutral there) and a numeric-fallback Bounded Pareto whose
/// moments cost hundreds of microseconds each — the case the cache is
/// for.
fn cutoff_bench(smoke: bool) -> CutoffBench {
    println!("cutoff solvers: rho=0.7, raw vs fresh memoized view per solve");
    let mix = dses_workload::psc_c90().size_dist;
    let mut dists = vec![cutoff_dist_bench(
        "c90-mixture",
        &mix,
        if smoke { 2 } else { 12 },
    )];
    let numeric = NumericOnly(BoundedPareto::new(1.0, 1.0e7, 1.1).expect("valid BP"));
    if smoke {
        // a single numeric-fallback solve takes ~0.3 s — too slow for the
        // smoke gate, but the identity check is cheap enough via fair
        let lambda = 1.4 / numeric.mean();
        let identical = sita_u_fair_cutoff(&numeric, lambda).unwrap().to_bits()
            == sita_u_fair_cutoff(&TruncatedMoments::new(&numeric), lambda)
                .unwrap()
                .to_bits();
        println!("  numeric-bounded-pareto   fair identity only (smoke): {identical}");
        dists.push(CutoffDistBench {
            dist: "numeric-bounded-pareto",
            production: "memoized",
            opt_raw_solves_per_sec: f64::NAN,
            opt_cached_solves_per_sec: f64::NAN,
            fair_raw_solves_per_sec: f64::NAN,
            fair_cached_solves_per_sec: f64::NAN,
            identical,
        });
    } else {
        dists.push(cutoff_dist_bench("numeric-bounded-pareto", &numeric, 3));
    }

    // the multi-host solver memoizes internally; report its absolute cost
    let lambda4 = 0.7 * 4.0 / mix.mean();
    let multi_opt_secs = best_of(if smoke { 1 } else { 3 }, || {
        sita_u_opt_cutoffs_multi(&mix, lambda4, 4).unwrap()
    });
    println!("  SITA-U-opt 4 hosts (c90, memoized internally): {multi_opt_secs:.4}s/solve");

    let identical = dists.iter().all(|b| b.identical);
    CutoffBench {
        dists,
        multi_opt_secs,
        identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let preset = dses_workload::psc_c90();
    let specs = [
        PolicySpec::Random,
        PolicySpec::LeastWorkLeft,
        PolicySpec::SitaE,
        PolicySpec::SitaUFair,
    ];
    let loads = if smoke {
        vec![0.5, 0.7, 0.9]
    } else {
        load_grid()
    };
    let jobs_per_point = if smoke { 3_000 } else { 40_000 };
    let total_jobs = (jobs_per_point * specs.len() * loads.len()) as u64;
    let workers = available_workers();
    let base = Experiment::new(preset.size_dist.clone())
        .hosts(2)
        .jobs(jobs_per_point)
        .warmup_jobs(if smoke { 100 } else { 1_000 })
        .seed(1997);

    println!(
        "perf_report{}: {} policies x {} loads, {jobs_per_point} jobs/point, {workers} cores",
        if smoke { " (smoke)" } else { "" },
        specs.len(),
        loads.len()
    );

    let start = Instant::now();
    let sequential = base.clone().threads(1).sweep_grid(&specs, &loads);
    let seq_secs = start.elapsed().as_secs_f64();
    println!("  sequential (1 thread):  {:>10}   {:>10}/s", fmt_duration(start.elapsed()), fmt_rate(total_jobs as f64 / seq_secs));

    let start = Instant::now();
    let parallel = base.clone().threads(0).sweep_grid(&specs, &loads);
    let par_secs = start.elapsed().as_secs_f64();
    println!("  parallel  ({workers} threads): {:>10}   {:>10}/s", fmt_duration(start.elapsed()), fmt_rate(total_jobs as f64 / par_secs));

    // Bit-for-bit check, not just a timing: the parallel grid must be the
    // sequential grid.
    let sweep_identical = sequential
        .iter()
        .zip(&parallel)
        .all(|(a, b)| {
            a.policy == b.policy
                && a.points.iter().zip(&b.points).all(|(x, y)| {
                    x.mean_slowdown.to_bits() == y.mean_slowdown.to_bits()
                        && x.var_slowdown.to_bits() == y.var_slowdown.to_bits()
                        && x.measured == y.measured
                })
        });
    let speedup = seq_secs / par_secs;
    println!("  speedup {speedup:.2}x, results identical: {sweep_identical}");

    // Streaming vs full-record metrics: same trace, same policy, measure
    // peak heap growth of the run itself.
    let trace = base.trace(0.7);
    let (_, peak_streaming) = peak_heap_of(|| {
        let mut p = LeastWorkLeft;
        simulate_dispatch(&trace, 2, &mut p, 0, MetricsConfig::streaming())
    });
    let (_, peak_records) = peak_heap_of(|| {
        let mut p = LeastWorkLeft;
        simulate_dispatch(&trace, 2, &mut p, 0, MetricsConfig::full_records())
    });
    println!(
        "  peak heap per run: streaming {} B, full records {} B ({:.1}x)",
        peak_streaming,
        peak_records,
        peak_records as f64 / peak_streaming.max(1) as f64
    );

    let kernels = kernel_bench(smoke);
    let cutoffs = cutoff_bench(smoke);
    let pool = pool_bench(smoke);
    let workspace = workspace_bench(smoke);
    let sq = sq_kernel_bench(smoke);
    let simd = simd_bench(smoke);
    let segmented = segmented_bench(smoke);
    let metrics = metrics_bench(smoke);
    let scaling = if smoke { Vec::new() } else { thread_scaling_bench(smoke) };

    let kernels_identical = kernels.iter().all(|r| r.identical) && sq.identical;
    let simd_identical = simd.iter().all(|r| r.identical);
    let simd_zero_alloc = simd
        .iter()
        .all(|r| r.vectorized_allocs == 0 && r.fused_allocs == 0);
    let segmented_identical = segmented.iter().all(|r| r.identical);
    let segmented_zero_alloc = segmented
        .iter()
        .all(|r| r.segmented_allocs == 0 && r.fused_allocs == 0);
    let metrics_identical = metrics.iter().all(|r| r.identical);
    let metrics_ulp_ok = metrics.iter().all(|r| r.ulp_ok);
    let metrics_zero_alloc = metrics
        .iter()
        .all(|r| r.means_allocs == 0 && r.batched_allocs == 0);
    let zero_alloc = workspace.steady_allocs_per_run == 0;
    if !zero_alloc {
        eprintln!(
            "ERROR: reused workspace performed {} allocations per steady-state run (expected 0)",
            workspace.steady_allocs_per_run
        );
    }
    if !simd_zero_alloc {
        for r in simd.iter().filter(|r| r.vectorized_allocs != 0 || r.fused_allocs != 0) {
            eprintln!(
                "ERROR: {} at h={} allocated in steady state (vectorized {}, fused {})",
                r.policy, r.hosts, r.vectorized_allocs, r.fused_allocs
            );
        }
    }
    if !segmented_identical {
        for r in segmented.iter().filter(|r| !r.identical) {
            eprintln!(
                "ERROR: segmented {} at h={} diverged from the direct kernel",
                r.policy, r.hosts
            );
        }
    }
    if !segmented_zero_alloc {
        for r in segmented
            .iter()
            .filter(|r| r.segmented_allocs != 0 || r.fused_allocs != 0)
        {
            eprintln!(
                "ERROR: segmented {} at h={} allocated in steady state (solo {}, fused {})",
                r.policy, r.hosts, r.segmented_allocs, r.fused_allocs
            );
        }
    }
    if !metrics_identical {
        for r in metrics.iter().filter(|r| !r.identical) {
            eprintln!(
                "ERROR: collector tier for {} at h={} diverged from the full record path",
                r.policy, r.hosts
            );
        }
    }
    if !metrics_ulp_ok {
        for r in metrics.iter().filter(|r| !r.ulp_ok) {
            eprintln!(
                "ERROR: batched collector for {} at h={} exceeded its ulp bounds",
                r.policy, r.hosts
            );
        }
    }
    if !metrics_zero_alloc {
        for r in metrics
            .iter()
            .filter(|r| r.means_allocs != 0 || r.batched_allocs != 0)
        {
            eprintln!(
                "ERROR: collector tier for {} at h={} allocated in steady state (means {}, batched {})",
                r.policy, r.hosts, r.means_allocs, r.batched_allocs
            );
        }
    }
    // Lint tiers: the four-tier static gate ci.sh runs on every build,
    // timed per configuration on the shipped tree. The per-file tier is
    // always on; each row adds one workspace tier. Runs in smoke mode
    // too, where it doubles as a check that the tree is clean under
    // every tier.
    println!("lint tiers (static gate on the shipped tree):");
    let lint_root = dses_lint::driver::find_workspace_root(std::path::Path::new(env!(
        "CARGO_MANIFEST_DIR"
    )))
    .expect("bench crate sits inside the workspace");
    let lint_cfg = dses_lint::driver::load_config(&lint_root).expect("lint.toml parses");
    let mut lint_rows: Vec<(&str, f64, usize, bool)> = Vec::new();
    let mut lint_clean = true;
    for (label, sem, flow, mir) in [
        ("file", false, false, false),
        ("file+semantic", true, false, false),
        ("file+semantic+dataflow", true, true, false),
        ("file+semantic+dataflow+mirrors", true, true, true),
    ] {
        let start = Instant::now();
        let report = dses_lint::driver::lint_workspace(&lint_root, &lint_cfg, sem, flow, mir)
            .expect("workspace walk");
        let secs = start.elapsed().as_secs_f64();
        let clean = report.clean();
        lint_clean &= clean;
        println!(
            "  {label:<30} {:>10}   {} file(s), {} finding(s), clean: {clean}",
            fmt_duration(start.elapsed()),
            report.files_scanned,
            report.findings.len(),
        );
        lint_rows.push((label, secs, report.files_scanned, clean));
    }

    let bit_identical = sweep_identical
        && kernels_identical
        && cutoffs.identical
        && pool.identical
        && workspace.identical
        && zero_alloc
        && simd_identical
        && simd_zero_alloc
        && segmented_identical
        && segmented_zero_alloc
        && metrics_identical
        && metrics_ulp_ok
        && metrics_zero_alloc;

    if !smoke {
        let json = format!(
            "{{\n  \"grid\": {{\"workload\": \"c90\", \"hosts\": 2, \"policies\": {}, \"loads\": {}, \"jobs_per_point\": {jobs_per_point}, \"total_jobs\": {total_jobs}}},\n  \"cores\": {workers},\n  \"sequential_secs\": {seq_secs:.4},\n  \"parallel_secs\": {par_secs:.4},\n  \"speedup\": {speedup:.3},\n  \"jobs_per_sec_sequential\": {:.0},\n  \"jobs_per_sec_parallel\": {:.0},\n  \"bit_identical\": {sweep_identical},\n  \"peak_heap_bytes_streaming\": {peak_streaming},\n  \"peak_heap_bytes_records\": {peak_records}\n}}\n",
            specs.len(),
            loads.len(),
            total_jobs as f64 / seq_secs,
            total_jobs as f64 / par_secs,
        );
        std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
        println!("wrote BENCH_parallel.json");

        let kernel_rows: Vec<String> = kernels
            .iter()
            .map(|r| {
                format!(
                    "    {{\"policy\": \"{}\", \"loop\": \"{}\", \"full_jobs_per_sec\": {:.0}, \"specialized_jobs_per_sec\": {:.0}, \"speedup\": {:.3}, \"bit_identical\": {}}}",
                    r.policy,
                    r.loop_kind,
                    r.full_jps,
                    r.specialized_jps,
                    r.specialized_jps / r.full_jps,
                    r.identical
                )
            })
            .collect();
        let cutoff_rows: Vec<String> = cutoffs
            .dists
            .iter()
            .map(|b| {
                format!(
                    "    {{\"dist\": \"{}\", \"production\": \"{}\", \"opt_raw_solves_per_sec\": {:.2}, \"opt_cached_solves_per_sec\": {:.2}, \"opt_speedup\": {:.3}, \"fair_raw_solves_per_sec\": {:.2}, \"fair_cached_solves_per_sec\": {:.2}, \"fair_speedup\": {:.3}, \"bit_identical\": {}}}",
                    b.dist,
                    b.production,
                    b.opt_raw_solves_per_sec,
                    b.opt_cached_solves_per_sec,
                    b.opt_cached_solves_per_sec / b.opt_raw_solves_per_sec,
                    b.fair_raw_solves_per_sec,
                    b.fair_cached_solves_per_sec,
                    b.fair_cached_solves_per_sec / b.fair_raw_solves_per_sec,
                    b.identical
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"config\": {{\"workload\": \"c90\", \"hosts\": 8, \"rho\": 0.7, \"jobs\": 200000, \"seed\": 1997}},\n  \"kernels\": [\n{}\n  ],\n  \"cutoff\": [\n{}\n  ],\n  \"multi_opt_secs_4_hosts\": {:.4},\n  \"bit_identical\": {bit_identical}\n}}\n",
            kernel_rows.join(",\n"),
            cutoff_rows.join(",\n"),
            cutoffs.multi_opt_secs,
        );
        std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
        println!("wrote BENCH_kernel.json");

        let json = format!(
            "{{\n  \"pool\": {{\"tasks\": {}, \"jobs_per_task\": {}, \"workers\": {}, \"scoped_spawn_secs\": {:.4}, \"pool_secs\": {:.4}, \"speedup\": {:.3}, \"bit_identical\": {}}},\n  \"workspace\": {{\"jobs\": {}, \"hosts\": {}, \"fresh_jobs_per_sec\": {:.0}, \"reused_jobs_per_sec\": {:.0}, \"speedup\": {:.3}, \"steady_state_allocs_per_run\": {}, \"bit_identical\": {}}},\n  \"queue_len_kernel\": {{\"policy\": \"Shortest-Queue\", \"hosts\": 16, \"rho\": 0.8, \"full_heap_jobs_per_sec\": {:.0}, \"fifo_deque_jobs_per_sec\": {:.0}, \"speedup\": {:.3}, \"bit_identical\": {}}},\n  \"bit_identical\": {bit_identical}\n}}\n",
            pool.tasks,
            pool.jobs_per_task,
            pool.workers,
            pool.scoped_secs,
            pool.pooled_secs,
            pool.scoped_secs / pool.pooled_secs,
            pool.identical,
            workspace.jobs,
            workspace.hosts,
            workspace.fresh_jps,
            workspace.reused_jps,
            workspace.reused_jps / workspace.fresh_jps,
            workspace.steady_allocs_per_run,
            workspace.identical,
            sq.full_jps,
            sq.specialized_jps,
            sq.specialized_jps / sq.full_jps,
            sq.identical,
        );
        std::fs::write("BENCH_pool.json", &json).expect("write BENCH_pool.json");
        println!("wrote BENCH_pool.json");

        let simd_rows: Vec<String> = simd
            .iter()
            .map(|r| {
                format!(
                    "    {{\"policy\": \"{}\", \"hosts\": {}, \"scalar_jobs_per_sec\": {:.0}, \"vectorized_jobs_per_sec\": {:.0}, \"fused_jobs_per_sec\": {:.0}, \"vector_speedup\": {:.3}, \"fused_speedup\": {:.3}, \"bit_identical\": {}, \"vectorized_allocs_per_run\": {}, \"fused_allocs_per_run\": {}}}",
                    r.policy,
                    r.hosts,
                    r.scalar_jps,
                    r.vectorized_jps,
                    r.fused_jps,
                    r.vectorized_jps / r.scalar_jps,
                    r.fused_jps / r.scalar_jps,
                    r.identical,
                    r.vectorized_allocs,
                    r.fused_allocs,
                )
            })
            .collect();
        let scaling_rows: Vec<String> = scaling
            .iter()
            .map(|c| {
                format!(
                    "    {{\"hosts\": {}, \"threads\": {}, \"jobs_per_sec\": {:.0}}}",
                    c.hosts, c.threads, c.jps
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"config\": {{\"workload\": \"c90\", \"rho\": 0.7, \"jobs\": 200000, \"seed\": 1997, \"lanes\": {SIMD_LANES}}},\n  \"rows\": [\n{}\n  ],\n  \"thread_scaling\": [\n{}\n  ],\n  \"scaling_stops_at_threads\": {{\"8\": {}, \"64\": {}, \"1024\": {}}},\n  \"bit_identical\": {simd_identical},\n  \"zero_alloc\": {simd_zero_alloc}\n}}\n",
            simd_rows.join(",\n"),
            scaling_rows.join(",\n"),
            scaling_stop(&scaling, 8),
            scaling_stop(&scaling, 64),
            scaling_stop(&scaling, 1024),
        );
        std::fs::write("BENCH_simd.json", &json).expect("write BENCH_simd.json");
        println!("wrote BENCH_simd.json");

        let seg_rows: Vec<String> = segmented
            .iter()
            .map(|r| {
                format!(
                    "    {{\"policy\": \"{}\", \"hosts\": {}, \"scalar_jobs_per_sec\": {:.0}, \"direct_jobs_per_sec\": {:.0}, \"segmented_jobs_per_sec\": {:.0}, \"fused_direct_jobs_per_sec\": {:.0}, \"fused_segmented_jobs_per_sec\": {:.0}, \"segmented_vs_direct\": {:.3}, \"fused_segmented_vs_fused_direct\": {:.3}, \"bit_identical\": {}, \"segmented_allocs_per_run\": {}, \"fused_allocs_per_run\": {}}}",
                    r.policy,
                    r.hosts,
                    r.scalar_jps,
                    r.direct_jps,
                    r.segmented_jps,
                    r.fused_direct_jps,
                    r.fused_seg_jps,
                    r.segmented_jps / r.direct_jps,
                    r.fused_seg_jps / r.fused_direct_jps,
                    r.identical,
                    r.segmented_allocs,
                    r.fused_allocs,
                )
            })
            .collect();
        let h8_best_static = segmented
            .iter()
            .filter(|r| r.hosts == 8)
            .map(|r| {
                r.scalar_jps
                    .max(r.direct_jps)
                    .max(r.segmented_jps)
                    .max(r.fused_direct_jps)
                    .max(r.fused_seg_jps)
            })
            .fold(0.0f64, f64::max);
        let sita_cliff = segmented
            .iter()
            .find(|r| r.policy == "SITA-E" && r.hosts == 1024)
            .map(|r| r.segmented_jps / r.scalar_jps)
            .unwrap_or(0.0);
        let json = format!(
            "{{\n  \"config\": {{\"workload\": \"c90\", \"rho\": 0.7, \"jobs\": 400000, \"seed\": 2001, \"lanes\": {SIMD_LANES}, \"block\": 8192}},\n  \"rows\": [\n{}\n  ],\n  \"best_static_jobs_per_sec_h8\": {:.0},\n  \"sita_e_h1024_segmented_vs_scalar\": {:.3},\n  \"bit_identical\": {segmented_identical},\n  \"zero_alloc\": {segmented_zero_alloc}\n}}\n",
            seg_rows.join(",\n"),
            h8_best_static,
            sita_cliff,
        );
        std::fs::write("BENCH_segmented.json", &json).expect("write BENCH_segmented.json");
        println!("wrote BENCH_segmented.json");
        if h8_best_static < 100_000_000.0 {
            println!("WARNING: best static path at h=8 is below the 100M jobs/s target");
        }
        if sita_cliff < 1.0 {
            println!("WARNING: SITA-E h=1024 segmented is below 1.0x scalar");
        }

        let metric_rows: Vec<String> = metrics
            .iter()
            .map(|r| {
                format!(
                    "    {{\"policy\": \"{}\", \"hosts\": {}, \"full_jobs_per_sec\": {:.0}, \"means_jobs_per_sec\": {:.0}, \"batched_jobs_per_sec\": {:.0}, \"means_speedup\": {:.3}, \"batched_speedup\": {:.3}, \"bit_identical\": {}, \"ulp_ok\": {}, \"means_allocs_per_run\": {}, \"batched_allocs_per_run\": {}}}",
                    r.policy,
                    r.hosts,
                    r.full_jps,
                    r.means_jps,
                    r.batched_jps,
                    r.means_jps / r.full_jps,
                    r.batched_jps / r.full_jps,
                    r.identical,
                    r.ulp_ok,
                    r.means_allocs,
                    r.batched_allocs,
                )
            })
            .collect();
        let means_speedup_h8 = metrics
            .iter()
            .filter(|r| r.hosts == 8)
            .map(|r| r.means_jps / r.full_jps)
            .fold(f64::INFINITY, f64::min);
        let best_tier_h8 = metrics
            .iter()
            .filter(|r| r.hosts == 8)
            .map(|r| r.full_jps.max(r.means_jps).max(r.batched_jps))
            .fold(0.0f64, f64::max);
        let json = format!(
            "{{\n  \"config\": {{\"workload\": \"c90\", \"rho\": 0.7, \"jobs\": {jobs}, \"seed\": 2003, \"tiers\": [\"{}\", \"{}\", \"batched\"], \"block\": 64}},\n  \"rows\": [\n{}\n  ],\n  \"means_speedup_h8\": {:.3},\n  \"means_speedup_ok\": {},\n  \"best_tier_jobs_per_sec_h8\": {:.0},\n  \"bit_identical\": {metrics_identical},\n  \"ulp_ok\": {metrics_ulp_ok},\n  \"zero_alloc\": {metrics_zero_alloc}\n}}\n",
            metrics_mode_label(MetricsMode::Full),
            metrics_mode_label(MetricsMode::Means),
            metric_rows.join(",\n"),
            means_speedup_h8,
            means_speedup_h8 >= 1.3,
            best_tier_h8,
            jobs = 400_000,
        );
        std::fs::write("BENCH_metrics.json", &json).expect("write BENCH_metrics.json");
        println!("wrote BENCH_metrics.json");

        let lint_tier_rows: Vec<String> = lint_rows
            .iter()
            .map(|(label, secs, files, clean)| {
                format!(
                    "    {{\"tiers\": \"{label}\", \"secs\": {secs:.4}, \"files_scanned\": {files}, \"clean\": {clean}}}"
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"configurations\": [\n{}\n  ],\n  \"clean\": {lint_clean}\n}}\n",
            lint_tier_rows.join(",\n")
        );
        std::fs::write("BENCH_lint.json", &json).expect("write BENCH_lint.json");
        println!("wrote BENCH_lint.json");
        if means_speedup_h8 < 1.3 {
            println!("WARNING: MEANS collector tier is below the 1.3x target at h=8");
        }

        // One trajectory summary over every section of this report.
        let best_kernel = kernels
            .iter()
            .max_by(|a, b| {
                (a.specialized_jps / a.full_jps).total_cmp(&(b.specialized_jps / b.full_jps))
            })
            .expect("kernel rows");
        let h8_static = simd
            .iter()
            .filter(|r| r.hosts == 8 && r.policy != "Least-Work-Left")
            .max_by(|a, b| a.vectorized_jps.total_cmp(&b.vectorized_jps))
            .expect("simd rows");
        println!("trajectory summary:");
        println!(
            "  parallel sweep      {speedup:.2}x on {workers} cores (bit-identical {sweep_identical})"
        );
        println!(
            "  kernel dispatch     best {:.2}x ({}) over the full-state loop",
            best_kernel.specialized_jps / best_kernel.full_jps,
            best_kernel.policy
        );
        println!(
            "  pool vs spawn       {:.2}x; workspace reuse {:.2}x, {} steady allocs/run",
            pool.scoped_secs / pool.pooled_secs,
            workspace.reused_jps / workspace.fresh_jps,
            workspace.steady_allocs_per_run
        );
        println!(
            "  simd static (h=8)   {} scalar {}/s -> vector {}/s ({:.2}x) -> fused x{} {}/s ({:.2}x)",
            h8_static.policy,
            fmt_rate(h8_static.scalar_jps),
            fmt_rate(h8_static.vectorized_jps),
            h8_static.vectorized_jps / h8_static.scalar_jps,
            SIMD_LANES,
            fmt_rate(h8_static.fused_jps),
            h8_static.fused_jps / h8_static.scalar_jps,
        );
        let seg_h8 = segmented
            .iter()
            .filter(|r| r.hosts == 8)
            .max_by(|a, b| {
                (a.fused_seg_jps / a.fused_direct_jps)
                    .total_cmp(&(b.fused_seg_jps / b.fused_direct_jps))
            })
            .expect("segmented rows");
        println!(
            "  segmented (h=8)     {} fused-direct {}/s -> fused-seg {}/s ({:.2}x); SITA-E h=1024 seg {:.2}x scalar",
            seg_h8.policy,
            fmt_rate(seg_h8.fused_direct_jps),
            fmt_rate(seg_h8.fused_seg_jps),
            seg_h8.fused_seg_jps / seg_h8.fused_direct_jps,
            sita_cliff,
        );
        let met_h8 = metrics
            .iter()
            .filter(|r| r.hosts == 8)
            .max_by(|a, b| (a.means_jps / a.full_jps).total_cmp(&(b.means_jps / b.full_jps)))
            .expect("metrics rows");
        println!(
            "  collector tiers     {} full {}/s -> means {}/s ({:.2}x) -> batched {}/s ({:.2}x) at h=8",
            met_h8.policy,
            fmt_rate(met_h8.full_jps),
            fmt_rate(met_h8.means_jps),
            met_h8.means_jps / met_h8.full_jps,
            fmt_rate(met_h8.batched_jps),
            met_h8.batched_jps / met_h8.full_jps,
        );
        println!(
            "  scaling stops at    h=8: {} threads, h=64: {}, h=1024: {}",
            scaling_stop(&scaling, 8),
            scaling_stop(&scaling, 64),
            scaling_stop(&scaling, 1024),
        );
    }

    if !bit_identical {
        eprintln!("ERROR: an optimised path diverged from its reference");
        std::process::exit(1);
    }
    if !lint_clean {
        eprintln!("ERROR: the shipped tree is not lint-clean under all four tiers");
        std::process::exit(1);
    }
}
