//! Ablation: true multi-host SITA-U vs the paper's grouped approximation.
//!
//! §5 avoids searching `h − 1` cutoffs ("computationally expensive") and
//! instead reuses the 2-host cutoff to split the hosts into two
//! LWL-scheduled groups. Our closed-form partial moments make the full
//! search cheap (water-filling for -fair, coordinate descent for -opt),
//! so this exhibit asks: how much performance did the paper's shortcut
//! leave on the table?

use dses_core::cutoffs::CutoffMethod;
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};

fn main() {
    let preset = dses_workload::psc_c90();
    let rho = 0.7;
    let mut table = Table::new(
        format!("true multi-host SITA vs grouped SITA+LWL (rho = {rho}, C90, simulation)"),
        &[
            "hosts",
            "LWL",
            "grouped E/LWL",
            "true SITA-E",
            "grouped fair/LWL",
            "true SITA-U-fair",
            "true SITA-U-opt",
        ],
    );
    // Host counts fan out over worker threads; within a count all seven
    // policies share one trace. Row order is fixed by index, so the
    // rendered table matches the old sequential loop exactly.
    let host_counts = [4usize, 8, 16];
    let size_dist = preset.size_dist.clone();
    let rows = dses_sim::par_map(&host_counts, dses_bench::workers_arg(), move |_, &hosts| {
        let experiment = Experiment::new(size_dist.clone())
            .hosts(hosts)
            .jobs(60_000 * hosts)
            .warmup_jobs(5_000)
            .seed(1997);
        let trace = experiment.trace(rho);
        let run = |spec: &PolicySpec| -> String {
            match experiment.try_run_on_trace(spec, &trace) {
                Ok(r) => fmt_num(r.slowdown.mean),
                Err(_) => "-".into(),
            }
        };
        vec![
            hosts.to_string(),
            run(&PolicySpec::LeastWorkLeft),
            run(&PolicySpec::Grouped { method: CutoffMethod::EqualLoad }),
            run(&PolicySpec::SitaE),
            run(&PolicySpec::Grouped { method: CutoffMethod::Fair }),
            run(&PolicySpec::SitaUFair),
            run(&PolicySpec::SitaUOpt),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("Reading: per-host size bands (true SITA) cut variance further than two");
    println!("coarse groups, but the grouped policy's LWL pooling hedges against bursts");
    println!("within a band — the paper's shortcut is competitive and far simpler.");
}
