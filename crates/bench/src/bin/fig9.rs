//! Figure 9 (appendix A) — **analytic** mean slowdown of SITA-E vs
//! SITA-U-opt vs SITA-U-fair, validating the Figure-4 simulation.

use dses_bench::load_grid;
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_queueing::policies::AnalyticPolicy;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = Experiment::new(preset.size_dist.clone()).hosts(2);
    let policies = [
        AnalyticPolicy::SitaE,
        AnalyticPolicy::SitaUOpt,
        AnalyticPolicy::SitaUFair,
    ];
    let mut table = Table::new(
        "Figure 9 — analytic mean slowdown, SITA-E vs SITA-U, 2 hosts, C90",
        &["rho", "SITA-E", "SITA-U-opt", "SITA-U-fair", "U-opt cutoff", "U-opt load frac host1"],
    );
    for &rho in &load_grid() {
        let mut row = vec![format!("{rho:.2}")];
        let mut opt_extras = ("-".to_string(), "-".to_string());
        for p in policies {
            match experiment.analytic(p, rho) {
                Ok(m) => {
                    row.push(fmt_num(m.mean_slowdown));
                    if p == AnalyticPolicy::SitaUOpt {
                        if let Some(c) = &m.cutoffs {
                            opt_extras.0 = fmt_num(c[0]);
                        }
                        if let Some(f) = m.load_fraction_host0 {
                            opt_extras.1 = format!("{f:.3}");
                        }
                    }
                }
                Err(_) => row.push("-".to_string()),
            }
        }
        row.push(opt_extras.0);
        row.push(opt_extras.1);
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("(compare against Figure 4's simulation panel)");
}
