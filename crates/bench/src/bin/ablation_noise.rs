//! Ablation: imperfect size estimates (§7, "Limitations").
//!
//! The paper argues SITA-U survives coarse user estimates: only the
//! short/long judgement matters, misrouted shorts mostly hurt
//! themselves, and users are incentivised to classify correctly. This
//! exhibit quantifies all three with the `dses-core` estimation models.

use dses_core::estimation::{MisclassifyingSita, NoisySizeInterval};
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_sim::simulate_dispatch;
use std::sync::Arc;

fn main() {
    let workers = dses_bench::workers_arg();
    let preset = dses_workload::psc_c90();
    let rho = 0.7;
    let trace = Arc::new(preset.trace(200_000, rho, 2, 1997));
    let cutoff =
        dses_queueing::cutoff::sita_u_fair_cutoff(&preset.size_dist, trace.arrival_rate())
            .unwrap();
    let cfg = MetricsConfig {
        warmup_jobs: 5_000,
        split_cutoff: Some(cutoff),
        ..MetricsConfig::default()
    };

    let mut noise_table = Table::new(
        format!("SITA-U-fair under lognormal size-estimate noise (rho = {rho}, C90)"),
        &["sigma", "mean slowdown", "short E[S]", "long E[S]"],
    );
    // Both noise grids fan their independent runs over --threads
    // workers; rows are collected by index, so the tables are identical
    // for any worker count.
    let sigmas = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];
    let noise_rows = {
        let trace = Arc::clone(&trace);
        dses_sim::par_map(&sigmas, workers, move |_, &sigma| {
            let mut policy = NoisySizeInterval::new(vec![cutoff], sigma, "SITA-U-fair");
            simulate_dispatch(&trace, 2, &mut policy, 7, cfg)
        })
    };
    for (sigma, r) in sigmas.iter().zip(noise_rows) {
        noise_table.push_row(vec![
            format!("{sigma:.2}"),
            fmt_num(r.slowdown.mean),
            fmt_num(r.short_slowdown.unwrap().mean),
            fmt_num(r.long_slowdown.unwrap().mean),
        ]);
    }
    println!("{}", noise_table.render());

    let mut flip_table = Table::new(
        "SITA-U-fair under directional misclassification",
        &["shorts wrong", "longs wrong", "mean slowdown", "short E[S]", "long E[S]"],
    );
    let flips = [
        (0.0, 0.0),
        (0.05, 0.0),
        (0.25, 0.0),
        (0.0, 0.01),
        (0.0, 0.05),
        (0.05, 0.05),
        (0.5, 0.5),
    ];
    let flip_rows = {
        let trace = Arc::clone(&trace);
        dses_sim::par_map(&flips, workers, move |_, &(ps, pl)| {
            let mut policy = MisclassifyingSita::asymmetric(cutoff, ps, pl);
            simulate_dispatch(&trace, 2, &mut policy, 7, cfg)
        })
    };
    for ((ps, pl), r) in flips.into_iter().zip(flip_rows) {
        flip_table.push_row(vec![
            format!("{ps:.2}"),
            format!("{pl:.2}"),
            fmt_num(r.slowdown.mean),
            fmt_num(r.short_slowdown.unwrap().mean),
            fmt_num(r.long_slowdown.unwrap().mean),
        ]);
    }
    println!("{}", flip_table.render());

    // reference points
    let mut lwl = dses_core::policies::LeastWorkLeft;
    let lwl_r = simulate_dispatch(&trace, 2, &mut lwl, 7, cfg);
    println!(
        "reference: size-blind Least-Work-Left mean slowdown = {}",
        fmt_num(lwl_r.slowdown.mean)
    );
    println!("\nReading (paper §7): moderate noise degrades gracefully, and noisy SITA");
    println!("still beats size-blind LWL. Directionally: misrouted *shorts* hurt only");
    println!("themselves — the long column barely moves — but they pay dearly (queueing");
    println!("behind giants), which is the short user's incentive to estimate honestly.");
    println!("Misrouted *giants* tax the whole short class while the strays themselves");
    println!("benefit — so the long side of the cutoff is where estimates need policing.");
}
