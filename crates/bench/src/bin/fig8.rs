//! Figure 8 (appendix A) — **analytic** mean slowdown of the balancing
//! policies vs load, validating the Figure-2 simulation: Random via
//! M/G/1 on the Bernoulli split, Round-Robin via E_h/G/1 (Kingman),
//! Least-Work-Left via the M/G/h approximation, SITA-E via per-host
//! M/G/1 on the conditioned distribution.

use dses_bench::load_grid;
use dses_core::prelude::*;
use dses_core::report::{fmt_num, Table};
use dses_queueing::policies::AnalyticPolicy;

fn main() {
    let preset = dses_workload::psc_c90();
    let experiment = Experiment::new(preset.size_dist.clone()).hosts(2);
    let policies = [
        AnalyticPolicy::Random,
        AnalyticPolicy::RoundRobin,
        AnalyticPolicy::LeastWorkLeft,
        AnalyticPolicy::SitaE,
    ];
    let mut table = Table::new(
        "Figure 8 — analytic mean slowdown, balancing policies, 2 hosts, C90",
        &["rho", "Random", "Round-Robin", "Least-Work-Left", "SITA-E"],
    );
    for &rho in &load_grid() {
        let mut row = vec![format!("{rho:.2}")];
        for p in policies {
            let cell = match experiment.analytic(p, rho) {
                Ok(m) => fmt_num(m.mean_slowdown),
                Err(_) => "-".to_string(),
            };
            row.push(cell);
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("(compare against Figure 2's simulation panel — same ordering, close values)");
}
