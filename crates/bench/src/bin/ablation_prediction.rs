//! Ablation: history-based size prediction (§7's proposed future work).
//!
//! On a user-correlated workload (Zipf user activity, per-user size
//! scales), compare SITA driven by a per-user running-mean predictor
//! against the size oracle and the size-blind baseline, as within-user
//! variability grows from "every job identical" to "history useless".

use dses_core::policies::{LeastWorkLeft, SizeInterval};
use dses_core::prediction::{PredictedSizeInterval, RunningMeanPredictor};
use dses_core::report::{fmt_num, Table};
use dses_sim::{simulate_dispatch, MetricsConfig};
use dses_workload::UserWorkloadBuilder;
use std::sync::Arc;

fn main() {
    let preset = dses_workload::psc_c90();
    let rho = 0.6;
    let mut table = Table::new(
        format!("prediction-driven SITA vs oracle vs LWL (user workload, rho = {rho})"),
        &[
            "within-user C^2",
            "class accuracy",
            "SITA (oracle)",
            "SITA (predicted)",
            "LWL",
        ],
    );
    for within_scv in [0.0, 0.1, 0.5, 2.0, 8.0] {
        let ut = UserWorkloadBuilder::new(preset.size_dist.clone())
            .users(120)
            .jobs(150_000)
            .within_scv(within_scv)
            .poisson_load(rho, 2)
            .seed(1997)
            .build();
        let sizes = ut.trace.sizes();
        let emp = dses_dist::Empirical::from_values(sizes).expect("positive sizes");
        let cutoff = dses_queueing::cutoff::sita_u_opt_cutoff(&emp, ut.trace.arrival_rate())
            .or_else(|_| dses_queueing::cutoff::sita_e_cutoffs(&emp, 2).map(|c| c[0]))
            .expect("cutoff");
        use dses_dist::Distribution as _;
        let cfg = MetricsConfig {
            warmup_jobs: 5_000,
            ..MetricsConfig::default()
        };
        let mut oracle = SizeInterval::new(vec![cutoff], "oracle");
        let oracle_r = simulate_dispatch(&ut.trace, 2, &mut oracle, 7, cfg);
        let mut predicted = PredictedSizeInterval::new(
            vec![cutoff],
            RunningMeanPredictor::new(),
            Arc::new(ut.user_of_job.clone()),
            emp.mean(),
        );
        let pred_r = simulate_dispatch(&ut.trace, 2, &mut predicted, 7, cfg);
        let (hits, misses) = predicted.classification_counts();
        let mut lwl = LeastWorkLeft;
        let lwl_r = simulate_dispatch(&ut.trace, 2, &mut lwl, 7, cfg);
        table.push_row(vec![
            format!("{within_scv:.1}"),
            format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64),
            fmt_num(oracle_r.slowdown.mean),
            fmt_num(pred_r.slowdown.mean),
            fmt_num(lwl_r.slowdown.mean),
        ]);
    }
    println!("{}", table.render());
    println!("Reading (paper §7 + refs [9,16]): when users' jobs resemble their history,");
    println!("a trivial per-user predictor classifies ~everything correctly and");
    println!("prediction-driven SITA recovers most of the oracle's advantage over");
    println!("size-blind assignment — no user estimates required. The flip side: once");
    println!("within-user variability is large, headline accuracy stays high (most jobs");
    println!("sit far from the cutoff) but the rare giant predicted short is catastrophic");
    println!("— worse than size-blind pooling — matching the misclassification ablation:");
    println!("act on size information only when the long side of the cutoff is reliable.");
}
