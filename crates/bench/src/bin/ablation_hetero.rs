//! Ablation: heterogeneous host speeds (extension beyond the paper's
//! identical-host model, §1.1).
//!
//! A 2-host bank with total capacity 2.0 split unevenly: which host
//! should serve the giants, and how should the SITA cutoff move? The
//! analytic hetero solver picks the cutoff; simulation confirms it.

use dses_core::policies::{LeastWorkLeft, SizeInterval};
use dses_core::report::{fmt_num, Table};
use dses_queueing::hetero::{analyze_hetero, hetero_opt_cutoff};
use dses_sim::{simulate_dispatch_speeds, MetricsConfig};

fn main() {
    let preset = dses_workload::psc_c90();
    let d = &preset.size_dist;
    let rho = 0.6; // of total capacity 2.0
    let trace = preset.trace(200_000, rho, 2, 1997);
    let lambda = trace.arrival_rate();
    let cfg = MetricsConfig {
        warmup_jobs: 5_000,
        ..MetricsConfig::default()
    };
    let mut table = Table::new(
        format!("speed asymmetry at load {rho} (capacity fixed at 2.0), C90"),
        &[
            "speeds (short,long)",
            "opt cutoff",
            "analytic E[S]",
            "simulated E[S]",
            "LWL (simulated)",
        ],
    );
    for speeds in [[1.0, 1.0], [0.5, 1.5], [1.5, 0.5], [0.25, 1.75], [1.75, 0.25]] {
        let row = match hetero_opt_cutoff(d, lambda, speeds) {
            Ok(cutoff) => {
                let analytic = analyze_hetero(d, lambda, &[cutoff], &speeds);
                let mut sita = SizeInterval::new(vec![cutoff], "SITA");
                let sim = simulate_dispatch_speeds(&trace, &speeds, &mut sita, 7, cfg);
                let mut lwl = LeastWorkLeft;
                let lwl_sim = simulate_dispatch_speeds(&trace, &speeds, &mut lwl, 7, cfg);
                vec![
                    format!("{:.2}/{:.2}", speeds[0], speeds[1]),
                    format!("{cutoff:.0}"),
                    fmt_num(analytic.mean_slowdown),
                    fmt_num(sim.slowdown.mean),
                    fmt_num(lwl_sim.slowdown.mean),
                ]
            }
            Err(e) => vec![
                format!("{:.2}/{:.2}", speeds[0], speeds[1]),
                format!("{e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        };
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("Reading: SITA absorbs speed asymmetry by moving the cutoff — a slower");
    println!("short-host takes a narrower band, a faster one a wider band — and the");
    println!("analytic optimum tracks the simulation. Giving the *fast* machine to the");
    println!("giants is the better configuration: the short host's strength is low");
    println!("variance, not raw speed, while the long host needs every cycle.");
}
