//! Cutoff-solver cost: the paper notes the optimal/fair cutoff search is
//! the expensive part of deploying SITA-U ("the search space for the
//! optimal and fair cutoffs becomes much larger", §5). These benches
//! measure the analytic solvers on closed-form and empirical
//! distributions, and the simulation-based experimental search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dses_core::cutoffs::{experimental_cutoff, CutoffMethod};
use dses_dist::prelude::*;
use dses_queueing::cutoff::{sita_e_cutoffs, sita_u_fair_cutoff, sita_u_opt_cutoff};
use std::hint::black_box;

fn c90() -> Mixture {
    dses_workload::psc_c90().size_dist
}

fn bench_analytic_solvers(c: &mut Criterion) {
    let d = c90();
    let lambda = 1.4 / d.mean(); // rho = 0.7 on 2 hosts
    let mut group = c.benchmark_group("analytic_cutoffs");
    group.bench_function("sita_e_2", |b| {
        b.iter(|| black_box(sita_e_cutoffs(&d, 2).unwrap()))
    });
    group.bench_function("sita_e_8", |b| {
        b.iter(|| black_box(sita_e_cutoffs(&d, 8).unwrap()))
    });
    group.bench_function("sita_u_opt", |b| {
        b.iter(|| black_box(sita_u_opt_cutoff(&d, lambda).unwrap()))
    });
    group.bench_function("sita_u_fair", |b| {
        b.iter(|| black_box(sita_u_fair_cutoff(&d, lambda).unwrap()))
    });
    group.finish();
}

fn bench_empirical_solvers(c: &mut Criterion) {
    // the paper's experimental method: cutoffs from trace data
    let d = c90();
    let mut rng = Rng64::seed_from(3);
    let sample: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
    let emp = Empirical::from_values(&sample).unwrap();
    let lambda = 1.4 / emp.mean();
    let mut group = c.benchmark_group("empirical_cutoffs");
    group.bench_function("sita_u_opt_empirical_50k", |b| {
        b.iter(|| black_box(sita_u_opt_cutoff(&emp, lambda).unwrap()))
    });
    group.finish();
}

fn bench_experimental_search(c: &mut Criterion) {
    let preset = dses_workload::psc_c90();
    let training = preset.trace(5_000, 0.7, 2, 5);
    let mut group = c.benchmark_group("experimental_cutoffs");
    group.sample_size(10);
    for grid in [10usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("sim_search_opt", grid),
            &grid,
            |b, &grid| {
                b.iter(|| {
                    black_box(
                        experimental_cutoff(&training, CutoffMethod::OptSlowdown, grid, 0)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analytic_solvers,
    bench_empirical_solvers,
    bench_experimental_search
);
criterion_main!(benches);
