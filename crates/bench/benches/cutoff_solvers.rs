//! Cutoff-solver cost: the paper notes the optimal/fair cutoff search is
//! the expensive part of deploying SITA-U ("the search space for the
//! optimal and fair cutoffs becomes much larger", §5). These benches
//! measure the analytic solvers on closed-form and empirical
//! distributions, and the simulation-based experimental search.

use dses_bench::harness::Bench;
use dses_core::cutoffs::{experimental_cutoff, CutoffMethod};
use dses_dist::prelude::*;
use dses_queueing::cutoff::{sita_e_cutoffs, sita_u_fair_cutoff, sita_u_opt_cutoff};

fn c90() -> Mixture {
    dses_workload::psc_c90().size_dist
}

fn bench_analytic_solvers() {
    let d = c90();
    let lambda = 1.4 / d.mean(); // rho = 0.7 on 2 hosts
    let mut group = Bench::new("analytic_cutoffs");
    group.run("sita_e_2", || sita_e_cutoffs(&d, 2).unwrap());
    group.run("sita_e_8", || sita_e_cutoffs(&d, 8).unwrap());
    group.run("sita_u_opt", || sita_u_opt_cutoff(&d, lambda).unwrap());
    group.run("sita_u_fair", || sita_u_fair_cutoff(&d, lambda).unwrap());
}

fn bench_empirical_solvers() {
    // the paper's experimental method: cutoffs from trace data
    let d = c90();
    let mut rng = Rng64::seed_from(3);
    let sample: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
    let emp = Empirical::from_values(&sample).unwrap();
    let lambda = 1.4 / emp.mean();
    let mut group = Bench::new("empirical_cutoffs");
    group.run("sita_u_opt_empirical_50k", || {
        sita_u_opt_cutoff(&emp, lambda).unwrap()
    });
}

fn bench_experimental_search() {
    let preset = dses_workload::psc_c90();
    let training = preset.trace(5_000, 0.7, 2, 5);
    let mut group = Bench::new("experimental_cutoffs");
    for grid in [10usize, 20] {
        group.run(&format!("sim_search_opt/{grid}"), || {
            experimental_cutoff(&training, CutoffMethod::OptSlowdown, grid, 0).unwrap()
        });
    }
}

fn main() {
    bench_analytic_solvers();
    bench_empirical_solvers();
    bench_experimental_search();
}
