//! Queueing-analysis cost: one SITA evaluation (the inner loop of every
//! cutoff search) and the per-policy analytic predictions behind
//! Figures 8–9, plus the partial-moment primitives they lean on.

use criterion::{criterion_group, criterion_main, Criterion};
use dses_dist::prelude::*;
use dses_queueing::policies::{analyze_policy, AnalyticPolicy};
use dses_queueing::sita::SitaAnalysis;
use dses_queueing::ServiceMoments;
use std::hint::black_box;

fn c90() -> Mixture {
    dses_workload::psc_c90().size_dist
}

fn bench_partial_moments(c: &mut Criterion) {
    let mix = c90();
    let bp = BoundedPareto::new(60.0, 2.22e6, 1.0).unwrap();
    let ln = LogNormal::fit_mean_scv(4562.0, 43.0).unwrap();
    let mut group = c.benchmark_group("partial_moments");
    group.bench_function("bounded_pareto_closed_form", |b| {
        b.iter(|| black_box(bp.partial_moment(2, 100.0, 1.0e5)))
    });
    group.bench_function("body_tail_mixture", |b| {
        b.iter(|| black_box(mix.partial_moment(2, 100.0, 1.0e5)))
    });
    group.bench_function("lognormal_closed_form", |b| {
        b.iter(|| black_box(ln.partial_moment(2, 100.0, 1.0e5)))
    });
    group.finish();
}

fn bench_sita_analysis(c: &mut Criterion) {
    let d = c90();
    let lambda = 1.4 / d.mean();
    let mut group = c.benchmark_group("sita_analysis");
    group.bench_function("two_hosts", |b| {
        b.iter(|| black_box(SitaAnalysis::analyze(&d, lambda, &[10_000.0])))
    });
    group.bench_function("eight_hosts", |b| {
        let cutoffs = [500.0, 2_000.0, 8_000.0, 30_000.0, 100_000.0, 300_000.0, 900_000.0];
        b.iter(|| black_box(SitaAnalysis::analyze(&d, 4.0 * lambda, &cutoffs)))
    });
    group.finish();
}

fn bench_policy_analysis(c: &mut Criterion) {
    let d = c90();
    let lambda = 1.4 / d.mean();
    let mut group = c.benchmark_group("analyze_policy");
    for policy in [
        AnalyticPolicy::Random,
        AnalyticPolicy::LeastWorkLeft,
        AnalyticPolicy::SitaE,
        AnalyticPolicy::SitaUFair,
    ] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| black_box(analyze_policy(policy, &d, lambda, 2).unwrap()))
        });
    }
    group.finish();
}

fn bench_service_moments(c: &mut Criterion) {
    let d = c90();
    let mut group = c.benchmark_group("service_moments");
    group.bench_function("full_support", |b| {
        b.iter(|| black_box(ServiceMoments::of(&d)))
    });
    group.bench_function("interval", |b| {
        b.iter(|| black_box(ServiceMoments::of_interval(&d, 100.0, 50_000.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partial_moments,
    bench_sita_analysis,
    bench_policy_analysis,
    bench_service_moments
);
criterion_main!(benches);
