//! Queueing-analysis cost: one SITA evaluation (the inner loop of every
//! cutoff search) and the per-policy analytic predictions behind
//! Figures 8–9, plus the partial-moment primitives they lean on.

use dses_bench::harness::Bench;
use dses_dist::prelude::*;
use dses_queueing::policies::{analyze_policy, AnalyticPolicy};
use dses_queueing::sita::SitaAnalysis;
use dses_queueing::ServiceMoments;

fn c90() -> Mixture {
    dses_workload::psc_c90().size_dist
}

fn bench_partial_moments() {
    let mix = c90();
    let bp = BoundedPareto::new(60.0, 2.22e6, 1.0).unwrap();
    let ln = LogNormal::fit_mean_scv(4562.0, 43.0).unwrap();
    let mut group = Bench::new("partial_moments");
    group.run("bounded_pareto_closed_form", || bp.partial_moment(2, 100.0, 1.0e5));
    group.run("body_tail_mixture", || mix.partial_moment(2, 100.0, 1.0e5));
    group.run("lognormal_closed_form", || ln.partial_moment(2, 100.0, 1.0e5));
}

fn bench_sita_analysis() {
    let d = c90();
    let lambda = 1.4 / d.mean();
    let mut group = Bench::new("sita_analysis");
    group.run("two_hosts", || SitaAnalysis::analyze(&d, lambda, &[10_000.0]));
    let cutoffs = [500.0, 2_000.0, 8_000.0, 30_000.0, 100_000.0, 300_000.0, 900_000.0];
    group.run("eight_hosts", || SitaAnalysis::analyze(&d, 4.0 * lambda, &cutoffs));
}

fn bench_policy_analysis() {
    let d = c90();
    let lambda = 1.4 / d.mean();
    let mut group = Bench::new("analyze_policy");
    for policy in [
        AnalyticPolicy::Random,
        AnalyticPolicy::LeastWorkLeft,
        AnalyticPolicy::SitaE,
        AnalyticPolicy::SitaUFair,
    ] {
        group.run(policy.name(), || analyze_policy(policy, &d, lambda, 2).unwrap());
    }
}

fn bench_service_moments() {
    let d = c90();
    let mut group = Bench::new("service_moments");
    group.run("full_support", || ServiceMoments::of(&d));
    group.run("interval", || ServiceMoments::of_interval(&d, 100.0, 50_000.0));
}

fn main() {
    bench_partial_moments();
    bench_sita_analysis();
    bench_policy_analysis();
    bench_service_moments();
}
