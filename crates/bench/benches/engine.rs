//! Engine throughput: jobs simulated per second, fast path vs the
//! event-driven engine, across host counts. The fast path exists so
//! exhibit sweeps (dozens of policy × load × workload points, 200k jobs
//! each) regenerate in seconds; this bench quantifies the gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dses_core::policies::LeastWorkLeft;
use dses_sim::{simulate_dispatch, EventEngine, MetricsConfig, QueueDiscipline};
use dses_workload::Trace;
use std::hint::black_box;

fn trace(jobs: usize, hosts: usize) -> Trace {
    dses_workload::psc_c90().trace(jobs, 0.7, hosts, 7)
}

fn bench_engines(c: &mut Criterion) {
    let jobs = 20_000;
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(jobs as u64));
    for hosts in [2usize, 8, 32] {
        let t = trace(jobs, hosts);
        group.bench_with_input(BenchmarkId::new("fast_lwl", hosts), &t, |b, t| {
            b.iter(|| {
                let mut p = LeastWorkLeft;
                black_box(simulate_dispatch(t, hosts, &mut p, 0, MetricsConfig::default()))
            })
        });
        group.bench_with_input(BenchmarkId::new("event_lwl", hosts), &t, |b, t| {
            b.iter(|| {
                let mut p = LeastWorkLeft;
                black_box(EventEngine::new(hosts, MetricsConfig::default()).run_dispatch(t, &mut p, 0))
            })
        });
        group.bench_with_input(BenchmarkId::new("event_central_queue", hosts), &t, |b, t| {
            b.iter(|| {
                black_box(
                    EventEngine::new(hosts, MetricsConfig::default())
                        .run_central_queue(t, QueueDiscipline::Fcfs),
                )
            })
        });
    }
    group.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let jobs = 20_000;
    let t = trace(jobs, 2);
    let mut group = c.benchmark_group("metrics_overhead");
    group.throughput(Throughput::Elements(jobs as u64));
    group.bench_function("bare", |b| {
        b.iter(|| {
            let mut p = LeastWorkLeft;
            black_box(simulate_dispatch(&t, 2, &mut p, 0, MetricsConfig::default()))
        })
    });
    group.bench_function("records_fairness_split", |b| {
        b.iter(|| {
            let mut p = LeastWorkLeft;
            black_box(simulate_dispatch(
                &t,
                2,
                &mut p,
                0,
                MetricsConfig {
                    collect_records: true,
                    fairness_bins: 12,
                    split_cutoff: Some(1_000.0),
                    ..MetricsConfig::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_metrics_overhead);
criterion_main!(benches);
