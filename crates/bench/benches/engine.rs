//! Engine throughput: jobs simulated per second, fast path vs the
//! event-driven engine, across host counts. The fast path exists so
//! exhibit sweeps (dozens of policy × load × workload points, 200k jobs
//! each) regenerate in seconds; this bench quantifies the gap.

use dses_bench::harness::Bench;
use dses_core::policies::LeastWorkLeft;
use dses_sim::{simulate_dispatch, EventEngine, MetricsConfig, QueueDiscipline};
use dses_workload::Trace;

fn trace(jobs: usize, hosts: usize) -> Trace {
    dses_workload::psc_c90().trace(jobs, 0.7, hosts, 7)
}

fn bench_engines() {
    let jobs = 20_000;
    let mut group = Bench::new("engine");
    for hosts in [2usize, 8, 32] {
        let t = trace(jobs, hosts);
        group.run_with_elements(&format!("fast_lwl/{hosts}"), jobs as u64, || {
            let mut p = LeastWorkLeft;
            simulate_dispatch(&t, hosts, &mut p, 0, MetricsConfig::default())
        });
        group.run_with_elements(&format!("event_lwl/{hosts}"), jobs as u64, || {
            let mut p = LeastWorkLeft;
            EventEngine::new(hosts, MetricsConfig::default()).run_dispatch(&t, &mut p, 0)
        });
        group.run_with_elements(&format!("event_central_queue/{hosts}"), jobs as u64, || {
            EventEngine::new(hosts, MetricsConfig::default())
                .run_central_queue(&t, QueueDiscipline::Fcfs)
        });
    }
}

fn bench_metrics_overhead() {
    let jobs = 20_000;
    let t = trace(jobs, 2);
    let mut group = Bench::new("metrics_overhead");
    group.run_with_elements("streaming", jobs as u64, || {
        let mut p = LeastWorkLeft;
        simulate_dispatch(&t, 2, &mut p, 0, MetricsConfig::streaming())
    });
    group.run_with_elements("records_fairness_split", jobs as u64, || {
        let mut p = LeastWorkLeft;
        simulate_dispatch(
            &t,
            2,
            &mut p,
            0,
            MetricsConfig {
                fairness_bins: 12,
                split_cutoff: Some(1_000.0),
                ..MetricsConfig::full_records()
            },
        )
    });
}

fn main() {
    bench_engines();
    bench_metrics_overhead();
}
