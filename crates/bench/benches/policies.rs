//! Per-policy simulation cost: the dispatch decision is O(1) for the
//! static policies, O(h) for the state-reading ones — this bench keeps
//! that honest across the roster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dses_core::policies::{
    GroupedSita, LeastWorkLeft, RandomPolicy, RoundRobin, ShortestQueue, SizeInterval,
};
use dses_sim::{simulate_dispatch, Dispatcher, MetricsConfig};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let jobs = 20_000;
    let hosts = 4;
    let trace = dses_workload::psc_c90().trace(jobs, 0.7, hosts, 13);
    let mut group = c.benchmark_group("policy_dispatch");
    group.throughput(Throughput::Elements(jobs as u64));
    let mut roster: Vec<(&str, Box<dyn Dispatcher>)> = vec![
        ("random", Box::new(RandomPolicy)),
        ("round_robin", Box::new(RoundRobin::default())),
        ("shortest_queue", Box::new(ShortestQueue)),
        ("least_work_left", Box::new(LeastWorkLeft)),
        (
            "sita",
            Box::new(SizeInterval::new(vec![100.0, 5_000.0, 100_000.0], "SITA")),
        ),
        (
            "grouped_sita",
            Box::new(GroupedSita::new(10_000.0, hosts, 2, "grouped")),
        ),
    ];
    for (name, policy) in roster.iter_mut() {
        group.bench_with_input(BenchmarkId::from_parameter(*name), &trace, |b, t| {
            b.iter(|| {
                black_box(simulate_dispatch(
                    t,
                    hosts,
                    policy.as_mut(),
                    0,
                    MetricsConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_tags(c: &mut Criterion) {
    let jobs = 20_000;
    let trace = dses_workload::psc_c90().trace(jobs, 0.7, 2, 17);
    let mut group = c.benchmark_group("tags_cascade");
    group.throughput(Throughput::Elements(jobs as u64));
    group.bench_function("two_level", |b| {
        b.iter(|| {
            black_box(dses_core::policies::tags::simulate_tags(
                &trace,
                &[10_000.0],
                MetricsConfig::default(),
            ))
        })
    });
    group.bench_function("four_level", |b| {
        b.iter(|| {
            black_box(dses_core::policies::tags::simulate_tags(
                &trace,
                &[1_000.0, 10_000.0, 100_000.0],
                MetricsConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_tags);
criterion_main!(benches);
