//! Per-policy simulation cost: the dispatch decision is O(1) for the
//! static policies, O(h) for the state-reading ones — this bench keeps
//! that honest across the roster.

use dses_bench::harness::Bench;
use dses_core::policies::{
    GroupedSita, LeastWorkLeft, RandomPolicy, RoundRobin, ShortestQueue, SizeInterval,
};
use dses_sim::{simulate_dispatch, Dispatcher, MetricsConfig};

fn bench_policies() {
    let jobs = 20_000;
    let hosts = 4;
    let trace = dses_workload::psc_c90().trace(jobs, 0.7, hosts, 13);
    let mut group = Bench::new("policy_dispatch");
    let mut roster: Vec<(&str, Box<dyn Dispatcher>)> = vec![
        ("random", Box::new(RandomPolicy)),
        ("round_robin", Box::new(RoundRobin::default())),
        ("shortest_queue", Box::new(ShortestQueue)),
        ("least_work_left", Box::new(LeastWorkLeft)),
        (
            "sita",
            Box::new(SizeInterval::new(vec![100.0, 5_000.0, 100_000.0], "SITA")),
        ),
        (
            "grouped_sita",
            Box::new(GroupedSita::new(10_000.0, hosts, 2, "grouped")),
        ),
    ];
    for (name, policy) in roster.iter_mut() {
        group.run_with_elements(name, jobs as u64, || {
            simulate_dispatch(&trace, hosts, policy.as_mut(), 0, MetricsConfig::default())
        });
    }
}

fn bench_tags() {
    let jobs = 20_000;
    let trace = dses_workload::psc_c90().trace(jobs, 0.7, 2, 17);
    let mut group = Bench::new("tags_cascade");
    group.run_with_elements("two_level", jobs as u64, || {
        dses_core::policies::tags::simulate_tags(&trace, &[10_000.0], MetricsConfig::default())
    });
    group.run_with_elements("four_level", jobs as u64, || {
        dses_core::policies::tags::simulate_tags(
            &trace,
            &[1_000.0, 10_000.0, 100_000.0],
            MetricsConfig::default(),
        )
    });
}

fn main() {
    bench_policies();
    bench_tags();
}
