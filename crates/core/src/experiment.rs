//! The experiment runner: one call from "policy + workload + load" to
//! the metrics the paper plots.

use crate::spec::{BuiltPolicy, PolicySpec};
use dses_dist::{derive_seed, Distribution};
use dses_queueing::cutoff::CutoffError;
use dses_queueing::policies::{analyze_policy, AnalyticMetrics, AnalyticPolicy};
use dses_sim::par::{effective_workers, par_map, par_map_grouped, par_map_indexed};
use dses_sim::{
    simulate_dispatch, simulate_dispatch_fused, Demand, Dispatcher, EventEngine, MetricsConfig,
    SimResult,
};
use dses_workload::{Trace, WorkloadBuilder};
use std::sync::Arc;

/// Replication lanes fused into one simulation pass. Eight independent
/// Lindley/Welford chains are enough to hide the ~20-cycle loop-carried
/// latency of a single lane without spilling the hot state out of
/// registers/L1 (see `DESIGN.md` §11).
const FUSE_WIDTH: usize = 8;

/// How an experiment resolves the collector's [`Demand`] tier — the
/// demand-lattice knob exposed on the CLI and exhibit binaries as
/// `--metrics full|auto|means` (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Every accumulator family on every entry point — the pre-tier
    /// collector, byte-for-byte.
    Full,
    /// Each entry point demands exactly the fields it reads:
    /// [`Experiment::run`]/[`Experiment::try_run`] return the whole
    /// [`SimResult`], so they stay full; [`Experiment::sweep_grid`]
    /// reads only [`SweepPoint`]'s fields (`MEANS | PER_HOST`);
    /// [`Experiment::replicate`] reads only the mean slowdown
    /// (`MEANS`). Demanded fields are bitwise identical to `Full`, so
    /// figures and exhibits are unchanged under `Auto`.
    #[default]
    Auto,
    /// Force the `MEANS` tier everywhere: the four moment streams and
    /// makespan only. Undemanded [`SimResult`] fields read as
    /// deterministic empties — a throughput mode, not a fidelity mode.
    Means,
}

/// A configured experiment: a workload distribution plus simulation
/// parameters. Cheap to clone; immutable once built.
#[derive(Debug, Clone)]
pub struct Experiment<D: Distribution + Clone + 'static> {
    dist: D,
    hosts: usize,
    jobs: usize,
    seed: u64,
    warmup_jobs: usize,
    fairness_bins: usize,
    percentiles: bool,
    slo_slowdown: Option<f64>,
    threads: Option<usize>,
    metrics_mode: MetricsMode,
}

impl<D: Distribution + Clone + 'static> Experiment<D> {
    /// Start an experiment on the given job-size distribution.
    #[must_use]
    pub fn new(dist: D) -> Self {
        Self {
            dist,
            hosts: 2,
            jobs: 50_000,
            seed: 0,
            warmup_jobs: 0,
            fairness_bins: 0,
            percentiles: false,
            slo_slowdown: None,
            threads: None,
            metrics_mode: MetricsMode::default(),
        }
    }

    /// How the collector's [`Demand`] tier is resolved (default
    /// [`MetricsMode::Auto`]; see its docs for the per-entry-point
    /// demands).
    #[must_use]
    pub fn metrics_mode(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }

    /// Worker threads for grid entry points ([`Experiment::sweep_grid`],
    /// [`Experiment::sweep`], [`Experiment::replicate`]). `0` restores
    /// the default: one worker per available core. Results are
    /// bit-for-bit identical for every setting — the thread count only
    /// changes wall-clock time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    fn workers(&self) -> usize {
        effective_workers(self.threads)
    }

    /// Number of hosts (default 2, the paper's primary configuration).
    #[must_use]
    pub fn hosts(mut self, hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        self.hosts = hosts;
        self
    }

    /// Number of jobs to simulate per run (default 50 000).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Seed for trace generation and policy randomness.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Discard the first `n` jobs from the aggregates (warm-up trim).
    #[must_use]
    pub fn warmup_jobs(mut self, n: usize) -> Self {
        self.warmup_jobs = n;
        self
    }

    /// Collect a slowdown-vs-size fairness profile with `bins` log bins.
    #[must_use]
    pub fn fairness_bins(mut self, bins: usize) -> Self {
        self.fairness_bins = bins;
        self
    }

    /// Track streaming slowdown percentiles (p50/p90/p95/p99).
    #[must_use]
    pub fn percentiles(mut self, on: bool) -> Self {
        self.percentiles = on;
        self
    }

    /// Count jobs whose slowdown exceeds `threshold` (SLO violations).
    #[must_use]
    pub fn slo(mut self, threshold: f64) -> Self {
        assert!(threshold >= 1.0, "slowdown SLO must be at least 1");
        self.slo_slowdown = Some(threshold);
        self
    }

    /// Number of hosts configured.
    #[must_use]
    pub fn num_hosts(&self) -> usize {
        self.hosts
    }

    /// The job-size distribution.
    #[must_use]
    pub fn dist(&self) -> &D {
        &self.dist
    }

    /// Generate the Poisson trace for target system load `rho`.
    #[must_use]
    pub fn trace(&self, rho: f64) -> Trace {
        WorkloadBuilder::new(self.dist.clone())
            .jobs(self.jobs)
            .poisson_load(rho, self.hosts)
            .seed(self.seed)
            .build()
    }

    /// Resolve the effective demand for an entry point that reads the
    /// `reads` families from its results.
    fn demand_for(&self, reads: Demand) -> Demand {
        match self.metrics_mode {
            MetricsMode::Full => Demand::FULL,
            MetricsMode::Auto => reads,
            MetricsMode::Means => Demand::MEANS,
        }
    }

    fn metrics_config(&self, split_cutoff: Option<f64>, reads: Demand) -> MetricsConfig {
        let (lo, hi) = self.dist.support();
        let hi = if hi.is_finite() { hi * 1.01 } else { 1.0e9 };
        MetricsConfig {
            warmup_jobs: self.warmup_jobs,
            collect_records: false,
            fairness_bins: self.fairness_bins,
            fairness_range: (lo.max(1e-3), hi),
            split_cutoff,
            slowdown_percentiles: self.percentiles,
            slo_slowdown: self.slo_slowdown,
            demand: self.demand_for(reads),
            batched: false,
        }
    }

    /// Simulate `spec` at target system load `rho` (Poisson arrivals).
    ///
    /// # Panics
    /// Panics if the policy cannot be built (e.g. no stabilising SITA
    /// cutoff); use [`Experiment::try_run`] to handle that case.
    #[must_use]
    pub fn run(&self, spec: &PolicySpec, rho: f64) -> SimResult {
        self.try_run(spec, rho)
            // dses-lint: allow(panic-hygiene) -- documented panic; try_run is the fallible form
            .unwrap_or_else(|e| panic!("{} at rho={rho}: {e}", spec.name()))
    }

    /// Simulate `spec` at target system load `rho`, propagating policy
    /// resolution errors.
    pub fn try_run(&self, spec: &PolicySpec, rho: f64) -> Result<SimResult, CutoffError> {
        let trace = self.trace(rho);
        self.try_run_on_trace(spec, &trace)
    }

    /// Simulate `spec` on an externally supplied trace (e.g. bursty
    /// arrivals from an MMPP, or a real SWF trace).
    pub fn try_run_on_trace(
        &self,
        spec: &PolicySpec,
        trace: &Trace,
    ) -> Result<SimResult, CutoffError> {
        // Callers of the single-run API get the whole SimResult, so the
        // declared read set is everything.
        self.try_run_on_trace_demand(spec, trace, Demand::FULL)
    }

    /// [`Experiment::try_run_on_trace`] with the caller declaring which
    /// result families it reads (the demand under [`MetricsMode::Auto`]).
    fn try_run_on_trace_demand(
        &self,
        spec: &PolicySpec,
        trace: &Trace,
        reads: Demand,
    ) -> Result<SimResult, CutoffError> {
        let (built, cfg) = self.prepare_run(spec, trace, reads)?;
        let result = match built {
            BuiltPolicy::Dispatch(mut p) => {
                simulate_dispatch(trace, self.hosts, p.as_mut(), self.seed, cfg)
            }
            BuiltPolicy::Central(discipline) => {
                EventEngine::new(self.hosts, cfg).run_central_queue(trace, discipline)
            }
        };
        Ok(result)
    }

    /// Resolve everything a run needs that depends on the *target*
    /// operating point — the built policy (cutoffs resolved against the
    /// trace's realised arrival rate) and the metrics configuration (for
    /// 2-host SITA policies, slowdown statistics are split at the cutoff
    /// so short-vs-long fairness is measured for free).
    fn prepare_run(
        &self,
        spec: &PolicySpec,
        trace: &Trace,
        reads: Demand,
    ) -> Result<(BuiltPolicy, MetricsConfig), CutoffError> {
        let lambda = trace.arrival_rate();
        let built = spec.build(&self.dist, lambda, self.hosts)?;
        let cutoff_method = match spec {
            PolicySpec::SitaE => Some(crate::cutoffs::CutoffMethod::EqualLoad),
            PolicySpec::SitaUOpt => Some(crate::cutoffs::CutoffMethod::OptSlowdown),
            PolicySpec::SitaUFair => Some(crate::cutoffs::CutoffMethod::Fair),
            PolicySpec::SitaRuleOfThumb => Some(crate::cutoffs::CutoffMethod::RuleOfThumb),
            _ => None,
        };
        let split = match (cutoff_method, spec) {
            (Some(m), _) if self.hosts == 2 => {
                crate::cutoffs::resolve_cutoff(&self.dist, lambda, self.hosts, m)
                    .ok()
                    .map(|c| c[0])
            }
            (None, PolicySpec::SitaFixed { cutoffs }) if cutoffs.len() == 1 => Some(cutoffs[0]),
            _ => None,
        };
        Ok((built, self.metrics_config(split, reads)))
    }

    /// Simulate a whole load sweep (a one-policy [`Experiment::sweep_grid`]).
    #[must_use]
    pub fn sweep(&self, spec: &PolicySpec, loads: &[f64]) -> LoadSweep {
        self.sweep_grid(std::slice::from_ref(spec), loads)
            .pop()
            // dses-lint: allow(panic-hygiene) -- sweep_grid over one spec returns exactly one sweep
            .expect("one spec in, one sweep out")
    }

    /// Run the full `specs` × `loads` grid, fanned over
    /// [`Experiment::threads`] workers.
    ///
    /// Each load's trace is generated **once** and shared read-only
    /// (`Arc<Trace>`) by every policy — the trace depends only on
    /// `(workload, rho, seed)`, not on the policy. Every grid point is a
    /// pure function of `(spec, rho, seed)` and results are collected by
    /// grid index, never completion order, so the output is bit-for-bit
    /// identical to running [`Experiment::sweep`] per spec sequentially,
    /// for any thread count.
    #[must_use]
    pub fn sweep_grid(&self, specs: &[PolicySpec], loads: &[f64]) -> Vec<LoadSweep> {
        let workers = self.workers();
        if loads.is_empty() {
            return specs
                .iter()
                .map(|spec| LoadSweep { policy: spec.name(), points: Vec::new() })
                .collect();
        }
        // The pool's workers outlive any one call, so grid tasks capture
        // shared ownership (`Arc`) of the experiment and inputs rather
        // than borrowing from this stack frame.
        let this = Arc::new(self.clone());
        // Phase 1: one trace per load, built in parallel, shared below.
        let traces: Arc<Vec<Arc<Trace>>> = {
            let this = Arc::clone(&this);
            Arc::new(par_map(loads, workers, move |_, &rho| {
                Arc::new(this.trace(rho))
            }))
        };
        // Phase 2: the flat specs × loads grid of independent runs.
        let shared_specs: Arc<Vec<PolicySpec>> = Arc::new(specs.to_vec());
        let shared_loads: Arc<Vec<f64>> = Arc::new(loads.to_vec());
        let n_loads = loads.len();
        let grid = par_map_indexed(specs.len() * n_loads, workers, move |g| {
            let (s, l) = (g / n_loads, g % n_loads);
            // SweepPoint reads moment means/variances and host-0 load
            // shares — the MEANS | PER_HOST demand tier.
            let result = this.try_run_on_trace_demand(
                &shared_specs[s],
                &traces[l],
                Demand::MEANS | Demand::PER_HOST,
            );
            SweepPoint::from_result(shared_loads[l], result.ok())
        });
        specs
            .iter()
            .zip(grid.chunks(loads.len()))
            .map(|(spec, points)| LoadSweep {
                policy: spec.name(),
                points: points.to_vec(),
            })
            .collect()
    }

    /// Analytic prediction at target system load `rho` (Poisson).
    pub fn analytic(
        &self,
        policy: AnalyticPolicy,
        rho: f64,
    ) -> Result<AnalyticMetrics, CutoffError> {
        let lambda = rho * self.hosts as f64 / self.dist.mean();
        analyze_policy(policy, &self.dist, lambda, self.hosts)
    }
}

/// Replicated estimate: mean over independent seeds with a 95 %
/// confidence half-width (t ≈ 2 for the replication counts in use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replicated {
    /// mean over replications
    pub mean: f64,
    /// ~95 % confidence half-width
    pub half_width: f64,
    /// number of replications
    pub replications: usize,
}

impl Replicated {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            mean,
            half_width: if n < 2 { f64::INFINITY } else { 2.0 * (var / n as f64).sqrt() },
            replications: n,
        }
    }

    /// Whether another estimate is statistically distinguishable (the
    /// intervals do not overlap).
    #[must_use]
    pub fn distinct_from(&self, other: &Replicated) -> bool {
        (self.mean - other.mean).abs() > self.half_width + other.half_width
    }
}

impl<D: Distribution + Clone + 'static> Experiment<D> {
    /// Run `replications` independent replications (seed of replication
    /// `r` is `derive_seed(seed, r)`) and return the replicated
    /// mean-slowdown estimate. Replications fan out over
    /// [`Experiment::threads`] workers; the estimate is bit-for-bit
    /// identical for any thread count.
    ///
    /// Heavy-tailed slowdowns converge slowly within one run; independent
    /// replications give an honest confidence interval where batch means
    /// within a single trace would understate the trace-to-trace
    /// variability.
    ///
    /// Replications are fused in blocks of up to 8: when the policy takes
    /// a recognised dispatch kernel ([`dses_sim::DispatchKernel`]), a
    /// block's lanes advance through one simulation pass with interleaved
    /// host banks ([`simulate_dispatch_fused`]), which is bit-for-bit
    /// identical to running the lanes one at a time. Central-queue
    /// policies and resolution failures fall back to the per-lane path.
    pub fn replicate(
        &self,
        spec: &PolicySpec,
        rho: f64,
        replications: usize,
    ) -> Result<Replicated, CutoffError> {
        assert!(replications >= 1, "need at least one replication");
        let this = Arc::new(self.clone());
        let spec = spec.clone();
        let samples = par_map_grouped(replications, FUSE_WIDTH, self.workers(), move |range| {
            this.replicate_group(&spec, rho, range)
        })
        .into_iter()
        .collect::<Result<Vec<f64>, CutoffError>>()?;
        Ok(Replicated::from_samples(&samples))
    }

    /// Run replication lanes `range` (seed of lane `r` is
    /// `derive_seed(seed, r)`) and return one mean-slowdown sample per
    /// lane, in lane order.
    ///
    /// Fast path: if every lane resolves to a dispatch policy, the whole
    /// block runs as one fused pass. Otherwise — any central-queue build
    /// or resolution error — each lane runs individually, so per-lane
    /// results (including which lane errors first) match the sequential
    /// semantics exactly.
    fn replicate_group(
        &self,
        spec: &PolicySpec,
        rho: f64,
        range: std::ops::Range<usize>,
    ) -> Vec<Result<f64, CutoffError>> {
        let lanes: Vec<(Self, Trace)> = range
            .map(|r| {
                let clone = self.clone().seed(derive_seed(self.seed, r as u64));
                let trace = clone.trace(rho);
                (clone, trace)
            })
            .collect();
        let mut policies: Vec<Box<dyn Dispatcher>> = Vec::with_capacity(lanes.len());
        let mut cfgs: Vec<MetricsConfig> = Vec::with_capacity(lanes.len());
        // Replication samples read only the mean slowdown.
        let reads = Demand::MEANS;
        for (clone, trace) in &lanes {
            match clone.prepare_run(spec, trace, reads) {
                Ok((BuiltPolicy::Dispatch(p), cfg)) => {
                    policies.push(p);
                    cfgs.push(cfg);
                }
                // Central-queue lane or resolution error: the fused pass
                // cannot represent this block, so replay it lane by lane.
                _ => {
                    return lanes
                        .iter()
                        .map(|(c, t)| {
                            c.try_run_on_trace_demand(spec, t, reads).map(|r| r.slowdown.mean)
                        })
                        .collect();
                }
            }
        }
        let traces: Vec<&Trace> = lanes.iter().map(|(_, t)| t).collect();
        let seeds: Vec<u64> = lanes.iter().map(|(c, _)| c.seed).collect();
        simulate_dispatch_fused(&traces, self.hosts, &mut policies, &seeds, &cfgs)
            .into_iter()
            .map(|r| Ok(r.slowdown.mean))
            .collect()
    }
}

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// target system load
    pub rho: f64,
    /// mean slowdown (response / size), `NaN` if the run failed
    pub mean_slowdown: f64,
    /// variance of slowdown
    pub var_slowdown: f64,
    /// mean response time
    pub mean_response: f64,
    /// variance of response time
    pub var_response: f64,
    /// mean waiting time
    pub mean_waiting: f64,
    /// fraction of served work on host 0
    pub load_fraction_host0: f64,
    /// fraction of jobs served by host 0
    pub job_fraction_host0: f64,
    /// jobs measured
    pub measured: u64,
}

impl SweepPoint {
    fn from_result(rho: f64, result: Option<SimResult>) -> Self {
        match result {
            Some(r) => Self {
                rho,
                mean_slowdown: r.slowdown.mean,
                var_slowdown: r.slowdown.variance,
                mean_response: r.response.mean,
                var_response: r.response.variance,
                mean_waiting: r.waiting.mean,
                load_fraction_host0: r.load_fraction(0),
                job_fraction_host0: r.job_fraction(0),
                measured: r.measured,
            },
            None => Self {
                rho,
                mean_slowdown: f64::NAN,
                var_slowdown: f64::NAN,
                mean_response: f64::NAN,
                var_response: f64::NAN,
                mean_waiting: f64::NAN,
                load_fraction_host0: f64::NAN,
                job_fraction_host0: f64::NAN,
                measured: 0,
            },
        }
    }
}

/// A policy's metrics across a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSweep {
    /// policy display name
    pub policy: String,
    /// per-load points, in sweep order
    pub points: Vec<SweepPoint>,
}

impl LoadSweep {
    /// The mean-slowdown series as `(rho, slowdown)` pairs.
    #[must_use]
    pub fn slowdown_series(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.rho, p.mean_slowdown)).collect()
    }

    /// The variance-of-slowdown series.
    #[must_use]
    pub fn variance_series(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.rho, p.var_slowdown)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dses_dist::prelude::*;

    fn experiment() -> Experiment<Mixture> {
        let d = dses_dist::fit::fit_body_tail(dses_dist::fit::BodyTailTargets {
            mean: 4562.0,
            scv: 43.0,
            min: 60.0,
            max: 2.22e6,
            tail_jobs: 0.013,
            tail_load: 0.5,
        })
        .unwrap();
        Experiment::new(d).jobs(15_000).seed(42)
    }

    #[test]
    fn run_produces_sensible_metrics() {
        let e = experiment();
        let r = e.run(&PolicySpec::LeastWorkLeft, 0.5);
        assert_eq!(r.measured, 15_000);
        assert!(r.slowdown.mean >= 1.0);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn sita_e_beats_random_in_simulation() {
        let e = experiment();
        let random = e.run(&PolicySpec::Random, 0.7);
        let sita = e.run(&PolicySpec::SitaE, 0.7);
        assert!(
            sita.slowdown.mean < random.slowdown.mean / 2.0,
            "sita {} vs random {}",
            sita.slowdown.mean,
            random.slowdown.mean
        );
    }

    #[test]
    fn sita_u_fair_beats_sita_e_in_simulation() {
        let e = experiment();
        let fair = e.run(&PolicySpec::SitaUFair, 0.7);
        let sita_e = e.run(&PolicySpec::SitaE, 0.7);
        assert!(
            fair.slowdown.mean < sita_e.slowdown.mean,
            "fair {} vs E {}",
            fair.slowdown.mean,
            sita_e.slowdown.mean
        );
    }

    #[test]
    fn lwl_equals_central_queue_on_same_trace() {
        let e = experiment();
        let lwl = e.run(&PolicySpec::LeastWorkLeft, 0.6);
        let cq = e.run(&PolicySpec::CentralQueue, 0.6);
        // the theorem: response times match job-for-job, hence all moments
        assert!(
            (lwl.slowdown.mean - cq.slowdown.mean).abs() / cq.slowdown.mean < 1e-9,
            "lwl {} vs cq {}",
            lwl.slowdown.mean,
            cq.slowdown.mean
        );
        assert!((lwl.response.mean - cq.response.mean).abs() / cq.response.mean < 1e-9);
    }

    #[test]
    fn try_run_surfaces_infeasibility() {
        let e = experiment();
        // rho >= 1 cannot be stabilised by any SITA cutoff
        assert!(e.try_run(&PolicySpec::SitaUOpt, 1.2).is_err());
    }

    #[test]
    fn sweep_collects_points_in_order() {
        let e = experiment().jobs(4_000);
        let sweep = e.sweep(&PolicySpec::LeastWorkLeft, &[0.3, 0.5, 0.7]);
        assert_eq!(sweep.policy, "Least-Work-Left");
        let rhos: Vec<f64> = sweep.points.iter().map(|p| p.rho).collect();
        assert_eq!(rhos, vec![0.3, 0.5, 0.7]);
        // slowdown grows with load
        let s = sweep.slowdown_series();
        assert!(s[0].1 < s[2].1);
    }

    #[test]
    fn analytic_delegates() {
        let e = experiment();
        let m = e.analytic(AnalyticPolicy::Random, 0.5).unwrap();
        assert!((m.system_load - 0.5).abs() < 1e-9);
        assert!(m.mean_slowdown > 1.0);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let e = experiment();
        let a = e.run(&PolicySpec::Random, 0.5);
        let b = e.run(&PolicySpec::Random, 0.5);
        assert_eq!(a.slowdown, b.slowdown);
    }
}

#[cfg(test)]
mod slo_tests {
    use super::*;
    use dses_dist::Exponential;

    #[test]
    fn slo_fraction_flows_through_the_experiment() {
        let e = Experiment::new(Exponential::with_mean(1.0).unwrap())
            .hosts(1)
            .jobs(20_000)
            .slo(5.0)
            .seed(2);
        let r = e.run(&PolicySpec::LeastWorkLeft, 0.7);
        let frac = r.slo_violation_fraction().expect("slo configured");
        assert!(frac > 0.0 && frac < 1.0, "violation fraction {frac}");
        // raising the load raises the violation rate
        let r2 = e.run(&PolicySpec::LeastWorkLeft, 0.9);
        assert!(r2.slo_violation_fraction().unwrap() > frac);
    }
}

#[cfg(test)]
mod replication_tests {
    use super::*;
    use dses_dist::Mixture;

    fn experiment() -> Experiment<Mixture> {
        let d = dses_dist::fit::fit_body_tail(dses_dist::fit::BodyTailTargets {
            mean: 4562.0,
            scv: 43.0,
            min: 60.0,
            max: 2.22e6,
            tail_jobs: 0.013,
            tail_load: 0.5,
        })
        .unwrap();
        Experiment::new(d).jobs(8_000).warmup_jobs(500).seed(100)
    }

    #[test]
    fn replicate_produces_finite_interval() {
        let e = experiment();
        let r = e.replicate(&PolicySpec::LeastWorkLeft, 0.5, 5).unwrap();
        assert_eq!(r.replications, 5);
        assert!(r.mean.is_finite() && r.mean >= 1.0);
        assert!(r.half_width.is_finite() && r.half_width > 0.0);
    }

    #[test]
    fn single_replication_has_infinite_half_width() {
        let e = experiment();
        let r = e.replicate(&PolicySpec::Random, 0.5, 1).unwrap();
        assert_eq!(r.half_width, f64::INFINITY);
    }

    #[test]
    fn sita_u_and_sita_e_are_statistically_distinct() {
        let e = experiment();
        let sita_e = e.replicate(&PolicySpec::SitaE, 0.7, 5).unwrap();
        let fair = e.replicate(&PolicySpec::SitaUFair, 0.7, 5).unwrap();
        assert!(
            fair.distinct_from(&sita_e),
            "fair {fair:?} vs E {sita_e:?} should not overlap"
        );
        assert!(fair.mean < sita_e.mean);
    }

    #[test]
    fn replication_errors_propagate() {
        let e = experiment();
        assert!(e.replicate(&PolicySpec::SitaUOpt, 1.5, 3).is_err());
    }
}
