//! Plain-text report rendering for the exhibit regenerators.
//!
//! The bench binaries print the same rows/series the paper's tables and
//! figures report; this module keeps the formatting in one place.

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            line.push_str(&format!("{:>w$}  ", h, w = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                line.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Format a number with engineering-friendly significant digits:
/// integers up to 6 digits stay plain; large/small values go scientific.
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if x.is_nan() {
        return "-".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    let a = x.abs();
    // dses-lint: allow(float-totality) -- exact-zero formatting special case
    if a == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{x:.3e}")
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Canonical label for a collector demand tier
/// ([`MetricsMode`](crate::experiment::MetricsMode)) — the
/// CLI flag values, the perf-report "collector tier" column, and the
/// bench JSON all spell the modes this way.
#[must_use]
pub fn metrics_mode_label(mode: crate::experiment::MetricsMode) -> &'static str {
    use crate::experiment::MetricsMode;
    match mode {
        MetricsMode::Full => "full",
        MetricsMode::Auto => "auto",
        MetricsMode::Means => "means",
    }
}

/// Format a ratio like "12.3x".
#[must_use]
pub fn fmt_ratio(numerator: f64, denominator: f64) -> String {
    // dses-lint: allow(float-totality) -- exact-zero denominator guard
    if denominator == 0.0 || !numerator.is_finite() || !denominator.is_finite() {
        "-".to_string()
    } else {
        format!("{:.1}x", numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["rho", "slowdown"]);
        t.push_row(vec!["0.5".into(), "12.3".into()]);
        t.push_row(vec!["0.7".into(), "45.6".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("rho"));
        assert!(s.contains("45.6"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(f64::NAN), "-");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.23456), "1.235");
        assert_eq!(fmt_num(123.456), "123.5");
        assert!(fmt_num(1.0e9).contains('e'));
        assert!(fmt_num(1.0e-6).contains('e'));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(10.0, 2.0), "5.0x");
        assert_eq!(fmt_ratio(1.0, 0.0), "-");
        assert_eq!(fmt_ratio(f64::INFINITY, 2.0), "-");
    }
}
